#!/usr/bin/env python3
"""A soft real-time GPU workload competing with Parboil batch jobs.

The paper's first motivation (Sec. 2.4, Figure 2) is a soft real-time kernel
that must meet a deadline while batch applications occupy the GPU.  This
example models a periodic "frame processing" application (one short kernel
per frame, 60 frames) sharing the GPU with two Parboil batch applications
(lbm and sad), and reports how many frames meet their deadline under each
scheduler.

Run with:  python examples/realtime_priority.py
"""

from __future__ import annotations

from repro import GPUSystem
from repro.gpu.kernel import KernelSpec
from repro.gpu.resources import ResourceUsage
from repro.trace.schema import (
    ApplicationTrace,
    CpuPhaseOp,
    DeviceSyncOp,
    KernelLaunchOp,
    MallocOp,
    MemcpyOp,
)
from repro.gpu.command_queue import TransferDirection
from repro.workloads.parboil import ParboilSuite
from repro.workloads.scale import WorkloadScale

FRAMES = 60
FRAME_PERIOD_US = 1500.0     # ~666 "frames per second" on the compressed timescale
FRAME_DEADLINE_US = 1000.0   # a frame must finish within 1 ms of being issued


def frame_trace() -> ApplicationTrace:
    """One iteration = one frame: small upload, one short kernel, download."""
    kernel = KernelSpec(
        name="render",
        benchmark="realtime",
        num_thread_blocks=26,
        avg_tb_time_us=8.0,
        usage=ResourceUsage(registers_per_block=4096, shared_memory_per_block=2048),
    )
    operations = [
        CpuPhaseOp(FRAME_PERIOD_US / 4),
        MallocOp(64 * 1024, label="frame"),
        MemcpyOp(64 * 1024, TransferDirection.HOST_TO_DEVICE),
        KernelLaunchOp("render"),
        DeviceSyncOp(),
        MemcpyOp(64 * 1024, TransferDirection.DEVICE_TO_HOST),
        CpuPhaseOp(FRAME_PERIOD_US / 4),
    ]
    return ApplicationTrace(name="realtime", kernels={"render": kernel}, operations=operations)


def run(policy: str, mechanism: str) -> tuple[int, float]:
    """Return (frames meeting the deadline, worst frame time)."""
    suite = ParboilSuite(WorkloadScale.smoke())
    system = GPUSystem(policy=policy, mechanism=mechanism, transfer_policy="npq",
                       policy_options={"process_count": 3} if policy == "dss" else None)
    system.add_process("lbm", suite.trace("lbm"), priority=0)
    system.add_process("sad", suite.trace("sad"), priority=0)
    realtime = system.add_process("realtime", frame_trace(), priority=10,
                                  max_iterations=FRAMES)
    system.run(max_events=20_000_000,
               until_us=FRAMES * FRAME_PERIOD_US * 4)
    frame_times = [record.duration_us for record in realtime.iterations]
    # The frame's own CPU phases account for half the period; the deadline is
    # on the whole iteration.
    met = sum(1 for t in frame_times if t <= FRAME_DEADLINE_US + FRAME_PERIOD_US / 2)
    worst = max(frame_times) if frame_times else float("inf")
    return met, worst


def main() -> None:
    print(f"Soft real-time frames sharing the GPU with lbm and sad ({FRAMES} frames)")
    print("=" * 72)
    print(f"{'scheduler':<30}{'frames meeting deadline':>26}{'worst frame (us)':>18}")
    for policy, mechanism, label in [
        ("fcfs", "context_switch", "FCFS (current GPUs)"),
        ("npq", "context_switch", "NPQ (priority, no preemption)"),
        ("ppq", "context_switch", "PPQ + context switch"),
        ("ppq", "draining", "PPQ + SM draining"),
        ("dss", "context_switch", "DSS equal share"),
    ]:
        met, worst = run(policy, mechanism)
        print(f"{label:<30}{met:>20d}/{FRAMES}{worst:>18.1f}")


if __name__ == "__main__":
    main()
