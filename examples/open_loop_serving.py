#!/usr/bin/env python3
"""Open-loop serving: a bursty tenant and a background tenant share a GPU.

A high-priority tenant sends bursty request trains (MMPP on-off arrivals)
while a background tenant submits a steady Poisson stream.  Both are open
loop — requests keep arriving whether or not the GPU keeps up — so queueing,
drops and tail latency emerge from the offered load rather than from a fixed
batch of work.  The example runs the same two-tenant scenario under three
offered loads and prints the admission counters, the streaming latency
quantiles (P² estimator, warmup discarded), and the per-tenant SLO
violations against a shared latency budget.

Run with:  PYTHONPATH=src python examples/open_loop_serving.py
"""

from __future__ import annotations

from repro.scenario import ScenarioSpec, SchemeSpec
from repro.serving import run_serving

#: Offered loads: mean interarrival gaps (µs) for the bursty high-priority
#: tenant and the Poisson background tenant.
LOADS = {
    "light": (800.0, 1200.0),
    "moderate": (300.0, 450.0),
    "heavy": (55.0, 85.0),
}

HORIZON_US = 30_000.0
SLO_BUDGET_US = 250.0


def make_scenario(hp_mean: float, bg_mean: float) -> ScenarioSpec:
    return ScenarioSpec(
        scheme=SchemeSpec(
            name="ppq_cs",
            policy="ppq",
            mechanism="context_switch",
            transfer_policy="npq",
        ),
        applications=("syn-11-0", "syn-11-1"),
        high_priority_index=0,  # tenant 0 preempts the background tenant
        scale="smoke",
        arrivals={
            "horizon_us": HORIZON_US,
            "warmup_us": HORIZON_US / 8.0,
            "window_us": HORIZON_US / 4.0,
            "queue_capacity": 16,
            "admission": "drop",
            "max_inflight": 4,
            "tenants": [
                {
                    "process": "mmpp",  # bursty on-off request trains
                    "seed": 1,
                    "mean_interarrival_us": hp_mean,
                    "burstiness": 8.0,
                },
                {
                    "process": "poisson",  # steady background stream
                    "seed": 2,
                    "mean_interarrival_us": bg_mean,
                },
            ],
        },
        slo={"default": SLO_BUDGET_US},
    )


def main() -> None:
    print("Two open-loop tenants sharing one GPU (PPQ + context switch)")
    print(f"SLO budget: {SLO_BUDGET_US:.0f} us per request, warmup discarded")
    print("=" * 78)
    header = (
        f"{'load':<10}{'tenant':<14}{'arrived':>8}{'dropped':>8}"
        f"{'p50 us':>9}{'p99 us':>9}{'SLO viol':>9}"
    )
    print(header)
    print("-" * len(header))
    for load, (hp_mean, bg_mean) in LOADS.items():
        summary = run_serving(make_scenario(hp_mean, bg_mean)).summary
        queue = summary["queue"]
        latency = summary["latency_us"]
        print(
            f"{load:<10}{'all':<14}{queue['arrived']:>8}{queue['dropped']:>8}"
            f"{latency['p50']:>9.1f}{latency['p99']:>9.1f}"
            f"{summary['slo_violations_total']:>9}"
        )
        for tenant, tenant_summary in summary["tenants"].items():
            tenant_latency = tenant_summary["latency_us"]
            print(
                f"{'':<10}{tenant:<14}"
                f"{queue['per_tenant_arrived'].get(tenant, 0):>8}"
                f"{queue['per_tenant_dropped'].get(tenant, 0):>8}"
                f"{tenant_latency['p50']:>9.1f}{tenant_latency['p99']:>9.1f}"
                f"{tenant_summary['slo_violations']:>9}"
            )
    print()
    print(
        "Tenant #0 (bursty, high priority) keeps tight tails by preempting\n"
        "tenant #1; under heavy load the bounded admission queue sheds the\n"
        "overflow as drops instead of letting latency grow without bound."
    )


if __name__ == "__main__":
    main()
