#!/usr/bin/env python3
"""Reproduce the paper's tables and figures from Python (not the CLI).

This example drives the experiment harness programmatically — the same code
path as the ``repro-experiments`` command — at the *smoke* scale so it
finishes in a few minutes, and prints every table/figure.  Use the CLI with
``--scale reduced`` (or ``full``) for higher-fidelity runs.

Run with:  python examples/reproduce_figures.py
"""

from __future__ import annotations

import dataclasses
import os

from repro.experiments import dss_data, figure5, figure7, priority_data, table1, table2
from repro.experiments.base import ExperimentConfig


def main() -> None:
    config = dataclasses.replace(
        ExperimentConfig.smoke(),
        process_counts=(2, 4),
        workloads_per_count=3,
        benchmarks=("lbm", "spmv", "sgemm", "tpacf", "histo", "sad"),
        # The (workload x scheme) grid runs through a BatchRunner; use every
        # core (identical results to a serial run, just faster).
        jobs=os.cpu_count() or 1,
    )

    print(table1.run(config).format())
    print()
    print(table2.run(config).format())
    print()

    print("Simulating priority workloads (Figure 5)...")
    priority_cache = priority_data.collect(config, schemes=priority_data.FIGURE5_SCHEMES)
    print(figure5.run(config, data=priority_cache).format())
    print()

    print("Simulating equal-sharing workloads (Figure 7)...")
    dss_cache = dss_data.collect(config)
    print(figure7.run(config, data=dss_cache).format())


if __name__ == "__main__":
    main()
