#!/usr/bin/env python3
"""Runtime observability: live metrics on an open-loop serving run.

Attaching ``metrics={...}`` to a scenario wires a :class:`repro.obs.MetricsHub`
through every layer: the engine counts fired events per kind, the GPU samples
per-SM busy fractions and preemption counters, and the serving layer samples
queue depth, admission outcomes and per-tenant SLO counters.  Rows are cut on
sim-time boundaries, so the series is deterministic — byte-identical serial
or parallel, and the simulation itself is byte-identical with metrics on or
off.

This example runs a two-tenant bursty serving scenario with snapshots every
500 us, renders the ASCII dashboard (one sparkline per changing series),
prints the hottest event kinds from the self-profiler, and writes the JSONL
series plus a Prometheus text exposition next to this script.

Run with:  python examples/metrics_dashboard.py
"""

from __future__ import annotations

import pathlib

from repro.obs import (
    EventLoopProfiler,
    render_dashboard,
    write_jsonl,
    write_prometheus,
)
from repro.scenario import ScenarioSpec, SchemeSpec
from repro.serving.driver import ServingDriver

OUT_DIR = pathlib.Path(__file__).resolve().parent


def make_scenario() -> ScenarioSpec:
    """Two tenants — bursty high-priority over steady Poisson — observed."""
    return ScenarioSpec(
        scheme=SchemeSpec(
            name="ppq_cs",
            policy="ppq",
            mechanism="context_switch",
            transfer_policy="npq",
        ),
        applications=("syn-11-0", "syn-11-1"),
        high_priority_index=0,
        scale="smoke",
        metrics={"interval_us": 500.0},
        arrivals={
            "horizon_us": 20_000.0,
            "warmup_us": 2_000.0,
            "queue_capacity": 16,
            "admission": "drop",
            "max_inflight": 4,
            "window_us": 5_000.0,
            "tenants": [
                {"process": "mmpp", "seed": 1, "mean_interarrival_us": 400.0},
                {"process": "poisson", "seed": 2, "mean_interarrival_us": 600.0},
            ],
        },
        slo={"default": 3_000.0},
    )


def main() -> None:
    scenario = make_scenario()
    driver = ServingDriver(scenario)
    profiler = EventLoopProfiler().attach(driver.system.simulator)
    driver.run()
    hub = driver.system.metrics
    hub.finalize(driver.system.simulator.now)

    print(render_dashboard(hub.rows, meta=hub.meta))
    print(profiler.format(count=5))

    jsonl = write_jsonl(hub.rows, str(OUT_DIR / "serving.metrics.jsonl"), meta=hub.meta)
    prom = write_prometheus(hub.registry, str(OUT_DIR / "serving.metrics.prom"), meta=hub.meta)
    print(f"\nwrote {jsonl}")
    print(f"wrote {prom}")

    summary = driver.summary()
    queue = summary["queue"]
    print(
        f"\nserved {summary['completed']} of {queue['arrived']} requests "
        f"({queue['dropped']} dropped) over {driver.system.simulator.now:,.0f} us"
    )


if __name__ == "__main__":
    main()
