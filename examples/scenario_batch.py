#!/usr/bin/env python3
"""Declarative API tour: ScenarioSpec + BatchRunner + the plugin registry.

Builds a small grid of scenarios (two workloads x three schemes) as frozen,
JSON-round-trippable specs, runs them in parallel with a BatchRunner, prints
the per-scheme metrics, and registers a custom scheduling policy to show the
plugin registry in action.

Run with:  python examples/scenario_batch.py
"""

from __future__ import annotations

import os

from repro import BatchRunner, ScenarioSpec, SchemeSpec, register_policy
from repro.core.policies.fcfs import FCFSPolicy
from repro.workloads.multiprogram import generate_random_workloads

SCHEMES = [
    SchemeSpec(name="fcfs", policy="fcfs"),
    SchemeSpec(name="ppq_cs", policy="ppq", mechanism="context_switch",
               transfer_policy="npq"),
    SchemeSpec(name="dss_drain", policy="dss", mechanism="draining"),
]


def build_scenarios() -> list[ScenarioSpec]:
    """Two random 4-process workloads under every scheme, at smoke scale."""
    workloads = generate_random_workloads(
        4, 2, seed=42, benchmarks=["lbm", "spmv", "sgemm", "sad"]
    )
    return [
        ScenarioSpec.for_workload(workload, scheme, scale="smoke")
        for workload in workloads
        for scheme in SCHEMES
    ]


def demo_registry() -> None:
    """Plug in a custom policy; every entry point resolves it by name."""

    @register_policy("fcfs_no_b2b", description="FCFS without back-to-back overlap")
    class StrictFCFSPolicy(FCFSPolicy):
        name = "fcfs_no_b2b"

        def __init__(self):
            super().__init__(back_to_back=False)

    scheme = SchemeSpec(name="strict", policy="fcfs_no_b2b")
    print(f"registered custom policy -> {type(scheme.build_policy()).__name__}")


def main() -> None:
    scenarios = build_scenarios()
    print(f"Running {len(scenarios)} scenarios on {os.cpu_count()} CPU(s)...")
    records = BatchRunner(jobs=0).run(scenarios)  # 0 = all CPUs

    print(f"{'scenario':<34} {'ANTT':>6} {'STP':>6} {'fairness':>9}")
    for record in records:
        metrics = record.result.metrics
        print(
            f"{record.scenario.describe():<34} {metrics.antt:>6.2f} "
            f"{metrics.stp:>6.2f} {metrics.fairness:>9.2f}"
        )

    # Every record round-trips through JSON for archival next to results.
    blob = records[0].to_json()
    print(f"\nfirst record as JSON: {len(blob)} bytes")

    demo_registry()


if __name__ == "__main__":
    main()
