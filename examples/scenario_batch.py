#!/usr/bin/env python3
"""Declarative API tour: ScenarioSpec + BatchRunner + the plugin registry.

Builds a small grid of scenarios (two workloads x three schemes) as frozen,
JSON-round-trippable specs, runs them in parallel with a BatchRunner, prints
the per-scheme metrics, registers a custom scheduling policy to show the
plugin registry in action, and finally fuzzes a batch of fully seed-derived
synthetic scenarios with runtime invariant validation attached.

Run with:  python examples/scenario_batch.py
"""

from __future__ import annotations

import os

from repro import BatchRunner, ScenarioSpec, SchemeSpec, register_policy
from repro.core.policies.fcfs import FCFSPolicy
from repro.workloads.multiprogram import generate_random_workloads
from repro.workloads.synthetic import generate_synthetic_scenarios

SCHEMES = [
    SchemeSpec(name="fcfs", policy="fcfs"),
    SchemeSpec(name="ppq_cs", policy="ppq", mechanism="context_switch",
               transfer_policy="npq"),
    SchemeSpec(name="dss_drain", policy="dss", mechanism="draining"),
]


def build_scenarios() -> list[ScenarioSpec]:
    """Two random 4-process workloads under every scheme, at smoke scale."""
    workloads = generate_random_workloads(
        4, 2, seed=42, benchmarks=["lbm", "spmv", "sgemm", "sad"]
    )
    return [
        ScenarioSpec.for_workload(workload, scheme, scale="smoke")
        for workload in workloads
        for scheme in SCHEMES
    ]


def demo_registry() -> None:
    """Plug in a custom policy; every entry point resolves it by name."""

    @register_policy("fcfs_no_b2b", description="FCFS without back-to-back overlap")
    class StrictFCFSPolicy(FCFSPolicy):
        name = "fcfs_no_b2b"

        def __init__(self):
            super().__init__(back_to_back=False)

    scheme = SchemeSpec(name="strict", policy="fcfs_no_b2b")
    print(f"registered custom policy -> {type(scheme.build_policy()).__name__}")


def demo_fuzzing() -> None:
    """Fuzz seed-derived scenarios with the invariant checkers attached.

    Every dimension — kernel shapes, resource footprints, phase balance,
    arrival staggers, priorities, process counts, schemes — is derived from
    the seed, and the validation layer proves each run obeyed the simulator's
    conservation laws (``record.ok``).
    """
    scenarios = generate_synthetic_scenarios(6, seed=2014, scale="smoke", validate=True)
    records = BatchRunner(jobs=0).run(scenarios)

    print(f"\nfuzzing {len(scenarios)} seed-derived scenarios (validated):")
    print(f"{'scenario':<44} {'ANTT':>6} {'STP':>6} {'violations':>11}")
    for record in records:
        metrics = record.result.metrics
        status = len(record.violations)
        print(
            f"{record.scenario.describe():<44} {metrics.antt:>6.2f} "
            f"{metrics.stp:>6.2f} {status:>11}"
        )
    assert all(record.ok for record in records), "invariant violation detected!"


def main() -> None:
    scenarios = build_scenarios()
    print(f"Running {len(scenarios)} scenarios on {os.cpu_count()} CPU(s)...")
    records = BatchRunner(jobs=0).run(scenarios)  # 0 = all CPUs

    print(f"{'scenario':<34} {'ANTT':>6} {'STP':>6} {'fairness':>9}")
    for record in records:
        metrics = record.result.metrics
        print(
            f"{record.scenario.describe():<34} {metrics.antt:>6.2f} "
            f"{metrics.stp:>6.2f} {metrics.fairness:>9.2f}"
        )

    # Every record round-trips through JSON for archival next to results.
    blob = records[0].to_json()
    print(f"\nfirst record as JSON: {len(blob)} bytes")

    demo_registry()
    demo_fuzzing()


if __name__ == "__main__":
    main()
