#!/usr/bin/env python3
"""Telemetry walkthrough: trace a preemption, render it, export it.

This example runs the paper's motivating situation — a short high-priority
kernel arriving while a long background kernel occupies every SM — with the
telemetry subsystem attached (``GPUSystem(trace=True)``), then

1. prints an ASCII Gantt of the timeline (SM residency, DMA, CPU phases,
   with the preemption window marked ``P``),
2. prints the per-mechanism preemption-latency distribution the trace
   recorded (the paper's headline metric), and
3. exports a Chrome trace-event file — open it at https://ui.perfetto.dev
   (or chrome://tracing) to inspect the same timeline interactively.

Run with:  python examples/trace_timeline.py [output.trace.json]
"""

from __future__ import annotations

import sys

from repro import GPUSystem
from repro.telemetry import ascii_gantt, latency_stats, preemption_latencies, write_chrome_trace
from repro.trace.generator import KernelPhase, TraceGenerator
from repro.trace.schema import KernelSpec
from repro.gpu.resources import ResourceUsage

KIB = 1024


def small_transfer_app(name: str, *, num_blocks: int, tb_time_us: float):
    """A single-kernel app with small transfers (keeps the timeline legible)."""
    spec = KernelSpec(
        name=f"{name}_kernel",
        benchmark=name,
        num_thread_blocks=num_blocks,
        avg_tb_time_us=tb_time_us,
        usage=ResourceUsage(registers_per_block=8192, shared_memory_per_block=0),
    )
    return TraceGenerator().build(
        name,
        phases=[KernelPhase(kernel=spec, launches=1, cpu_time_us=5.0)],
        input_bytes=64 * KIB,
        output_bytes=64 * KIB,
        setup_cpu_time_us=50.0,
        teardown_cpu_time_us=10.0,
    )


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "timeline.trace.json"

    system = GPUSystem(
        policy="ppq", mechanism="context_switch", transfer_policy="npq", trace=True
    )
    background = small_transfer_app("background", num_blocks=400, tb_time_us=50.0)
    interactive = small_transfer_app("interactive", num_blocks=26, tb_time_us=10.0)
    system.add_process("background", background, priority=0, max_iterations=1)
    system.add_process(
        "interactive", interactive, priority=10, start_delay_us=150.0, max_iterations=1
    )
    system.run(max_events=10_000_000)

    events = system.telemetry.events
    print(f"Recorded {len(events)} trace events over "
          f"{system.simulator.now:.0f} simulated us\n")

    print(ascii_gantt(events, width=72, end_us=system.simulator.now))
    print()

    for mechanism, samples in preemption_latencies(events).items():
        stats = latency_stats(samples)
        print(
            f"Preemption latency ({mechanism}): {stats['count']} preemptions, "
            f"p50={stats['p50']:.2f}us p95={stats['p95']:.2f}us "
            f"max={stats['max']:.2f}us"
        )

    write_chrome_trace(events, output, end_us=system.simulator.now)
    print(f"\nChrome trace written to {output} — load it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
