#!/usr/bin/env python3
"""Quickstart: run two GPU processes under different scheduling policies.

This example builds a small simulated system (NVIDIA GK110-class GPU with 13
SMs), runs a long low-priority application together with a short
high-priority application under the baseline FCFS scheduler and under the
paper's preemptive priority scheduler (PPQ) with both preemption mechanisms,
and prints the turnaround time of the high-priority application in each case.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import GPUSystem
from repro.trace import TraceGenerator


def build_workload(system: GPUSystem) -> None:
    """Add one long background process and one short latency-sensitive one."""
    generator = TraceGenerator()
    background = generator.uniform_kernel(
        "background",
        num_blocks=4000,          # a long kernel: ~38 waves on 13 SMs
        tb_time_us=150.0,
        registers_per_block=8192,
        cpu_time_us=5.0,
    )
    interactive = generator.uniform_kernel(
        "interactive",
        num_blocks=52,            # a short kernel: one wave
        tb_time_us=10.0,
        registers_per_block=8192,
        cpu_time_us=5.0,
    )
    system.add_process("background", background, priority=0, max_iterations=1)
    # The interactive process arrives while the background kernel is running.
    system.add_process(
        "interactive", interactive, priority=10, start_delay_us=4000.0, max_iterations=1
    )


def run(policy: str, mechanism: str) -> dict[str, float]:
    system = GPUSystem(policy=policy, mechanism=mechanism, transfer_policy="npq")
    build_workload(system)
    system.run(max_events=10_000_000)
    return system.mean_iteration_times_us()


def main() -> None:
    print("Scheduling a short high-priority process next to a long kernel")
    print("=" * 64)
    baseline = run("fcfs", "context_switch")
    print(f"{'scheduler':<28}{'interactive (us)':>18}{'background (us)':>18}")
    print(f"{'FCFS (current GPUs)':<28}{baseline['interactive']:>18.1f}{baseline['background']:>18.1f}")
    for policy, mechanism, label in [
        ("npq", "context_switch", "NPQ (no preemption)"),
        ("ppq", "context_switch", "PPQ + context switch"),
        ("ppq", "draining", "PPQ + SM draining"),
        ("dss", "context_switch", "DSS equal share + CS"),
    ]:
        times = run(policy, mechanism)
        speedup = baseline["interactive"] / times["interactive"]
        print(
            f"{label:<28}{times['interactive']:>18.1f}{times['background']:>18.1f}"
            f"   (interactive {speedup:.1f}x faster than FCFS)"
        )


if __name__ == "__main__":
    main()
