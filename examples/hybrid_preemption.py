#!/usr/bin/env python3
"""Per-request preemption control: hybrid and adaptive mechanism selection.

The paper (Sec. 3.2) presents context switching and SM draining as two
points on a latency-vs-overhead tradeoff and argues the hardware could pick
between them dynamically, per preemption.  This example does exactly that:
a high-priority process repeatedly preempts a mix of low-priority kernels —
one with short (4 us) thread blocks, one with long (120 us) thread blocks —
under four preemption controllers:

* ``static`` x2 — the legacy fixed mechanisms (the tradeoff's endpoints),
* ``hybrid``  — drain when the estimated drain fits a 20 us deadline, fall
  back to the context switch when it does not,
* ``adaptive`` — pick whichever mechanism minimizes estimated SM-idle time.

For each controller it reports the mechanism mix the controller actually
chose (from the telemetry preemption spans, each tagged with the chosen
mechanism), the preemption-latency distribution, and the high-priority
process's mean turnaround.

Run with:  python examples/hybrid_preemption.py
"""

from __future__ import annotations

from repro import GPUSystem
from repro.gpu.kernel import KernelSpec
from repro.gpu.resources import ResourceUsage
from repro.telemetry.analytics import latency_stats, preemption_latencies
from repro.trace.generator import KernelPhase, TraceGenerator
from repro.trace.schema import ApplicationTrace

KIB = 1024


def kernel(name: str, blocks: int, tb_time_us: float) -> KernelSpec:
    return KernelSpec(
        name=name,
        benchmark=name,
        num_thread_blocks=blocks,
        avg_tb_time_us=tb_time_us,
        usage=ResourceUsage(registers_per_block=8192, shared_memory_per_block=0),
    )


def app(name: str, phases) -> ApplicationTrace:
    return TraceGenerator().build(
        name,
        phases=phases,
        input_bytes=64 * KIB,
        output_bytes=64 * KIB,
        setup_cpu_time_us=5.0,
        teardown_cpu_time_us=5.0,
    )


def build_system(**system_kwargs) -> GPUSystem:
    """Two low-priority batch processes plus a bursty high-priority one."""
    system = GPUSystem(policy="ppq", transfer_policy="npq", trace=True, **system_kwargs)
    system.add_process(
        "short-blocks",
        app("short", [KernelPhase(kernel("short", 8000, 4.0), cpu_time_us=1.0)]),
        priority=1,
        max_iterations=1,
    )
    system.add_process(
        "long-blocks",
        app("long", [KernelPhase(kernel("long", 2000, 120.0), cpu_time_us=1.0)]),
        priority=0,
        start_delay_us=0.1,
        max_iterations=1,
    )
    # Three bursts: the first lands in the short phase (cheap to drain), the
    # later two — spaced by long CPU phases — land in the long phase
    # (expensive to drain).  Each phase's CPU time precedes its launch.
    system.add_process(
        "interactive",
        app(
            "interactive",
            [
                KernelPhase(kernel("burst0", 52, 5.0), cpu_time_us=20.0),
                KernelPhase(kernel("burst1", 52, 5.0), cpu_time_us=400.0),
                KernelPhase(kernel("burst2", 52, 5.0), cpu_time_us=400.0),
            ],
        ),
        priority=10,
        start_delay_us=30.0,
        max_iterations=1,
    )
    return system


def main() -> None:
    configurations = [
        ("static (context switch)", dict(mechanism="context_switch")),
        ("static (draining)", dict(mechanism="draining")),
        ("hybrid (20 us deadline)", dict(controller="hybrid",
                                         controller_options={"drain_budget_us": 20.0})),
        ("adaptive (cost model)", dict(controller="adaptive")),
    ]
    header = (
        f"{'controller':<26} {'mechanism mix':<34} {'p50':>7} {'p95':>7} "
        f"{'max':>8} {'interactive (us)':>17}"
    )
    print(header)
    print("-" * len(header))
    for label, kwargs in configurations:
        system = build_system(**kwargs)
        system.run(max_events=10_000_000)
        samples = preemption_latencies(system.telemetry.events)
        mix = " ".join(
            f"{mechanism}:{len(values)}" for mechanism, values in sorted(samples.items())
        )
        merged = [latency for values in samples.values() for latency in values]
        stats = latency_stats(merged)
        interactive = system.process("interactive").mean_iteration_time_us()
        print(
            f"{label:<26} {mix:<34} {stats['p50']:>7.2f} {stats['p95']:>7.2f} "
            f"{stats['max']:>8.2f} {interactive:>17.1f}"
        )
    print()
    print("hybrid drains the cheap preemptions (short blocks within the deadline)")
    print("and context-switches the expensive ones, so its latency tail is capped")
    print("while it moves less state than always context switching.")


if __name__ == "__main__":
    main()
