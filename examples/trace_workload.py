#!/usr/bin/env python3
"""Trace-driven serving: synthesize, validate, calibrate, compile and run.

The loadgen pipeline end to end, in-process (the ``repro.loadgen.cli``
module drives the same steps from the shell):

1. **Synthesize** an ``azure_faas`` workload trace — Zipf-skewed tenant
   rates, Pareto-tailed interarrival gaps, MMPP burst epochs and a diurnal
   envelope, all from key-addressed hash draws so the same seed always
   yields the byte-identical trace.
2. **Validate** it against the committed reference trace
   (``tests/data/reference_trace.jsonl``): pooled-gap KS distance plus
   mean-rate / CV / tail-index errors under documented thresholds.
3. **Calibrate** request sizes onto the synthetic app family's kernel-grid
   multipliers (``syn-*-xN``) so the offered load hits a target utilization
   on the simulated GPU.
4. **Compile** the trace + calibration into a runnable ``ScenarioSpec``
   whose tenants are non-wrapping ``replay`` arrival streams.
5. **Run** it through the serving driver twice — straight through and
   checkpoint-split — and show the summaries are byte-identical.

Run with:  PYTHONPATH=src python examples/trace_workload.py
"""

from __future__ import annotations

import json

from repro.loadgen import synthesize_trace
from repro.loadgen.calibrate import calibrate_trace
from repro.loadgen.compile import compile_serving_scenario
from repro.loadgen.trace import load_trace
from repro.loadgen.validate import compare_traces, gap_stats
from repro.serving import run_serving

REFERENCE = "tests/data/reference_trace.jsonl"


def main() -> None:
    # 1. Synthesize (same recipe as the reference trace, different seed).
    trace = synthesize_trace(
        "azure_faas",
        seed=7,
        horizon_us=60_000.0,
        num_tenants=4,
        mean_interarrival_us=400.0,
    )
    stats = gap_stats(trace.pooled_gaps_us())
    print(f"synthesized {trace.name}: {trace.total_arrivals} arrivals, "
          f"{len(trace.tenants)} tenants over {trace.horizon_us:.0f} us")
    print(f"  gap CV {stats['cv']:.2f}, tail index {stats['tail_index']:.2f}, "
          f"KS-to-Poisson {stats['ks_to_exponential']:.3f}")

    # 2. Validate against the committed reference.
    comparison = compare_traces(trace, load_trace(REFERENCE))
    print(f"validation vs {REFERENCE}: "
          f"{'match' if comparison.ok else 'NO MATCH'} "
          f"(KS {comparison.ks:.4f}, mean-rate err {comparison.mean_rate_rel:.4f})")

    # 3. Calibrate sizes onto kernel-grid multipliers at 60% utilization.
    calibration = calibrate_trace(trace, target_utilization=0.6, scale="smoke")
    print(f"calibration: achieved utilization "
          f"{calibration.achieved_utilization:.3f} "
          f"(target {calibration.target_utilization})")
    for name, app in sorted(calibration.apps.items()):
        print(f"  {name} -> {app} "
              f"(service {calibration.service_times_us[app]:.1f} us)")

    # 4. Compile into a replay scenario.
    scenario = compile_serving_scenario(trace, calibration)

    # 5. Run it — straight through, then checkpoint-split; byte-identical.
    serial = run_serving(scenario)
    split = run_serving(scenario, checkpoint_at=[20_000.0, 40_000.0])
    assert json.dumps(serial.summary, sort_keys=True) == (
        json.dumps(split.summary, sort_keys=True)
    ), "checkpoint-split summary diverged"
    queue = serial.summary["queue"]
    latency = serial.summary["latency_us"]
    print(f"serving run: {queue['arrived']} arrived, "
          f"{queue['dropped']} dropped, "
          f"p50 {latency['p50']:.1f} us, p99 {latency['p99']:.1f} us "
          f"(checkpoint-split summary byte-identical, "
          f"{split.segments} segments)")


if __name__ == "__main__":
    main()
