#!/usr/bin/env python3
"""Multi-tenant GPU sharing in a cloud node: DSS with weighted token budgets.

The DSS policy lets the OS or a cloud scheduler assign each tenant a token
budget that represents its SM share (paper Sec. 3.4).  This example
co-schedules four Parboil applications as four "tenants", gives one tenant a
premium share (8 of 13 SMs) and the rest the remainder, and compares the
per-tenant slowdowns and system metrics against FCFS and against equal
sharing.

Run with:  python examples/cloud_multitenant.py
"""

from __future__ import annotations

from repro.metrics import MultiprogramMetrics
from repro.workloads.multiprogram import IsolatedBaseline, WorkloadRunner, WorkloadSpec
from repro.workloads.parboil import ParboilSuite
from repro.workloads.scale import WorkloadScale

TENANTS = ("sgemm", "histo", "tpacf", "spmv")
PREMIUM_TENANT = "sgemm"


def main() -> None:
    scale = WorkloadScale.smoke()
    runner = WorkloadRunner(scale=scale)
    spec = WorkloadSpec(applications=TENANTS)

    premium_budgets = {PREMIUM_TENANT: 8}
    configurations = [
        ("FCFS (no sharing control)", "fcfs", "context_switch", None),
        ("DSS equal share + context switch", "dss", "context_switch", None),
        ("DSS equal share + draining", "dss", "draining", None),
        (
            f"DSS weighted ({PREMIUM_TENANT} gets 8/13 SMs)",
            "dss",
            "context_switch",
            {"token_budgets": premium_budgets},
        ),
    ]

    print(f"Four tenants sharing one GPU: {', '.join(TENANTS)}")
    print("=" * 76)
    header = f"{'configuration':<38}{'ANTT':>7}{'STP':>7}{'fairness':>10}  premium NTT"
    print(header)
    print("-" * len(header))
    for label, policy, mechanism, options in configurations:
        result = runner.run(spec, policy=policy, mechanism=mechanism, policy_options=options)
        metrics: MultiprogramMetrics = result.metrics
        premium_process = next(
            name for name, app in result.process_applications.items() if app == PREMIUM_TENANT
        )
        print(
            f"{label:<38}{metrics.antt:>7.2f}{metrics.stp:>7.2f}{metrics.fairness:>10.2f}"
            f"  {metrics.ntt_of(premium_process):>11.2f}"
        )

    print()
    print("Isolated baseline times (us):")
    baseline = IsolatedBaseline(ParboilSuite(scale))
    for tenant in TENANTS:
        print(f"  {tenant:<14}{baseline.time_us(tenant):>10.1f}")


if __name__ == "__main__":
    main()
