"""Seeded synthetic workload generation (the scenario fuzzer).

The paper evaluates fixed Parboil mixes; the ROADMAP's north star is "as many
scenarios as you can imagine".  This module derives *arbitrary* multiprogram
scenarios from a single integer seed, entirely through
:mod:`repro.utils.determinism` (no global RNG state), so that:

* the same seed always produces byte-identical
  :class:`~repro.scenario.ScenarioSpec` JSON, on every platform and process
  (the fuzzer's reproducibility contract), and
* every generated dimension is randomised: kernel grid sizes, per-block
  register / shared-memory / thread footprints, CPU-vs-transfer phase
  balance, kernel launch counts, process counts, arrival staggers,
  priorities and the scheduling scheme itself.

Synthetic applications are first-class citizens of the declarative API:
their names encode their derivation (``syn-<seed>-<index>``), so a
:class:`SyntheticSuite` can rebuild the exact trace from the name alone in
any worker process — scenarios fan out through
:class:`repro.runner.BatchRunner` exactly like Parboil ones, and the two can
be mixed in a single workload.  Combined with ``validate=True`` (the
:mod:`repro.validation` layer) this turns every imagined scenario into a
self-checking test of the simulator's conservation laws:

>>> from repro.workloads.synthetic import generate_synthetic_scenario
>>> from repro.runner import execute_scenario
>>> spec = generate_synthetic_scenario(7, scale="smoke", validate=True)
>>> record = execute_scenario(spec)
>>> record.ok
True
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.scenario import ScenarioSpec, SchemeSpec
from repro.trace.generator import KernelPhase, TraceGenerator
from repro.trace.schema import ApplicationTrace
from repro.gpu.kernel import KernelSpec
from repro.gpu.resources import ResourceUsage
from repro.utils.determinism import hash_uniform
from repro.workloads.parboil import ParboilSuite
from repro.workloads.scale import WorkloadScale

KIB = 1024
MIB = 1024 * KIB

#: Application-name prefix marking synthetic (seed-derived) applications.
SYNTHETIC_PREFIX = "syn"
#: ``syn-<seed>-<index>`` plus an optional ``-x<multiplier>`` suffix that
#: scales the kernel grids (and data-transfer sizes) of the derived
#: application — the lever the ``large_gpu`` scenario family uses to grow
#: workloads proportionally with the SM count.
_NAME_RE = re.compile(r"^syn-(\d+)-(\d+)(?:-x(\d+))?$")

#: Policy / mechanism / controller / transfer-policy pools the scenario
#: fuzzer draws from.  Registry names — extend these to fuzz custom
#: components too.  ``None`` in the controller pool keeps the legacy
#: controller-less spec shape (static selection of the drawn mechanism).
SCHEME_POLICIES: Tuple[str, ...] = ("fcfs", "npq", "ppq", "ppq_shared", "dss")
SCHEME_MECHANISMS: Tuple[str, ...] = ("context_switch", "draining")
SCHEME_CONTROLLERS: Tuple[Optional[str], ...] = (None, "static", "hybrid", "adaptive")
SCHEME_TRANSFER_POLICIES: Tuple[str, ...] = ("fcfs", "npq")

#: Namespace component so synthetic draws never collide with other users of
#: :func:`repro.utils.determinism.hash_uniform`.
_NS = "repro.synthetic"


def _u(seed: int, *key) -> float:
    """Deterministic uniform sample in [0, 1) for (seed, key)."""
    return hash_uniform(_NS, seed, *key)


def _int_between(lo: int, hi: int, seed: int, *key) -> int:
    """Deterministic integer in [lo, hi] (inclusive)."""
    if hi < lo:
        raise ValueError("hi must be >= lo")
    return lo + min(hi - lo, int(_u(seed, *key) * (hi - lo + 1)))


def _pick(options: Sequence, seed: int, *key):
    """Deterministic choice from a non-empty sequence."""
    return options[_int_between(0, len(options) - 1, seed, *key)]


# ----------------------------------------------------------------------
# Application names
# ----------------------------------------------------------------------
def synthetic_app_name(seed: int, index: int, multiplier: int = 1) -> str:
    """The canonical name of synthetic application ``index`` of ``seed``.

    ``multiplier`` > 1 appends a ``-x<multiplier>`` suffix: the application
    keeps the same seed-derived shape but its kernel grids and transfer sizes
    are scaled by the multiplier (see :func:`build_synthetic_trace`).
    """
    if seed < 0 or index < 0:
        raise ValueError("seed and index must be non-negative")
    if multiplier < 1:
        raise ValueError("multiplier must be at least 1")
    base = f"{SYNTHETIC_PREFIX}-{seed}-{index}"
    return base if multiplier == 1 else f"{base}-x{multiplier}"


def is_synthetic_app(name: str) -> bool:
    """Whether ``name`` denotes a synthetic (seed-derived) application."""
    return bool(_NAME_RE.match(name))


def parse_synthetic_app(name: str) -> Tuple[int, int]:
    """Recover ``(seed, index)`` from a synthetic application name."""
    match = _NAME_RE.match(name)
    if match is None:
        raise ValueError(f"not a synthetic application name: {name!r}")
    return int(match.group(1)), int(match.group(2))


def synthetic_block_multiplier(name: str) -> int:
    """The grid multiplier encoded in a synthetic application name (``1`` if none)."""
    match = _NAME_RE.match(name)
    if match is None:
        raise ValueError(f"not a synthetic application name: {name!r}")
    return int(match.group(3)) if match.group(3) is not None else 1


# ----------------------------------------------------------------------
# Trace synthesis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SyntheticAppParams:
    """The derived shape of one synthetic application (pre-scaling)."""

    seed: int
    index: int
    #: One spec per kernel; each carries its own ``launches_per_run``.
    kernels: Tuple[KernelSpec, ...]
    per_launch_cpu_us: Tuple[float, ...]
    setup_cpu_us: float
    teardown_cpu_us: float
    input_bytes: int
    output_bytes: int

    @property
    def name(self) -> str:
        """The application's canonical synthetic name."""
        return synthetic_app_name(self.seed, self.index)


def derive_app_params(seed: int, index: int) -> SyntheticAppParams:
    """Derive the full-scale shape of application ``(seed, index)``.

    Every quantity is a pure function of the seed and index.  Ranges are
    chosen so a single thread block always fits on an SM (the generated
    kernels are *valid*, arbitrarily-shaped programs, not garbage) while
    spanning occupancies from 1 to 16 blocks per SM, register- and
    shared-memory-limited kernels, and CPU- or transfer-heavy phase mixes.
    """
    num_kernels = _int_between(1, 3, seed, index, "num_kernels")
    kernels: List[KernelSpec] = []
    per_launch_cpu: List[float] = []
    for k in range(num_kernels):
        blocks = _int_between(16, 192, seed, index, k, "blocks")
        tb_time = 0.8 + _u(seed, index, k, "tb_time") * 23.2  # 0.8 .. 24.0 µs
        registers = _int_between(1024, 24576, seed, index, k, "regs")
        if _u(seed, index, k, "smem?") < 0.6:
            shared = 0
        else:
            shared = _int_between(1, 128, seed, index, k, "smem") * 256  # ≤ 32 KiB
        threads = _pick((64, 128, 256, 512), seed, index, k, "threads")
        kernels.append(
            KernelSpec(
                name=f"k{k}",
                benchmark=synthetic_app_name(seed, index),
                num_thread_blocks=blocks,
                avg_tb_time_us=round(tb_time, 3),
                usage=ResourceUsage(
                    registers_per_block=registers,
                    shared_memory_per_block=shared,
                    threads_per_block=threads,
                ),
                launches_per_run=_int_between(1, 4, seed, index, k, "launches"),
            )
        )
        per_launch_cpu.append(round(1.0 + _u(seed, index, k, "cpu") * 79.0, 3))

    return SyntheticAppParams(
        seed=seed,
        index=index,
        kernels=tuple(kernels),
        per_launch_cpu_us=tuple(per_launch_cpu),
        setup_cpu_us=round(20.0 + _u(seed, index, "setup_cpu") * 1980.0, 3),
        teardown_cpu_us=round(10.0 + _u(seed, index, "teardown_cpu") * 790.0, 3),
        input_bytes=_int_between(64, 4096, seed, index, "input") * KIB,
        output_bytes=_int_between(32, 2048, seed, index, "output") * KIB,
    )


def build_synthetic_trace(
    name: str, scale: Optional[WorkloadScale] = None
) -> ApplicationTrace:
    """Build the application trace of a synthetic app at the given scale.

    Scaling follows the Parboil models: thread-block counts scale with
    ``tb_scale``, launch counts with ``launch_scale``, and host-side time and
    transfer sizes with their product, so the compute/transfer balance of the
    application is preserved across scales.

    A ``-x<multiplier>`` name suffix (see :func:`synthetic_app_name`) scales
    the kernel grids and transfer sizes *up* by the multiplier after the
    workload-scale reduction: the ``large_gpu`` scenario family uses it to
    grow work proportionally with the simulated SM count while keeping every
    other derived quantity (per-block times, footprints, phase mix) fixed.
    """
    seed, index = parse_synthetic_app(name)
    multiplier = synthetic_block_multiplier(name)
    params = derive_app_params(seed, index)
    scale = scale if scale is not None else WorkloadScale.full()
    host_scale = scale.host_scale

    phases = []
    for spec, cpu_us in zip(params.kernels, params.per_launch_cpu_us):
        scaled_spec = spec.scaled(scale.tb_scale)
        if multiplier > 1:
            scaled_spec = dataclasses.replace(
                scaled_spec,
                num_thread_blocks=scaled_spec.num_thread_blocks * multiplier,
            )
        phases.append(
            KernelPhase(
                kernel=scaled_spec,
                launches=max(1, round(spec.launches_per_run * scale.launch_scale)),
                cpu_time_us=max(0.5, cpu_us * scale.tb_scale),
            )
        )
    return TraceGenerator().build(
        name,
        phases=phases,
        input_bytes=max(4 * KIB, int(params.input_bytes * host_scale) * multiplier),
        output_bytes=max(4 * KIB, int(params.output_bytes * host_scale) * multiplier),
        setup_cpu_time_us=max(1.0, params.setup_cpu_us * host_scale),
        teardown_cpu_time_us=max(1.0, params.teardown_cpu_us * host_scale),
    )


class SyntheticSuite:
    """A benchmark suite resolving synthetic *and* Parboil application names.

    ``syn-<seed>-<index>`` names are rebuilt deterministically from the name
    alone; every other name is delegated to a fallback suite (default: the
    :class:`~repro.workloads.parboil.ParboilSuite` at the same scale).  This
    is the default suite of :meth:`repro.system.GPUSystem.from_scenario` and
    :class:`~repro.workloads.multiprogram.WorkloadRunner`, so scenarios can
    freely mix synthetic and Parboil applications.
    """

    def __init__(self, scale: Optional[WorkloadScale] = None, *, fallback=None):
        self.scale = scale if scale is not None else WorkloadScale.full()
        self._fallback = fallback if fallback is not None else ParboilSuite(self.scale)
        self._trace_cache: dict[str, ApplicationTrace] = {}

    def names(self) -> Sequence[str]:
        """The fallback suite's names (the synthetic namespace is open-ended)."""
        return self._fallback.names()

    def trace(self, name: str) -> ApplicationTrace:
        """The (cached) trace of ``name`` at the suite's scale."""
        if is_synthetic_app(name):
            if name not in self._trace_cache:
                self._trace_cache[name] = build_synthetic_trace(name, self.scale)
            return self._trace_cache[name]
        return self._fallback.trace(name)


# ----------------------------------------------------------------------
# Scenario generation
# ----------------------------------------------------------------------
def generate_synthetic_scheme(seed: int) -> SchemeSpec:
    """Derive a scheme (policy × mechanism × controller × transfer) from a seed.

    The controller dimension covers the per-request preemption API: the
    legacy controller-less shape, an explicit ``static`` wrap, ``hybrid``
    with a sampled drain budget (so deadline fallbacks at every point of the
    latency range get fuzzed), and ``adaptive``.
    """
    policy = _pick(SCHEME_POLICIES, seed, "policy")
    mechanism = _pick(SCHEME_MECHANISMS, seed, "mechanism")
    transfer = _pick(SCHEME_TRANSFER_POLICIES, seed, "transfer")
    controller = _pick(SCHEME_CONTROLLERS, seed, "controller")
    controller_options = {}
    if controller == "hybrid":
        # 0.5 .. 50 µs: from "falls back almost always" to "drains almost
        # always", covering mid-drain mixes in between.
        controller_options["drain_budget_us"] = round(
            0.5 + _u(seed, "drain_budget") * 49.5, 3
        )
    if controller is None:
        name = f"{policy}_{mechanism}"
    elif controller == "static":
        # For static the mechanism fully determines behaviour: keep it in
        # the label so fuzz reports stay distinguishable.
        name = f"{policy}_static_{mechanism}"
    else:
        name = f"{policy}_{controller}"
    return SchemeSpec(
        policy=policy,
        mechanism=mechanism,
        transfer_policy=transfer,
        controller=controller,
        controller_options=controller_options,
        name=name,
    )


#: Arrival-process kinds sampled by the open-loop fuzzer dimension.
ARRIVAL_KINDS = ("poisson", "mmpp", "lognormal", "pareto")

#: Admission policies sampled by the open-loop fuzzer dimension.
ARRIVAL_ADMISSIONS = ("drop", "drop_oldest", "block")


def generate_synthetic_arrivals(seed: int, num_processes: int) -> tuple:
    """Derive an ``(arrivals, slo)`` pair for an open-loop scenario.

    Every draw is key-addressed under fresh ``ol_*`` keys, so enabling the
    open-loop dimension never disturbs the closed-loop draws of the same
    seed (existing goldens stay byte-identical).
    """
    horizon_us = round(6_000.0 + _u(seed, "ol_horizon") * 9_000.0, 3)
    tenants = []
    for i in range(num_processes):
        kind = _pick(ARRIVAL_KINDS, seed, "ol_kind", i)
        tenant = {
            "process": kind,
            "seed": _int_between(0, 9_999, seed, "ol_seed", i),
            "mean_interarrival_us": round(150.0 + _u(seed, "ol_mean", i) * 600.0, 3),
        }
        if kind == "mmpp":
            tenant["burstiness"] = round(2.0 + _u(seed, "ol_burst", i) * 10.0, 3)
        tenants.append(tenant)
    if _u(seed, "ol_slo_hp?") < 0.3:
        tenants[0]["slo_us"] = round(100.0 + _u(seed, "ol_slo_hp") * 400.0, 3)
    arrivals = {
        "horizon_us": horizon_us,
        "warmup_us": round(horizon_us * 0.125, 3),
        "window_us": round(horizon_us * 0.25, 3),
        "queue_capacity": _int_between(4, 32, seed, "ol_capacity"),
        "admission": _pick(ARRIVAL_ADMISSIONS, seed, "ol_admission"),
        "max_inflight": _int_between(1, 6, seed, "ol_inflight"),
        "tenants": tenants,
    }
    slo = {"default": round(200.0 + _u(seed, "ol_slo") * 2_000.0, 3)}
    return arrivals, slo


#: Trace sources sampled by the trace-driven fuzzer dimension.
TRACE_SOURCE_KINDS = ("azure_faas", "pareto_burst", "lognormal_diurnal")


def generate_synthetic_trace_arrivals(seed: int, num_processes: int) -> tuple:
    """Derive an ``(arrivals, slo)`` pair driven by a synthesized trace.

    The trace-driven sibling of :func:`generate_synthetic_arrivals`: a
    seed-derived :data:`repro.registry.TRACE_SOURCES` synthesizer builds a
    :class:`~repro.loadgen.trace.WorkloadTrace`, whose per-tenant gap lists
    become non-wrapping ``replay`` tenants.  Every draw is key-addressed
    under fresh ``td_*`` keys, so enabling the trace-driven dimension never
    disturbs the closed-loop, open-loop or cluster draws of the same seed
    (existing goldens stay byte-identical).
    """
    from repro.loadgen.synth import synthesize_trace  # local: avoids cycle

    horizon_us = round(6_000.0 + _u(seed, "td_horizon") * 9_000.0, 3)
    trace = synthesize_trace(
        _pick(TRACE_SOURCE_KINDS, seed, "td_source"),
        seed=_int_between(0, 9_999, seed, "td_seed"),
        horizon_us=horizon_us,
        num_tenants=num_processes,
        mean_interarrival_us=round(150.0 + _u(seed, "td_mean") * 600.0, 3),
    )
    tenants = []
    for i, tenant in enumerate(trace.tenants):
        gaps = tenant.gaps_us()
        if not gaps:
            # A tenant whose stream drew no arrivals inside the horizon:
            # one past-horizon gap keeps replay's non-empty invariant while
            # still producing zero requests.
            gaps = [round(horizon_us + 1.0, 3)]
        spec = {
            "process": "replay",
            "seed": i,
            "interarrival_us": gaps,
            "wrap": False,
        }
        if tenant.priority:
            spec["priority"] = tenant.priority
        tenants.append(spec)
    arrivals = {
        "horizon_us": horizon_us,
        "warmup_us": round(horizon_us * 0.125, 3),
        "window_us": round(horizon_us * 0.25, 3),
        "queue_capacity": _int_between(4, 32, seed, "td_capacity"),
        "admission": _pick(ARRIVAL_ADMISSIONS, seed, "td_admission"),
        "max_inflight": _int_between(1, 6, seed, "td_inflight"),
        "tenants": tenants,
    }
    slo = {"default": round(200.0 + _u(seed, "td_slo") * 2_000.0, 3)}
    return arrivals, slo


#: Routers sampled by the cluster fuzzer dimension.
CLUSTER_ROUTERS = ("round_robin", "least_loaded", "tenant_affinity", "priority_spill")


def generate_synthetic_cluster(seed: int, horizon_us: float) -> dict:
    """Derive a ``cluster=`` section for a fleet scenario.

    Like the open-loop draws, every key is fresh (``cl_*``), so enabling the
    cluster dimension never disturbs the closed- or open-loop draws of the
    same seed.
    """
    router = _pick(CLUSTER_ROUTERS, seed, "cl_router")
    router_options: dict = {}
    if router == "priority_spill":
        router_options["spill_margin"] = _int_between(2, 6, seed, "cl_margin")
    if router in ("tenant_affinity", "priority_spill"):
        router_options["seed"] = _int_between(0, 99, seed, "cl_affinity_seed")
    return {
        "num_gpus": _int_between(2, 5, seed, "cl_gpus"),
        "router": router,
        "router_options": router_options,
        "epoch_us": round(horizon_us / _int_between(4, 10, seed, "cl_epochs"), 3),
    }


def generate_synthetic_scenario(
    seed: int,
    *,
    scale: str = "smoke",
    validate: bool = False,
    trace: bool = False,
    scheme: Optional[SchemeSpec] = None,
    min_processes: int = 2,
    max_processes: int = 5,
    block_multiplier: int = 1,
    config_overrides: Optional[dict] = None,
    open_loop: bool = False,
    cluster: bool = False,
    trace_driven: bool = False,
    metrics: Optional[dict] = None,
    queue: Optional[str] = None,
) -> ScenarioSpec:
    """Derive one complete multiprogram scenario from an integer seed.

    The process count, per-process applications, high-priority slot, priority
    values, arrival stagger and (unless overridden) the scheduling scheme are
    all seed-derived; the same seed always yields byte-identical spec JSON.

    ``block_multiplier`` scales every application's kernel grids (through the
    ``-x<multiplier>`` name suffix) and ``config_overrides`` rides through to
    the spec verbatim — together they let the ``large_gpu`` scenario family
    reuse the fuzzer's seed-derived shapes at modern-GPU scale.

    ``open_loop`` adds a seed-derived ``arrivals=``/``slo=`` section (kind,
    rate, burstiness, admission policy, SLO budgets), turning the scenario
    into an open-loop serving run (see :mod:`repro.serving`); the draws use
    fresh hash keys, so closed-loop scenarios of the same seed are unchanged.

    ``cluster`` (implies ``open_loop``) additionally adds a seed-derived
    ``cluster=`` section (fleet size, router, epoch length), turning the
    scenario into a multi-GPU fleet run (see :mod:`repro.cluster`); its
    draws are likewise fresh-keyed.

    ``trace_driven`` (implies ``open_loop``) replaces the synthetic arrival
    processes with non-wrapping ``replay`` streams fed by a seed-derived
    workload trace (:mod:`repro.loadgen.synth`) — the fuzzer's hook into the
    trace pipeline.  Its draws use fresh ``td_*`` keys, so every other
    dimension of the same seed is unchanged.  Composes with ``cluster``.
    """
    if seed < 0:
        raise ValueError("seed must be non-negative")
    if not 1 <= min_processes <= max_processes:
        raise ValueError("need 1 <= min_processes <= max_processes")
    num_processes = _int_between(min_processes, max_processes, seed, "num_processes")
    applications = tuple(
        synthetic_app_name(seed, i, block_multiplier) for i in range(num_processes)
    )
    if num_processes >= 2 and _u(seed, "priority?") < 0.5:
        high_priority_index: Optional[int] = _int_between(
            0, num_processes - 1, seed, "hp_index"
        )
        high_priority = _int_between(1, 10, seed, "hp_value")
    else:
        high_priority_index = None
        high_priority = 10
    arrivals = slo = cluster_section = None
    if trace_driven:
        arrivals, slo = generate_synthetic_trace_arrivals(seed, num_processes)
    elif open_loop or cluster:
        arrivals, slo = generate_synthetic_arrivals(seed, num_processes)
    if cluster:
        cluster_section = generate_synthetic_cluster(seed, arrivals["horizon_us"])
    return ScenarioSpec(
        scheme=scheme if scheme is not None else generate_synthetic_scheme(seed),
        applications=applications,
        high_priority_index=high_priority_index,
        workload_id=seed,
        scale=scale,
        config_overrides=config_overrides or {},
        min_iterations=_int_between(1, 2, seed, "min_iterations"),
        start_stagger_us=round(_u(seed, "stagger") * 25.0, 3),
        high_priority=high_priority,
        validate=validate,
        trace=trace,
        arrivals=arrivals,
        slo=slo,
        cluster=cluster_section,
        metrics=metrics,
        queue=queue,
    )


def generate_synthetic_scenarios(
    count: int,
    *,
    seed: int = 2014,
    scale: str = "smoke",
    validate: bool = False,
    trace: bool = False,
    scheme: Optional[SchemeSpec] = None,
    min_processes: int = 2,
    max_processes: int = 5,
    open_loop: bool = False,
    metrics: Optional[dict] = None,
    queue: Optional[str] = None,
) -> List[ScenarioSpec]:
    """Derive ``count`` scenarios from consecutive sub-seeds of ``seed``.

    Sub-seed ``i`` is ``seed * 1000 + i`` so the batches for nearby base
    seeds stay disjoint; each scenario remains individually reproducible
    from its own ``workload_id``.
    """
    if count < 1:
        raise ValueError("count must be positive")
    return [
        generate_synthetic_scenario(
            seed * 1000 + i,
            scale=scale,
            validate=validate,
            trace=trace,
            scheme=scheme,
            min_processes=min_processes,
            max_processes=max_processes,
            open_loop=open_loop,
            queue=queue,
            metrics=metrics,
        )
        for i in range(count)
    ]


__all__ = [
    "SYNTHETIC_PREFIX",
    "SCHEME_POLICIES",
    "SCHEME_MECHANISMS",
    "SCHEME_CONTROLLERS",
    "SCHEME_TRANSFER_POLICIES",
    "SyntheticAppParams",
    "SyntheticSuite",
    "synthetic_app_name",
    "is_synthetic_app",
    "parse_synthetic_app",
    "synthetic_block_multiplier",
    "derive_app_params",
    "build_synthetic_trace",
    "generate_synthetic_scheme",
    "generate_synthetic_arrivals",
    "generate_synthetic_cluster",
    "generate_synthetic_scenario",
    "generate_synthetic_scenarios",
    "ARRIVAL_KINDS",
    "ARRIVAL_ADMISSIONS",
    "CLUSTER_ROUTERS",
]
