"""Multiprogrammed workload composition and execution (paper Sec. 4.1).

The paper builds multiprogrammed workloads by co-scheduling randomly chosen
Parboil applications (2, 4, 6 or 8 processes), replaying every application
until each has completed at least three full runs, and computing the
multiprogram metrics from the completed runs only.  This module provides:

* :class:`WorkloadSpec` — one workload (an ordered list of applications, with
  an optional high-priority process).
* :func:`generate_random_workloads` / :func:`generate_priority_workloads` —
  seeded random workload generation.
* :class:`IsolatedBaseline` — cached isolated execution times of every
  application (the denominator of every metric).
* :class:`WorkloadRunner` — builds a :class:`~repro.system.GPUSystem` for a
  workload under a chosen policy and preemption mechanism, runs it with the
  replay methodology, and returns the per-process timings and metrics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.gpu.config import SystemConfig
from repro.memory.transfer_engine import TransferSchedulingPolicy
from repro.metrics.multiprogram import MultiprogramMetrics
from repro.scenario import (
    DEFAULT_MAX_EVENTS,
    HIGH_PRIORITY,
    NORMAL_PRIORITY,
    ScenarioSpec,
    SchemeSpec,
    _canonicalize,
    config_to_overrides,
)
from repro.system import GPUSystem
from repro.workloads.parboil import ParboilSuite
from repro.workloads.scale import WorkloadScale


@dataclass(frozen=True)
class WorkloadSpec:
    """One multiprogrammed workload."""

    #: Application (benchmark) names, one per process, in start order.
    applications: Sequence[str]
    #: Index into ``applications`` of the high-priority process (or ``None``).
    high_priority_index: Optional[int] = None
    #: Identifier used in reports (workload number within its generation).
    workload_id: int = 0

    def __post_init__(self) -> None:
        if len(self.applications) < 1:
            raise ValueError("a workload needs at least one application")
        if self.high_priority_index is not None and not (
            0 <= self.high_priority_index < len(self.applications)
        ):
            raise ValueError("high_priority_index out of range")

    @property
    def num_processes(self) -> int:
        """Number of processes in the workload."""
        return len(self.applications)

    @property
    def high_priority_application(self) -> Optional[str]:
        """Benchmark name of the high-priority process (if any)."""
        if self.high_priority_index is None:
            return None
        return self.applications[self.high_priority_index]

    def process_names(self) -> List[str]:
        """Unique process names (``app#slot``) for the workload."""
        return [f"{app}#{slot}" for slot, app in enumerate(self.applications)]

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        parts = []
        for slot, app in enumerate(self.applications):
            marker = "*" if slot == self.high_priority_index else ""
            parts.append(f"{app}{marker}")
        return f"W{self.workload_id}[{', '.join(parts)}]"


# ----------------------------------------------------------------------
# Workload generation
# ----------------------------------------------------------------------
def generate_random_workloads(
    num_processes: int,
    count: int,
    *,
    seed: int = 2014,
    benchmarks: Optional[Sequence[str]] = None,
) -> List[WorkloadSpec]:
    """Generate ``count`` random workloads of ``num_processes`` processes.

    Applications are drawn without replacement while the benchmark pool
    lasts (at most 10 distinct applications), then with replacement, which
    mirrors "co-scheduling several benchmark applications chosen randomly".
    """
    if num_processes < 1:
        raise ValueError("num_processes must be positive")
    if count < 1:
        raise ValueError("count must be positive")
    pool = list(benchmarks) if benchmarks is not None else list(ParboilSuite().names())
    rng = random.Random(seed * 1_000_003 + num_processes)
    workloads = []
    for workload_id in range(count):
        apps = _draw_applications(rng, pool, num_processes)
        workloads.append(WorkloadSpec(applications=tuple(apps), workload_id=workload_id))
    return workloads


def generate_priority_workloads(
    num_processes: int,
    *,
    workloads_per_benchmark: int = 1,
    seed: int = 2014,
    benchmarks: Optional[Sequence[str]] = None,
) -> List[WorkloadSpec]:
    """Generate priority workloads for the Figure 5/6 experiments.

    Every benchmark appears as the high-priority process the same number of
    times (``workloads_per_benchmark``); the remaining processes are drawn
    randomly from the full pool.
    """
    if num_processes < 2:
        raise ValueError("priority workloads need at least two processes")
    pool = list(benchmarks) if benchmarks is not None else list(ParboilSuite().names())
    rng = random.Random(seed * 7_000_003 + num_processes)
    workloads = []
    workload_id = 0
    for high_priority_app in pool:
        for _ in range(workloads_per_benchmark):
            others_pool = [name for name in pool if name != high_priority_app] or pool
            others = _draw_applications(rng, others_pool, num_processes - 1)
            apps = [high_priority_app, *others]
            workloads.append(
                WorkloadSpec(
                    applications=tuple(apps),
                    high_priority_index=0,
                    workload_id=workload_id,
                )
            )
            workload_id += 1
    return workloads


def _draw_applications(rng: random.Random, pool: Sequence[str], count: int) -> List[str]:
    """Draw ``count`` applications, without replacement while possible."""
    chosen: List[str] = []
    remaining = list(pool)
    rng.shuffle(remaining)
    while len(chosen) < count:
        if not remaining:
            remaining = list(pool)
            rng.shuffle(remaining)
        chosen.append(remaining.pop())
    return chosen


# ----------------------------------------------------------------------
# Isolated baselines
# ----------------------------------------------------------------------
class IsolatedBaseline:
    """Cached isolated execution times of every application."""

    def __init__(
        self,
        suite: ParboilSuite,
        *,
        config: Optional[SystemConfig] = None,
        iterations: int = 1,
    ):
        self._suite = suite
        self._config = config if config is not None else SystemConfig()
        self._iterations = iterations
        self._cache: Dict[str, float] = {}

    def time_us(self, application: str) -> float:
        """Isolated mean iteration time of ``application`` (cached)."""
        if application not in self._cache:
            system = GPUSystem(self._config, policy="fcfs", mechanism="context_switch")
            trace = self._suite.trace(application)
            process = system.add_process(application, trace, max_iterations=self._iterations)
            system.run(max_events=DEFAULT_MAX_EVENTS)
            self._cache[application] = process.mean_iteration_time_us()
        return self._cache[application]

    def all_times_us(self) -> Dict[str, float]:
        """Isolated times of every benchmark in the suite."""
        return {name: self.time_us(name) for name in self._suite.names()}


# ----------------------------------------------------------------------
# Workload execution
# ----------------------------------------------------------------------
@dataclass
class WorkloadResult:
    """Outcome of running one workload under one policy/mechanism."""

    spec: WorkloadSpec
    policy: str
    mechanism: str
    #: Mean completed-iteration time per process name (``app#slot``).
    process_times_us: Dict[str, float]
    #: Application name per process name.
    process_applications: Dict[str, str]
    metrics: MultiprogramMetrics
    #: Execution-engine statistics snapshot (preemption counts, etc.).
    engine_stats: Dict[str, float] = field(default_factory=dict)
    simulated_time_us: float = 0.0
    events_processed: int = 0
    #: Whether the runtime invariant-validation layer observed the run.
    validated: bool = False
    #: Invariant violations detected during the run (see
    #: :mod:`repro.validation`); always empty for a correct simulator.
    violations: List[Dict] = field(default_factory=list)
    #: Telemetry summary of the run (see
    #: :func:`repro.telemetry.analytics.summarize`): event counts,
    #: per-mechanism preemption-latency samples and stats, queueing stats and
    #: exported artifact paths.  ``None`` unless the scenario enabled tracing.
    trace_summary: Optional[Dict] = None
    #: Open-loop serving summary (admission counters, streaming latency
    #: quantiles, SLO violations; see :meth:`repro.serving.ServingDriver.summary`).
    #: ``None`` for classic closed-loop scenarios.
    serving_summary: Optional[Dict] = None

    @property
    def high_priority_process(self) -> Optional[str]:
        """Process name of the workload's high-priority process."""
        if self.spec.high_priority_index is None:
            return None
        return self.spec.process_names()[self.spec.high_priority_index]

    def high_priority_ntt(self) -> float:
        """NTT of the high-priority process (Figure 5)."""
        process = self.high_priority_process
        if process is None:
            raise ValueError("this workload has no high-priority process")
        return self.metrics.ntt_of(process)


class WorkloadRunner:
    """Runs multiprogrammed workloads under a chosen policy and mechanism."""

    def __init__(
        self,
        suite=None,
        *,
        scale: Optional[WorkloadScale] = None,
        config: Optional[SystemConfig] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
    ):
        from repro.workloads.synthetic import SyntheticSuite  # local: avoids cycle

        self.scale = scale if scale is not None else WorkloadScale.reduced()
        #: Benchmark suite; the default resolves Parboil names and synthetic
        #: ``syn-*`` applications alike (see :mod:`repro.workloads.synthetic`).
        self.suite = suite if suite is not None else SyntheticSuite(self.scale)
        #: Unscaled configuration, kept for scenario serialisation.
        self._base_config = config if config is not None else SystemConfig()
        #: Fixed host/PCIe latencies are scaled together with the workload so
        #: the compute/transfer balance matches the full-scale system.
        self.config = self.scale.scale_config(self._base_config)
        self.baseline = IsolatedBaseline(self.suite, config=self.config)
        self._max_events = max_events

    # ------------------------------------------------------------------
    # Running one workload
    # ------------------------------------------------------------------
    def scenario_for(
        self,
        spec: WorkloadSpec,
        *,
        policy: str,
        mechanism: str = "context_switch",
        transfer_policy: Optional[TransferSchedulingPolicy] = None,
        policy_options: Optional[Dict] = None,
        min_iterations: Optional[int] = None,
    ) -> ScenarioSpec:
        """Build the declarative :class:`ScenarioSpec` for one run.

        ``transfer_policy`` defaults to NPQ for priority workloads (as in the
        paper's Sec. 4.2/4.3 experiments) and FCFS otherwise (Sec. 4.4).
        """
        if transfer_policy is None:
            transfer_policy = (
                TransferSchedulingPolicy.PRIORITY
                if spec.high_priority_index is not None
                else TransferSchedulingPolicy.FCFS
            )
        scheme = SchemeSpec(
            policy=policy,
            mechanism=mechanism,
            transfer_policy=transfer_policy.value
            if isinstance(transfer_policy, TransferSchedulingPolicy)
            else transfer_policy,
            policy_options=policy_options or {},
        )
        return ScenarioSpec.for_workload(
            spec,
            scheme,
            scale=self.scale.name,
            config_overrides=config_to_overrides(self._base_config),
            min_iterations=min_iterations,
        )

    def run(
        self,
        spec: WorkloadSpec,
        *,
        policy: str,
        mechanism: str = "context_switch",
        transfer_policy: Optional[TransferSchedulingPolicy] = None,
        policy_options: Optional[Dict] = None,
        min_iterations: Optional[int] = None,
    ) -> WorkloadResult:
        """Simulate ``spec`` under ``policy``/``mechanism`` and collect metrics."""
        return self.run_scenario(
            self.scenario_for(
                spec,
                policy=policy,
                mechanism=mechanism,
                transfer_policy=transfer_policy,
                policy_options=policy_options,
                min_iterations=min_iterations,
            )
        )

    def run_scenario(
        self,
        scenario: ScenarioSpec,
        *,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
    ) -> WorkloadResult:
        """Simulate one declarative scenario and collect metrics.

        The system is built by :meth:`GPUSystem.from_scenario` with this
        runner's (already scaled) configuration and benchmark suite, so
        results are identical whether a scenario is run here, serially, or in
        a :class:`repro.runner.BatchRunner` worker process.  A scenario whose
        scale or configuration overrides do not match this runner is rejected
        — running it here would silently produce results attributed to a
        configuration that was never simulated (use
        :func:`repro.runner.execute_scenario`, which picks the right runner).

        For a traced scenario (``scenario.trace``), ``trace_path`` names a
        Chrome trace-event JSON file to export; the raw events stay in this
        process and only the summary (plus the artifact path) travels back in
        the :class:`WorkloadResult`.  Likewise, for an observed scenario
        (``scenario.metrics``), ``metrics_path`` names a metrics JSONL time
        series to export — snapshot rows never ride the result object, so
        observability cannot perturb result bytes.
        """
        if scenario.scale != self.scale.name:
            raise ValueError(
                f"scenario scale {scenario.scale!r} does not match this runner's "
                f"scale {self.scale.name!r}"
            )
        own_overrides = _canonicalize(config_to_overrides(self._base_config))
        if dict(scenario.config_overrides) != own_overrides:
            raise ValueError(
                "scenario config_overrides do not match this runner's configuration"
            )
        if scenario.cluster is not None:
            return self._run_fleet_scenario(
                scenario, trace_path=trace_path, metrics_path=metrics_path
            )
        if scenario.arrivals is not None:
            return self._run_serving_scenario(
                scenario, trace_path=trace_path, metrics_path=metrics_path
            )
        system = GPUSystem.from_scenario(scenario, config=self.config, suite=self.suite)
        iterations = (
            scenario.min_iterations
            if scenario.min_iterations is not None
            else self.scale.min_iterations
        )
        max_events = (
            scenario.max_events if scenario.max_events is not None else self._max_events
        )
        system.run(stop_after_min_iterations=iterations, max_events=max_events)

        spec = WorkloadSpec(
            applications=scenario.applications,
            high_priority_index=scenario.high_priority_index,
            workload_id=scenario.workload_id,
        )
        process_names = spec.process_names()
        process_times = system.mean_iteration_times_us()
        process_applications = dict(zip(process_names, spec.applications))
        isolated = {
            name: self.baseline.time_us(app) for name, app in process_applications.items()
        }
        metrics = MultiprogramMetrics.compute(process_times, isolated)
        if metrics_path is not None and system.metrics is not None:
            from repro.obs import write_jsonl  # local: keeps import cheap

            write_jsonl(system.metrics.rows, metrics_path, meta=system.metrics.meta)
        trace_summary = None
        if system.telemetry is not None:
            from repro.telemetry.analytics import summarize  # local: keeps import cheap
            from repro.telemetry.export import write_chrome_trace

            artifacts = []
            if trace_path is not None:
                write_chrome_trace(
                    system.telemetry.events, trace_path, end_us=system.simulator.now
                )
                artifacts.append(trace_path)
            trace_summary = summarize(
                system.telemetry.events,
                now_us=system.simulator.now,
                artifacts=artifacts,
            )
        return WorkloadResult(
            spec=spec,
            policy=scenario.scheme.policy,
            mechanism=scenario.scheme.mechanism,
            process_times_us=process_times,
            process_applications=process_applications,
            metrics=metrics,
            engine_stats=system.execution_engine.utilization_snapshot(),
            simulated_time_us=system.simulator.now,
            events_processed=system.simulator.events_processed,
            validated=system.validation is not None,
            violations=system.violations(),
            trace_summary=trace_summary,
        )

    def _run_fleet_scenario(
        self,
        scenario: ScenarioSpec,
        *,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
    ) -> WorkloadResult:
        """Run a multi-GPU (``cluster=``) scenario through the fleet layer.

        Like open-loop serving, closed-loop iteration metrics do not apply;
        the fleet summary (cluster admission, merged and per-GPU serving
        metrics, routing counts) lands in
        :attr:`WorkloadResult.serving_summary`.  Runs serially here — the
        fleet experiment shards epochs over a
        :class:`~repro.runner.BatchRunner` pool directly via
        :func:`repro.cluster.run_fleet`.
        """
        from repro.cluster import run_fleet  # local: avoids cycle

        outcome = run_fleet(scenario, suite=self.suite)
        if metrics_path is not None and outcome.metrics_rows is not None:
            from repro.obs import write_jsonl  # local: keeps import cheap

            write_jsonl(outcome.metrics_rows, metrics_path, meta=outcome.metrics_meta)
        spec = WorkloadSpec(
            applications=scenario.applications,
            high_priority_index=scenario.high_priority_index,
            workload_id=scenario.workload_id,
        )
        process_applications = dict(zip(spec.process_names(), spec.applications))
        trace_summary = None
        if scenario.trace:
            from repro.telemetry.analytics import summarize  # local: keeps import cheap
            from repro.telemetry.export import write_chrome_trace

            artifacts = []
            if trace_path is not None:
                write_chrome_trace(
                    outcome.trace_events, trace_path, end_us=outcome.simulated_time_us
                )
                artifacts.append(trace_path)
            trace_summary = summarize(
                outcome.trace_events,
                now_us=outcome.simulated_time_us,
                artifacts=artifacts,
            )
        return WorkloadResult(
            spec=spec,
            policy=scenario.scheme.policy,
            mechanism=scenario.scheme.mechanism,
            process_times_us={},
            process_applications=process_applications,
            metrics=MultiprogramMetrics(ntt={}, antt=0.0, stp=0.0, fairness=0.0),
            engine_stats={},
            simulated_time_us=outcome.simulated_time_us,
            events_processed=outcome.events_processed,
            validated=outcome.validated,
            violations=outcome.violations,
            trace_summary=trace_summary,
            serving_summary=outcome.summary,
        )

    def _run_serving_scenario(
        self,
        scenario: ScenarioSpec,
        *,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
    ) -> WorkloadResult:
        """Run an open-loop (``arrivals=``) scenario through the serving layer.

        Closed-loop iteration metrics (NTT/ANTT/STP) do not apply to an
        open-loop run — request-latency quantiles, windowed throughput/ANTT
        and SLO counters live in :attr:`WorkloadResult.serving_summary`.
        """
        from repro.serving import run_serving  # local: avoids cycle

        outcome = run_serving(scenario, config=self.config, suite=self.suite)
        if metrics_path is not None and outcome.metrics_rows is not None:
            from repro.obs import write_jsonl  # local: keeps import cheap

            write_jsonl(outcome.metrics_rows, metrics_path, meta=outcome.metrics_meta)
        spec = WorkloadSpec(
            applications=scenario.applications,
            high_priority_index=scenario.high_priority_index,
            workload_id=scenario.workload_id,
        )
        process_applications = dict(zip(spec.process_names(), spec.applications))
        trace_summary = None
        if scenario.trace:
            from repro.telemetry.analytics import summarize  # local: keeps import cheap
            from repro.telemetry.export import write_chrome_trace

            artifacts = []
            if trace_path is not None:
                write_chrome_trace(
                    outcome.trace_events, trace_path, end_us=outcome.simulated_time_us
                )
                artifacts.append(trace_path)
            trace_summary = summarize(
                outcome.trace_events,
                now_us=outcome.simulated_time_us,
                artifacts=artifacts,
            )
        return WorkloadResult(
            spec=spec,
            policy=scenario.scheme.policy,
            mechanism=scenario.scheme.mechanism,
            process_times_us={},
            process_applications=process_applications,
            metrics=MultiprogramMetrics(ntt={}, antt=0.0, stp=0.0, fairness=0.0),
            engine_stats=outcome.engine_stats,
            simulated_time_us=outcome.simulated_time_us,
            events_processed=outcome.events_processed,
            validated=outcome.validated,
            violations=outcome.violations,
            trace_summary=trace_summary,
            serving_summary=outcome.summary,
        )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def run_many(
        self,
        specs: Sequence[WorkloadSpec],
        *,
        policy: str,
        mechanism: str = "context_switch",
        **kwargs,
    ) -> List[WorkloadResult]:
        """Run a list of workloads under the same policy and mechanism."""
        return [
            self.run(spec, policy=policy, mechanism=mechanism, **kwargs) for spec in specs
        ]
