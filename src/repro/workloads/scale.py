"""Workload scale presets.

A pure-Python, thread-block-granularity simulation of the paper's full
workload set (every Parboil application replayed at least three times in
every random mix, for every policy and mechanism) would take hours.  The
experiment harness therefore runs, by default, at a *reduced* scale that
preserves the quantities the paper's conclusions depend on:

* per-thread-block execution times (hence draining preemption latency),
* per-thread-block register/shared-memory state (hence context-switch
  latency),
* the relative length of kernels and applications,
* the interleaving of CPU, transfer and kernel phases.

What changes is the *number* of thread blocks and repeated kernel launches
per application (and proportionally the CPU/transfer time so the
compute/transfer balance of each application is preserved).  Because every
reported metric is a ratio over the same workload set, the shape of the
results is preserved; EXPERIMENTS.md records the scale used for each run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.gpu.config import SystemConfig


@dataclass(frozen=True)
class WorkloadScale:
    """Scaling factors applied to the Parboil application models."""

    #: Multiplier on every kernel's thread-block count (and, to keep the
    #: application balanced, on its CPU-phase durations and transfer sizes).
    tb_scale: float = 1.0
    #: Multiplier on the number of repeated launches of each kernel.
    launch_scale: float = 1.0
    #: Minimum completed iterations of every process before a
    #: multiprogrammed run stops (the paper uses 3).
    min_iterations: int = 3
    name: str = "full"

    def __post_init__(self) -> None:
        if self.tb_scale <= 0 or self.tb_scale > 1:
            raise ValueError("tb_scale must be in (0, 1]")
        if self.launch_scale <= 0 or self.launch_scale > 1:
            raise ValueError("launch_scale must be in (0, 1]")
        if self.min_iterations < 1:
            raise ValueError("min_iterations must be at least 1")

    @property
    def host_scale(self) -> float:
        """Combined scaling applied to host-side time and transfer sizes."""
        return self.tb_scale * self.launch_scale

    def scale_config(self, config: SystemConfig) -> SystemConfig:
        """Scale the fixed host/PCIe latencies consistently with the workload.

        Per-command API latency and per-transfer PCIe setup latency are fixed
        costs in the full-scale system.  When thread-block counts and launch
        counts are scaled down, application run times shrink proportionally —
        but these fixed latencies would not, so they would dominate and
        distort the compute/transfer balance.  Scaling them with
        :attr:`host_scale` keeps every application's phase mix the same as at
        full scale.
        """
        factor = self.host_scale
        if factor >= 1.0:
            return config
        cpu = dataclasses.replace(
            config.cpu,
            command_issue_latency_us=max(0.05, config.cpu.command_issue_latency_us * factor),
        )
        pcie = dataclasses.replace(
            config.pcie,
            transfer_setup_latency_us=max(0.1, config.pcie.transfer_setup_latency_us * factor),
        )
        return config.with_updates(cpu=cpu, pcie=pcie)

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def full(cls) -> "WorkloadScale":
        """The paper's scale: all thread blocks, all launches, 3 iterations."""
        return cls(tb_scale=1.0, launch_scale=1.0, min_iterations=3, name="full")

    @classmethod
    def reduced(cls) -> "WorkloadScale":
        """Default experiment scale: ~1/8 of the thread blocks, 1/4 of the
        repeated launches, 2 completed iterations per process."""
        return cls(tb_scale=0.125, launch_scale=0.25, min_iterations=2, name="reduced")

    @classmethod
    def smoke(cls) -> "WorkloadScale":
        """Tiny scale for unit tests and pytest-benchmark runs."""
        return cls(tb_scale=0.03125, launch_scale=0.1, min_iterations=1, name="smoke")

    @classmethod
    def by_name(cls, name: str) -> "WorkloadScale":
        """Look up a preset by name (``full``, ``reduced`` or ``smoke``)."""
        presets = {"full": cls.full, "reduced": cls.reduced, "smoke": cls.smoke}
        try:
            return presets[name.lower()]()
        except KeyError as exc:
            raise ValueError(f"unknown workload scale {name!r}") from exc
