"""The ``large_gpu`` scenario family: modern-scale GPUs, proportional work.

The paper evaluates a 13-SM Kepler K20c; this family scales the simulated
GPU to modern SM counts (8, 32 and 128 SMs by default) and grows the
workload *proportionally* so every configuration keeps its SMs saturated:

* the number of processes scales with the SM count,
* every synthetic application's kernel grids (and data-transfer sizes) are
  multiplied by the SM count through the fuzzer's ``-x<multiplier>`` name
  suffix (see :func:`repro.workloads.synthetic.synthetic_app_name`), and
* per-thread-block execution-time jitter is disabled (``tb_time_cv = 0``),
  which both matches the regular grids of throughput kernels and lets the
  wave-level SM execution path (:mod:`repro.gpu.sm`) collapse each issue
  burst into a single aggregated completion event.

Scenarios are plain :class:`~repro.scenario.ScenarioSpec` values built on
top of the synthetic fuzzer, so they serialise, fan out through
:class:`~repro.runner.BatchRunner` workers, and compose with ``validate=``
/ ``trace=`` like every other scenario.  The ``scale`` experiment
(:mod:`repro.experiments.scale`) and ``benchmarks/bench_scale.py`` both run
this family.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.scenario import ScenarioSpec, SchemeSpec
from repro.workloads.synthetic import generate_synthetic_scenario

#: The SM counts of the default scaling sweep (paper-scale to modern-scale).
LARGE_GPU_SM_COUNTS: Tuple[int, ...] = (8, 32, 128)

#: Base seed of the family (offset so it never collides with the fuzzer's
#: default sub-seed ranges).
LARGE_GPU_SEED = 514


KIB = 1024


def large_gpu_config_overrides(
    num_sms: int, *, wave_batching: bool = True
) -> Dict[str, Any]:
    """The :class:`~repro.gpu.config.SystemConfig` overrides of the family.

    Besides the SM count, the per-SM resources are grown to modern-GPU
    proportions (double the Kepler register file, 64-128 KB shared-memory
    partitions) so that occupancy — not a 2012-era register budget — bounds
    residency, as it does on the GPUs this family models.

    ``wave_batching=False`` forces the exact per-block completion-event path
    (one heap event per thread block); the equivalence fuzz uses it to prove
    the wave-batched path is observably identical.
    """
    if num_sms < 1:
        raise ValueError("num_sms must be positive")
    gpu: Dict[str, Any] = {
        "num_sms": num_sms,
        "registers_per_sm": 131072,
        "shared_memory_configs": [64 * KIB, 96 * KIB, 128 * KIB],
    }
    if not wave_batching:
        gpu["wave_batching"] = False
    return {"gpu": gpu, "tb_time_cv": 0.0}


def large_gpu_process_count(num_sms: int) -> int:
    """Processes used for ``num_sms`` (proportional, bounded for host cost)."""
    return max(4, min(num_sms // 4, 32))


def large_gpu_block_multiplier(num_sms: int) -> int:
    """Grid multiplier for ``num_sms``: proportional work per SM.

    Four grid-multiples per SM keeps every SM saturated through the whole
    run (thread-block work dominates setup/policy transients), which is the
    regime the scaling benchmark measures.
    """
    return 4 * num_sms


def generate_large_gpu_scenario(
    num_sms: int,
    *,
    seed: int = LARGE_GPU_SEED,
    scale: str = "smoke",
    scheme: Optional[SchemeSpec] = None,
    validate: bool = False,
    trace: bool = False,
    metrics: Optional[dict] = None,
    wave_batching: bool = True,
    queue: Optional[str] = None,
) -> ScenarioSpec:
    """One ``large_gpu`` scenario for a GPU with ``num_sms`` SMs.

    Built through :func:`~repro.workloads.synthetic.generate_synthetic_scenario`
    so the per-application shapes stay seed-derived and reproducible; the SM
    count only picks the hardware overrides, the process count and the grid
    multiplier.  The default scheme exercises the paper's contribution —
    priority scheduling with context-switch preemption — so preemptions (and
    the wave path's exact per-block fallback) occur at every size.
    """
    if scheme is None:
        scheme = SchemeSpec(
            policy="ppq",
            mechanism="context_switch",
            transfer_policy="npq",
            name=f"large_gpu_{num_sms}sm",
        )
    processes = large_gpu_process_count(num_sms)
    return generate_synthetic_scenario(
        seed * 1000 + num_sms,
        scale=scale,
        validate=validate,
        trace=trace,
        metrics=metrics,
        queue=queue,
        scheme=scheme,
        min_processes=processes,
        max_processes=processes,
        block_multiplier=large_gpu_block_multiplier(num_sms),
        config_overrides=large_gpu_config_overrides(
            num_sms, wave_batching=wave_batching
        ),
    )


def generate_large_gpu_scenarios(
    sm_counts: Sequence[int] = LARGE_GPU_SM_COUNTS,
    *,
    seed: int = LARGE_GPU_SEED,
    scale: str = "smoke",
    scheme: Optional[SchemeSpec] = None,
    validate: bool = False,
    trace: bool = False,
    metrics: Optional[dict] = None,
    wave_batching: bool = True,
    queue: Optional[str] = None,
) -> Tuple[ScenarioSpec, ...]:
    """The scaling sweep: one scenario per SM count, smallest first."""
    if not sm_counts:
        raise ValueError("sm_counts must not be empty")
    return tuple(
        generate_large_gpu_scenario(
            num_sms,
            seed=seed,
            scale=scale,
            scheme=scheme,
            validate=validate,
            trace=trace,
            metrics=metrics,
            wave_batching=wave_batching,
            queue=queue,
        )
        for num_sms in sorted(sm_counts)
    )


__all__ = [
    "LARGE_GPU_SM_COUNTS",
    "LARGE_GPU_SEED",
    "large_gpu_config_overrides",
    "large_gpu_process_count",
    "generate_large_gpu_scenario",
    "generate_large_gpu_scenarios",
]
