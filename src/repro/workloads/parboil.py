"""The Parboil benchmark models (paper Table 1).

The paper evaluates ten of the eleven Parboil benchmarks (BFS is excluded
because its global synchronisation cannot be modelled by the trace-driven
infrastructure).  Table 1 publishes, for every kernel: the number of
launches, the kernel execution time, the number of thread blocks, the average
thread-block execution time, per-block shared-memory and register usage, the
maximum number of concurrent thread blocks per SM, the fraction of on-chip
storage used and the projected context-save time.  Those rows are encoded
verbatim in :data:`TABLE1_RECORDS`.

What Table 1 does **not** publish is the CPU-phase durations and transfer
sizes of each application.  We synthesise them (documented per application in
:data:`_APP_PROFILES`) so that each application keeps its published Class-2
placement (SHORT / MEDIUM / LONG total run time) relative to the others.  See
DESIGN.md section 3 for the full substitution rationale.

Timescale note
--------------
Table 1's "Time/TB" column equals ``kernel time x TBs-per-SM / num TBs``,
i.e. it does not divide by the 13 SMs that execute concurrently.  The paper's
preemption-latency analysis (Sec. 4.2) uses this column directly as the
thread-block execution time, so we do the same: the per-block execution time
in the model is the published Time/TB value.  As a consequence the simulated
kernel durations are ~13x shorter than the published wall-clock kernel times;
the synthesised CPU and transfer times are chosen on the same compressed
timescale, so every application keeps its relative length and its
compute/transfer balance.  All evaluation metrics are ratios, so this uniform
compression does not change the shape of the results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpu.command_queue import TransferDirection
from repro.gpu.kernel import KernelSpec
from repro.gpu.resources import ResourceUsage
from repro.trace.schema import (
    ApplicationTrace,
    CpuPhaseOp,
    DeviceSyncOp,
    KernelLaunchOp,
    MallocOp,
    MemcpyOp,
    TraceOp,
)
from repro.workloads.scale import WorkloadScale

KIB = 1024
MIB = 1024 * KIB

#: Class-1 grouping (by kernel execution time) used in Figure 5.
CLASS1_SHORT = "SHORT"
CLASS1_MEDIUM = "MEDIUM"
CLASS1_LONG = "LONG"


@dataclass(frozen=True)
class KernelRecord:
    """One row of Table 1."""

    benchmark: str
    kernel: str
    launches: int
    kernel_time_us: float
    num_thread_blocks: int
    tb_time_us: float
    shared_mem_per_tb: int
    regs_per_tb: int
    tbs_per_sm: int
    resource_pct: float
    save_time_us: float

    @property
    def qualified_name(self) -> str:
        """``benchmark.kernel`` identifier."""
        return f"{self.benchmark}.{self.kernel}"

    def threads_per_block(self) -> int:
        """Synthetic threads-per-block consistent with the measured occupancy.

        The real block sizes are not published; this choice guarantees the
        2048-threads-per-SM limit never constrains occupancy below the
        measured TBs/SM value.
        """
        return max(32, min(1024, 2048 // self.tbs_per_sm))

    def to_kernel_spec(self, *, tb_scale: float = 1.0) -> KernelSpec:
        """Build the simulator's kernel spec for this row."""
        blocks = max(1, round(self.num_thread_blocks * tb_scale))
        return KernelSpec(
            name=self.kernel,
            benchmark=self.benchmark,
            num_thread_blocks=blocks,
            avg_tb_time_us=self.tb_time_us,
            usage=ResourceUsage(
                registers_per_block=self.regs_per_tb,
                shared_memory_per_block=self.shared_mem_per_tb,
                threads_per_block=self.threads_per_block(),
            ),
            max_blocks_per_sm=self.tbs_per_sm,
            measured_kernel_time_us=self.kernel_time_us,
            launches_per_run=self.launches,
        )


#: Table 1, verbatim (times in microseconds, sizes in bytes).
TABLE1_RECORDS: Tuple[KernelRecord, ...] = (
    KernelRecord("lbm", "StreamCollide", 100, 2905.81, 18000, 2.42, 0, 4320, 15, 83.26, 16.20),
    KernelRecord("histo", "final", 20, 70.24, 42, 5.02, 0, 19456, 3, 75.00, 14.59),
    KernelRecord("histo", "prescan", 20, 20.87, 64, 1.30, 4096, 9216, 4, 52.63, 10.24),
    KernelRecord("histo", "intermediates", 20, 77.88, 65, 4.79, 0, 8964, 4, 46.07, 8.96),
    KernelRecord("histo", "main", 20, 372.58, 84, 4.44, 24576, 16896, 1, 29.61, 5.76),
    KernelRecord("tpacf", "genhists", 1, 14615.33, 201, 72.71, 13312, 7680, 1, 14.14, 2.75),
    KernelRecord("spmv", "spmvjds", 50, 42.38, 374, 1.81, 0, 928, 16, 19.08, 3.71),
    KernelRecord("mri-q", "ComputeQ", 2, 3389.71, 1024, 26.48, 0, 5376, 8, 55.26, 10.75),
    KernelRecord("mri-q", "ComputePhiMag", 1, 4.70, 4, 4.70, 0, 6144, 4, 31.58, 6.14),
    KernelRecord("sad", "largersadcalc8", 1, 8174.21, 8040, 16.27, 0, 3328, 16, 68.42, 13.31),
    KernelRecord("sad", "largersadcalc16", 1, 1529.38, 8040, 3.04, 0, 832, 16, 17.11, 3.33),
    KernelRecord("sad", "mbsadcalc", 1, 15446.02, 128640, 0.84, 2224, 2135, 7, 24.20, 4.71),
    KernelRecord("sgemm", "mysgemmNT", 1, 3717.18, 528, 98.56, 512, 4480, 14, 82.89, 16.13),
    KernelRecord("stencil", "block2Dregtiling", 100, 2227.30, 256, 8.70, 0, 41984, 1, 53.95, 10.50),
    KernelRecord("cutcp", "lattice6overlap", 11, 1520.11, 121, 37.69, 4116, 3328, 3, 16.80, 3.27),
    KernelRecord("mri-gridding", "binning", 1, 2021.41, 5188, 1.56, 0, 4096, 4, 21.05, 4.10),
    KernelRecord("mri-gridding", "scaninter1", 9, 7.59, 29, 4.14, 665, 1173, 16, 27.54, 5.36),
    KernelRecord("mri-gridding", "scanL1", 8, 826.12, 2084, 1.19, 4368, 9216, 3, 39.74, 7.73),
    KernelRecord("mri-gridding", "uniformAdd", 8, 127.30, 2084, 0.24, 16, 4096, 4, 21.07, 4.10),
    KernelRecord("mri-gridding", "reorder", 1, 2535.30, 5188, 1.95, 0, 8192, 4, 42.11, 8.19),
    KernelRecord("mri-gridding", "splitSort", 7, 3838.84, 2594, 4.44, 4484, 10240, 3, 43.79, 8.52),
    KernelRecord("mri-gridding", "griddingGPU", 1, 208398.47, 65536, 31.80, 1536, 3648, 10, 51.81, 10.08),
    KernelRecord("mri-gridding", "splitRearrange", 7, 1622.93, 2594, 1.88, 4160, 5888, 3, 26.71, 5.20),
    KernelRecord("mri-gridding", "scaninter2", 9, 8.81, 29, 4.80, 665, 1173, 16, 27.54, 5.36),
)

#: Datasets the paper traced each benchmark with (Table 1, square brackets).
DATASETS: Dict[str, str] = {
    "lbm": "short",
    "histo": "default",
    "tpacf": "small",
    "spmv": "medium",
    "mri-q": "large",
    "sad": "large",
    "sgemm": "medium",
    "stencil": "default",
    "cutcp": "small",
    "mri-gridding": "small",
}

#: Class 1 (by kernel execution time) and Class 2 (by application execution
#: time) groupings from Table 1.
CLASS1: Dict[str, str] = {
    "lbm": "MEDIUM",
    "histo": "SHORT",
    "tpacf": "LONG",
    "spmv": "SHORT",
    "mri-q": "MEDIUM",
    "sad": "LONG",
    "sgemm": "MEDIUM",
    "stencil": "MEDIUM",
    "cutcp": "MEDIUM",
    "mri-gridding": "LONG",
}

CLASS2: Dict[str, str] = {
    "lbm": "LONG",
    "histo": "MEDIUM",
    "tpacf": "MEDIUM",
    "spmv": "SHORT",
    "mri-q": "SHORT",
    "sad": "LONG",
    "sgemm": "SHORT",
    "stencil": "LONG",
    "cutcp": "MEDIUM",
    "mri-gridding": "LONG",
}

BENCHMARK_NAMES: Tuple[str, ...] = tuple(CLASS1.keys())


@dataclass(frozen=True)
class _AppProfile:
    """Synthesised host-side profile of one application (not in Table 1).

    CPU-phase durations and transfer sizes are chosen so that each
    application's total isolated run time keeps its published Class-2
    placement on the compressed timescale (see the module docstring).
    """

    setup_cpu_us: float
    per_launch_cpu_us: float
    teardown_cpu_us: float
    input_bytes: int
    output_bytes: int


_APP_PROFILES: Dict[str, _AppProfile] = {
    "lbm": _AppProfile(2000.0, 60.0, 1000.0, 4 * MIB, 4 * MIB),
    "stencil": _AppProfile(1500.0, 80.0, 800.0, 3 * MIB, 3 * MIB),
    "sad": _AppProfile(6000.0, 500.0, 12000.0, 8 * MIB, 12 * MIB),
    "mri-gridding": _AppProfile(3000.0, 30.0, 2000.0, 6 * MIB, 6 * MIB),
    "histo": _AppProfile(400.0, 10.0, 300.0, 2 * MIB, 1 * MIB),
    "tpacf": _AppProfile(800.0, 200.0, 400.0, 1 * MIB, 256 * KIB),
    "cutcp": _AppProfile(500.0, 40.0, 300.0, 1 * MIB, 1 * MIB),
    "spmv": _AppProfile(20.0, 1.0, 10.0, 96 * KIB, 32 * KIB),
    "mri-q": _AppProfile(50.0, 20.0, 30.0, 512 * KIB, 256 * KIB),
    "sgemm": _AppProfile(40.0, 30.0, 30.0, 768 * KIB, 256 * KIB),
}


@dataclass(frozen=True)
class ParboilApplication:
    """One Parboil benchmark: its Table 1 rows plus the synthesised profile."""

    name: str
    records: Tuple[KernelRecord, ...]
    profile: _AppProfile

    @property
    def dataset(self) -> str:
        """The input dataset the paper traced the benchmark with."""
        return DATASETS[self.name]

    @property
    def kernel_class(self) -> str:
        """Class-1 grouping (Figure 5)."""
        return CLASS1[self.name]

    @property
    def application_class(self) -> str:
        """Class-2 grouping (Figure 7a)."""
        return CLASS2[self.name]

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def total_kernel_launches(self, launch_scale: float = 1.0) -> int:
        """Total kernel launches in one run at the given launch scale."""
        return sum(max(1, round(r.launches * launch_scale)) for r in self.records)

    def kernel_specs(self, *, tb_scale: float = 1.0) -> Dict[str, KernelSpec]:
        """Kernel specs keyed by kernel name."""
        return {r.kernel: r.to_kernel_spec(tb_scale=tb_scale) for r in self.records}

    # ------------------------------------------------------------------
    # Trace construction
    # ------------------------------------------------------------------
    def build_trace(self, scale: Optional[WorkloadScale] = None) -> ApplicationTrace:
        """Build the application trace at the requested scale.

        The trace follows the typical structure of a Parboil application
        (paper Sec. 2.1): setup CPU work, input transfers to the device,
        repeated rounds of (CPU phase, kernel launch, synchronisation) —
        kernels that are launched multiple times are interleaved round-robin,
        mirroring the iterative structure of the originals — and finally the
        output transfer back to the host.
        """
        scale = scale if scale is not None else WorkloadScale.full()
        tb_scale = scale.tb_scale
        launch_scale = scale.launch_scale
        kernels = self.kernel_specs(tb_scale=tb_scale)
        profile = self.profile

        # Host-side time and transfer sizes scale with the thread-block scale
        # so the compute/transfer balance of the application is preserved.
        host_scale = tb_scale * launch_scale

        operations: List[TraceOp] = []
        operations.append(CpuPhaseOp(max(1.0, profile.setup_cpu_us * host_scale)))
        input_bytes = max(4 * KIB, int(profile.input_bytes * host_scale))
        output_bytes = max(4 * KIB, int(profile.output_bytes * host_scale))
        operations.append(MallocOp(input_bytes, label="input"))
        operations.append(MallocOp(output_bytes, label="output"))
        operations.append(MemcpyOp(input_bytes, TransferDirection.HOST_TO_DEVICE))

        scaled_launches = {
            r.kernel: max(1, round(r.launches * launch_scale)) for r in self.records
        }
        remaining = dict(scaled_launches)
        rounds = max(remaining.values())
        per_launch_cpu = max(0.5, profile.per_launch_cpu_us * tb_scale)
        for _ in range(rounds):
            for record in self.records:
                if remaining[record.kernel] <= 0:
                    continue
                remaining[record.kernel] -= 1
                operations.append(CpuPhaseOp(per_launch_cpu))
                operations.append(KernelLaunchOp(record.kernel))
            operations.append(DeviceSyncOp())

        operations.append(MemcpyOp(output_bytes, TransferDirection.DEVICE_TO_HOST))
        operations.append(CpuPhaseOp(max(1.0, profile.teardown_cpu_us * host_scale)))

        return ApplicationTrace(
            name=self.name,
            kernels=kernels,
            operations=operations,
            streams=(0,),
            kernel_class=self.kernel_class,
            application_class=self.application_class,
        )


class ParboilSuite:
    """The ten-application Parboil suite used in the paper's evaluation."""

    def __init__(self, scale: Optional[WorkloadScale] = None):
        self.scale = scale if scale is not None else WorkloadScale.full()
        self._applications: Dict[str, ParboilApplication] = {}
        for name in BENCHMARK_NAMES:
            records = tuple(r for r in TABLE1_RECORDS if r.benchmark == name)
            self._applications[name] = ParboilApplication(
                name=name, records=records, profile=_APP_PROFILES[name]
            )
        self._trace_cache: Dict[str, ApplicationTrace] = {}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> Sequence[str]:
        """Benchmark names, in Table 1 order."""
        return list(BENCHMARK_NAMES)

    def application(self, name: str) -> ParboilApplication:
        """Look up one application model by name."""
        try:
            return self._applications[name]
        except KeyError as exc:
            raise KeyError(f"unknown Parboil benchmark {name!r}") from exc

    def applications(self) -> List[ParboilApplication]:
        """All application models."""
        return [self._applications[name] for name in BENCHMARK_NAMES]

    def trace(self, name: str) -> ApplicationTrace:
        """The (cached) application trace of ``name`` at the suite's scale."""
        if name not in self._trace_cache:
            self._trace_cache[name] = self.application(name).build_trace(self.scale)
        return self._trace_cache[name]

    def by_kernel_class(self, kernel_class: str) -> List[str]:
        """Benchmarks whose Class-1 label matches ``kernel_class``."""
        return [name for name in BENCHMARK_NAMES if CLASS1[name] == kernel_class.upper()]

    def by_application_class(self, application_class: str) -> List[str]:
        """Benchmarks whose Class-2 label matches ``application_class``."""
        return [name for name in BENCHMARK_NAMES if CLASS2[name] == application_class.upper()]

    def records(self, name: Optional[str] = None) -> List[KernelRecord]:
        """Table 1 rows, optionally filtered to one benchmark."""
        if name is None:
            return list(TABLE1_RECORDS)
        return [r for r in TABLE1_RECORDS if r.benchmark == name]
