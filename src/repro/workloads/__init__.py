"""Workloads: Parboil benchmark models and multiprogrammed workload generation.

* :mod:`repro.workloads.parboil` — the ten Parboil applications of the
  paper's Table 1, encoded as kernel statistics plus synthesised application
  traces.
* :mod:`repro.workloads.multiprogram` — random multiprogrammed workload
  composition, the replay methodology of Sec. 4.1, and helpers to run a
  workload under a chosen policy/mechanism and collect per-process timings.
* :mod:`repro.workloads.scale` — the reduced-scale presets used to keep
  Python simulation times tractable (documented substitution, DESIGN.md
  Sec. 3.6).
* :mod:`repro.workloads.synthetic` — the seeded scenario fuzzer: arbitrary
  multiprogram mixes (grid sizes, footprints, phase balance, arrivals,
  priorities, process counts) derived from a single integer seed.
* :mod:`repro.workloads.large_gpu` — the modern-scale scenario family:
  8/32/128-SM GPUs with proportionally grown synthetic workloads, used by
  the ``scale`` experiment and ``benchmarks/bench_scale.py``.
"""

from repro.workloads.large_gpu import (
    LARGE_GPU_SM_COUNTS,
    generate_large_gpu_scenario,
    generate_large_gpu_scenarios,
)
from repro.workloads.multiprogram import (
    IsolatedBaseline,
    WorkloadResult,
    WorkloadRunner,
    WorkloadSpec,
    generate_priority_workloads,
    generate_random_workloads,
)
from repro.workloads.parboil import (
    BENCHMARK_NAMES,
    KernelRecord,
    ParboilApplication,
    ParboilSuite,
    TABLE1_RECORDS,
)
from repro.workloads.scale import WorkloadScale
from repro.workloads.synthetic import (
    SyntheticSuite,
    build_synthetic_trace,
    generate_synthetic_scenario,
    generate_synthetic_scenarios,
)

__all__ = [
    "LARGE_GPU_SM_COUNTS",
    "generate_large_gpu_scenario",
    "generate_large_gpu_scenarios",
    "SyntheticSuite",
    "build_synthetic_trace",
    "generate_synthetic_scenario",
    "generate_synthetic_scenarios",
    "KernelRecord",
    "TABLE1_RECORDS",
    "BENCHMARK_NAMES",
    "ParboilApplication",
    "ParboilSuite",
    "WorkloadScale",
    "WorkloadSpec",
    "WorkloadResult",
    "WorkloadRunner",
    "IsolatedBaseline",
    "generate_random_workloads",
    "generate_priority_workloads",
]
