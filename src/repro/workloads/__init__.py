"""Workloads: Parboil benchmark models and multiprogrammed workload generation.

* :mod:`repro.workloads.parboil` — the ten Parboil applications of the
  paper's Table 1, encoded as kernel statistics plus synthesised application
  traces.
* :mod:`repro.workloads.multiprogram` — random multiprogrammed workload
  composition, the replay methodology of Sec. 4.1, and helpers to run a
  workload under a chosen policy/mechanism and collect per-process timings.
* :mod:`repro.workloads.scale` — the reduced-scale presets used to keep
  Python simulation times tractable (documented substitution, DESIGN.md
  Sec. 3.6).
"""

from repro.workloads.multiprogram import (
    IsolatedBaseline,
    WorkloadResult,
    WorkloadRunner,
    WorkloadSpec,
    generate_priority_workloads,
    generate_random_workloads,
)
from repro.workloads.parboil import (
    BENCHMARK_NAMES,
    KernelRecord,
    ParboilApplication,
    ParboilSuite,
    TABLE1_RECORDS,
)
from repro.workloads.scale import WorkloadScale

__all__ = [
    "KernelRecord",
    "TABLE1_RECORDS",
    "BENCHMARK_NAMES",
    "ParboilApplication",
    "ParboilSuite",
    "WorkloadScale",
    "WorkloadSpec",
    "WorkloadResult",
    "WorkloadRunner",
    "IsolatedBaseline",
    "generate_random_workloads",
    "generate_priority_workloads",
]
