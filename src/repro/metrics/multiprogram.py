"""System-level metrics for multiprogram workloads.

All metrics follow Eyerman & Eeckhout, "System-level performance metrics for
multiprogram workloads" (IEEE Micro 2008), which the paper adopts
(Sec. 4.1).  Every metric compares the performance of an application inside
the multiprogrammed workload against its isolated execution:

* **NTT** (normalized turnaround time) of application *i*:
  ``T_multi(i) / T_isolated(i)`` — slowdown, >= 1 in the common case.
* **ANTT**: the arithmetic mean of the NTTs (lower is better).
* **STP** (system throughput): ``sum_i T_isolated(i) / T_multi(i)`` — the
  aggregate rate of progress, between 0 and the number of processes
  (higher is better).
* **Fairness**: the ratio of the minimum to the maximum normalized progress
  over all applications, between 0 (starvation) and 1 (perfectly equal
  slowdowns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping


def normalized_turnaround_time(multi_time_us: float, isolated_time_us: float) -> float:
    """NTT of one application (its slowdown in the multiprogrammed run)."""
    if isolated_time_us <= 0:
        raise ValueError("isolated time must be positive")
    if multi_time_us <= 0:
        raise ValueError("multiprogrammed time must be positive")
    return multi_time_us / isolated_time_us


def normalized_progress(multi_time_us: float, isolated_time_us: float) -> float:
    """Normalized progress of one application (the inverse of its NTT)."""
    return 1.0 / normalized_turnaround_time(multi_time_us, isolated_time_us)


def average_normalized_turnaround_time(
    multi_times_us: Mapping[str, float], isolated_times_us: Mapping[str, float]
) -> float:
    """ANTT over all applications in the workload (lower is better)."""
    ntts = _per_process_ntt(multi_times_us, isolated_times_us)
    return sum(ntts.values()) / len(ntts)


def system_throughput(
    multi_times_us: Mapping[str, float], isolated_times_us: Mapping[str, float]
) -> float:
    """STP over all applications in the workload (higher is better)."""
    ntts = _per_process_ntt(multi_times_us, isolated_times_us)
    return sum(1.0 / ntt for ntt in ntts.values())


def fairness(
    multi_times_us: Mapping[str, float], isolated_times_us: Mapping[str, float]
) -> float:
    """Fairness: min over max normalized progress (1 = perfectly fair)."""
    ntts = _per_process_ntt(multi_times_us, isolated_times_us)
    progress = [1.0 / ntt for ntt in ntts.values()]
    top = max(progress)
    if top == 0:
        return 0.0
    return min(progress) / top


def _per_process_ntt(
    multi_times_us: Mapping[str, float], isolated_times_us: Mapping[str, float]
) -> Dict[str, float]:
    if not multi_times_us:
        raise ValueError("metrics need at least one application")
    missing = set(multi_times_us) - set(isolated_times_us)
    if missing:
        raise KeyError(f"isolated times missing for: {sorted(missing)}")
    return {
        name: normalized_turnaround_time(multi_times_us[name], isolated_times_us[name])
        for name in multi_times_us
    }


@dataclass(frozen=True)
class MultiprogramMetrics:
    """All four metrics of one multiprogrammed run, plus the per-process NTTs."""

    ntt: Dict[str, float]
    antt: float
    stp: float
    fairness: float

    @classmethod
    def compute(
        cls,
        multi_times_us: Mapping[str, float],
        isolated_times_us: Mapping[str, float],
    ) -> "MultiprogramMetrics":
        """Compute every metric from per-process mean turnaround times."""
        ntts = _per_process_ntt(multi_times_us, isolated_times_us)
        progress = [1.0 / v for v in ntts.values()]
        return cls(
            ntt=ntts,
            antt=sum(ntts.values()) / len(ntts),
            stp=sum(progress),
            fairness=(min(progress) / max(progress)) if max(progress) > 0 else 0.0,
        )

    def ntt_of(self, process_name: str) -> float:
        """NTT of one process in the workload."""
        return self.ntt[process_name]
