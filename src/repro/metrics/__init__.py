"""Multiprogram performance metrics (Eyerman & Eeckhout; paper Sec. 4.1)."""

from repro.metrics.multiprogram import (
    MultiprogramMetrics,
    average_normalized_turnaround_time,
    fairness,
    normalized_progress,
    normalized_turnaround_time,
    system_throughput,
)

__all__ = [
    "MultiprogramMetrics",
    "normalized_turnaround_time",
    "average_normalized_turnaround_time",
    "normalized_progress",
    "system_throughput",
    "fairness",
]
