"""The paper's primary contribution: preemption mechanisms, the hardware
scheduling framework, and scheduling policies.

* :mod:`repro.core.preemption` — the two preemption mechanisms of Sec. 3.2
  (context switch and SM draining) and the per-request preemption
  controllers (``static``, ``hybrid``, ``adaptive``) that pick between them.
* :mod:`repro.core.framework` — the scheduling framework of Sec. 3.3
  (command buffers, active queue, KSRT, SMST, PTBQ).
* :mod:`repro.core.policies` — scheduling policies built on the framework:
  FCFS (baseline), non-preemptive and preemptive priority queues, and the
  Dynamic Spatial Sharing policy of Sec. 3.4.
"""

from repro.core.framework import (
    ActiveQueue,
    CommandBufferSet,
    KernelStatusEntry,
    KernelStatusRegisterTable,
    PreemptedThreadBlockQueue,
    SchedulingFramework,
    SMStatusEntry,
    SMStatusTable,
)
from repro.core.preemption import (
    AdaptiveController,
    ContextSwitchMechanism,
    DrainingMechanism,
    HybridController,
    PreemptionController,
    PreemptionMechanism,
    PreemptionRequest,
    StaticController,
)
from repro.core.policies import (
    DynamicSpatialSharingPolicy,
    FCFSPolicy,
    NonPreemptivePriorityPolicy,
    PreemptivePriorityPolicy,
    SchedulingPolicy,
)

#: Legacy factory re-exports that have moved to the component registries.
#: Accessing them through ``repro.core`` still works but warns once; use
#: ``repro.registry.POLICIES.create(...)`` / ``MECHANISMS.create(...)`` (or
#: the factories in their defining modules) instead.
_DEPRECATED_FACTORIES = ("make_policy", "make_mechanism")
_deprecation_warned: set = set()


def __getattr__(name: str):
    if name in _DEPRECATED_FACTORIES:
        if name not in _deprecation_warned:
            _deprecation_warned.add(name)
            import warnings

            warnings.warn(
                f"importing {name!r} from repro.core is deprecated; look the "
                "component up in repro.registry (POLICIES/MECHANISMS/"
                "CONTROLLERS) or import the factory from its defining module",
                DeprecationWarning,
                stacklevel=2,
            )
        if name == "make_policy":
            from repro.core.policies import make_policy

            return make_policy
        from repro.core.preemption import make_mechanism

        return make_mechanism
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ActiveQueue",
    "CommandBufferSet",
    "KernelStatusEntry",
    "KernelStatusRegisterTable",
    "PreemptedThreadBlockQueue",
    "SchedulingFramework",
    "SMStatusEntry",
    "SMStatusTable",
    "PreemptionMechanism",
    "ContextSwitchMechanism",
    "DrainingMechanism",
    "PreemptionController",
    "PreemptionRequest",
    "StaticController",
    "HybridController",
    "AdaptiveController",
    # make_policy / make_mechanism are deliberately NOT in __all__: they are
    # deprecated re-exports served (with a one-time warning) by __getattr__,
    # and a star-import must not trigger the warning.
    "SchedulingPolicy",
    "FCFSPolicy",
    "NonPreemptivePriorityPolicy",
    "PreemptivePriorityPolicy",
    "DynamicSpatialSharingPolicy",
]
