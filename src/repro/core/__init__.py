"""The paper's primary contribution: preemption mechanisms, the hardware
scheduling framework, and scheduling policies.

* :mod:`repro.core.preemption` — the two preemption mechanisms of Sec. 3.2
  (context switch and SM draining).
* :mod:`repro.core.framework` — the scheduling framework of Sec. 3.3
  (command buffers, active queue, KSRT, SMST, PTBQ).
* :mod:`repro.core.policies` — scheduling policies built on the framework:
  FCFS (baseline), non-preemptive and preemptive priority queues, and the
  Dynamic Spatial Sharing policy of Sec. 3.4.
"""

from repro.core.framework import (
    ActiveQueue,
    CommandBufferSet,
    KernelStatusEntry,
    KernelStatusRegisterTable,
    PreemptedThreadBlockQueue,
    SchedulingFramework,
    SMStatusEntry,
    SMStatusTable,
)
from repro.core.preemption import (
    ContextSwitchMechanism,
    DrainingMechanism,
    PreemptionMechanism,
    make_mechanism,
)
from repro.core.policies import (
    DynamicSpatialSharingPolicy,
    FCFSPolicy,
    NonPreemptivePriorityPolicy,
    PreemptivePriorityPolicy,
    SchedulingPolicy,
    make_policy,
)

__all__ = [
    "ActiveQueue",
    "CommandBufferSet",
    "KernelStatusEntry",
    "KernelStatusRegisterTable",
    "PreemptedThreadBlockQueue",
    "SchedulingFramework",
    "SMStatusEntry",
    "SMStatusTable",
    "PreemptionMechanism",
    "ContextSwitchMechanism",
    "DrainingMechanism",
    "make_mechanism",
    "SchedulingPolicy",
    "FCFSPolicy",
    "NonPreemptivePriorityPolicy",
    "PreemptivePriorityPolicy",
    "DynamicSpatialSharingPolicy",
    "make_policy",
]
