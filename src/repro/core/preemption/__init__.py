"""Preemption mechanisms (paper Sec. 3.2).

Two mechanisms are provided, both driven by the SM driver when a scheduling
policy marks an SM *reserved*:

* :class:`~repro.core.preemption.context_switch.ContextSwitchMechanism` —
  drain the SM pipelines, save the execution context of every resident
  thread block to off-chip memory, and re-issue (and restore) those blocks
  later.  Latency is predictable: resident state bytes divided by the SM's
  share of memory bandwidth.
* :class:`~repro.core.preemption.draining.DrainingMechanism` — stop issuing
  new thread blocks and let the resident ones run to completion.  No state is
  moved, but the latency depends on the remaining execution time of the
  resident blocks and is unbounded for persistent kernels.

Scheduling policies are completely oblivious to which mechanism is in use.

Which mechanism handles a given preemption is decided per request by a
*preemption controller* (:mod:`repro.core.preemption.controller`): ``static``
reproduces the legacy one-mechanism behaviour, ``hybrid`` drains under a
deadline and falls back to the context switch, and ``adaptive`` picks the
mechanism with the lower estimated SM-idle cost.
"""

from repro.core.preemption.base import PreemptionHost, PreemptionMechanism
from repro.core.preemption.context_switch import ContextSwitchMechanism
from repro.core.preemption.controller import (
    AdaptiveController,
    HybridController,
    PreemptionController,
    PreemptionRequest,
    ResidentBlockInfo,
    StaticController,
    make_controller,
)
from repro.core.preemption.draining import DrainingMechanism


def make_mechanism(name: str) -> PreemptionMechanism:
    """Create a preemption mechanism by name (thin delegate to the registry).

    The built-ins are ``"context_switch"`` and ``"draining"``; anything
    registered in :data:`repro.registry.MECHANISMS` works.
    """
    from repro.registry import MECHANISMS

    return MECHANISMS.create(name)


__all__ = [
    "PreemptionMechanism",
    "PreemptionHost",
    "ContextSwitchMechanism",
    "DrainingMechanism",
    "PreemptionController",
    "PreemptionRequest",
    "ResidentBlockInfo",
    "StaticController",
    "HybridController",
    "AdaptiveController",
    "make_controller",
    "make_mechanism",
]
