"""The SM-draining preemption mechanism (paper Sec. 3.2).

Preemption happens on a thread-block boundary: the SM driver stops issuing
new thread blocks to the reserved SM and the preemption completes when every
resident thread block finishes execution.  Since thread blocks are
independent and each one carries its own state, nothing has to be saved or
restored.

The drawback is the unpredictable latency: it depends on the remaining
execution time of the currently resident blocks and the mechanism cannot
preempt kernels with very long (or persistent/never-terminating) thread
blocks at all.  The repository demonstrates that failure mode in
``tests/core/test_preemption_mechanisms.py`` and the persistent-kernel
example.  The ``hybrid`` and ``adaptive`` preemption controllers
(:mod:`repro.core.preemption.controller`) exist precisely to sidestep it:
they only route a preemption request here when the estimated drain time is
acceptable, falling back to the context switch otherwise.
"""

from __future__ import annotations

from repro.core.preemption.base import PreemptionMechanism
from repro.gpu.sm import StreamingMultiprocessor
from repro.registry import register_mechanism


@register_mechanism("draining", "drain", "sm_draining")
class DrainingMechanism(PreemptionMechanism):
    """Preempt by stopping issue and waiting for resident blocks to finish."""

    name = "draining"

    def initiate(self, sm: StreamingMultiprocessor) -> None:
        """Stop issuing to ``sm``; complete immediately if it is empty.

        Stopping the issue of new blocks requires no action here: the SM
        driver never issues blocks to an SM whose SMST state is RESERVED.
        """
        self._record_reservation(sm.sm_id)
        self.stats.counter("preemptions_initiated").add()
        if sm.is_empty:
            # Zero-latency completion still goes through the event queue so
            # that the policy's view of the SM does not change re-entrantly
            # in the middle of its own decision procedure.
            self.host.simulator.schedule(
                0.0,
                lambda: self._complete(sm.sm_id, []),
                label=f"draining.sm{sm.sm_id}.empty",
            )

    def on_block_completed(self, sm: StreamingMultiprocessor) -> None:
        """The SM is free once its last resident block has finished."""
        if sm.is_empty:
            self._complete(sm.sm_id, [])
        else:
            self.stats.counter("drain_progress_blocks").add()
