"""Base interface for preemption mechanisms.

A mechanism is a *stateless-per-request strategy*: it is bound once to a
*host* (the execution engine / SM driver), keeps all transient bookkeeping
keyed by SM id, and can therefore serve any number of interleaved preemptions
on different SMs.  Which mechanism handles a given preemption request is
decided by the engine's :class:`~repro.core.preemption.controller.PreemptionController`
— the same instance may free SM0 while a different mechanism frees SM1.

A mechanism is invoked in two situations:

* :meth:`PreemptionMechanism.initiate` — the scheduling policy just reserved
  the SM; the mechanism must free it (immediately, by saving state, or by
  waiting for draining).
* :meth:`PreemptionMechanism.on_block_completed` — a thread block resident on
  a reserved SM completed naturally; the mechanism decides whether the SM is
  now free.

When the SM is free the mechanism calls
:meth:`PreemptionHost.preemption_complete`, handing back any thread blocks it
evicted so the SM driver can store them in the kernel's PTBQ.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Protocol

from repro.core.framework.framework import SchedulingFramework
from repro.gpu.config import SystemConfig
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.thread_block import ThreadBlock
from repro.sim.engine import Simulator
from repro.sim.stats import RunningStats, StatRegistry


class PreemptionHost(Protocol):
    """The view of the execution engine a preemption mechanism needs."""

    @property
    def simulator(self) -> Simulator:
        ...  # pragma: no cover - protocol definition

    @property
    def system_config(self) -> SystemConfig:
        ...  # pragma: no cover - protocol definition

    @property
    def framework(self) -> SchedulingFramework:
        ...  # pragma: no cover - protocol definition

    def preemption_complete(self, sm_id: int, evicted_blocks: List[ThreadBlock]) -> None:
        ...  # pragma: no cover - protocol definition


class PreemptionMechanism(abc.ABC):
    """Abstract preemption mechanism (a per-SM-keyed strategy).

    Per-preemption state (reservation timestamps, scheduled save/drain
    events) must be keyed by ``sm_id`` so one bound instance can handle
    concurrent preemptions of different SMs; instance-wide state is reserved
    for statistics.
    """

    #: Short name used in experiment reports ("context_switch" / "draining").
    name: str = "abstract"

    def __init__(self) -> None:
        self._host: Optional[PreemptionHost] = None
        self.stats = StatRegistry()
        #: Observed latency from reservation to SM free, per preemption.
        self.latency_stats = RunningStats("preemption_latency_us")
        self._reserve_times: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind(self, host: PreemptionHost) -> None:
        """Attach the mechanism to its host engine (called once)."""
        self._host = host

    @property
    def host(self) -> PreemptionHost:
        """The bound host; raises if the mechanism has not been bound."""
        if self._host is None:
            raise RuntimeError(f"preemption mechanism {self.name} is not bound to an engine")
        return self._host

    # ------------------------------------------------------------------
    # Mechanism hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def initiate(self, sm: StreamingMultiprocessor) -> None:
        """Begin freeing a just-reserved SM."""

    @abc.abstractmethod
    def on_block_completed(self, sm: StreamingMultiprocessor) -> None:
        """A resident block of a reserved SM completed naturally.

        The mechanism decides whether the SM is now free; if so it calls
        :meth:`PreemptionHost.preemption_complete` (via :meth:`_complete`).
        """

    def restore_latency_us(self, block: ThreadBlock, state_bytes_per_block: int) -> float:
        """Extra latency charged when re-issuing a previously preempted block.

        Only the context-switch mechanism ever has preempted blocks to
        restore; the default is zero.
        """
        return 0.0

    # ------------------------------------------------------------------
    # Shared bookkeeping helpers for subclasses
    # ------------------------------------------------------------------
    def _record_reservation(self, sm_id: int) -> None:
        """Remember when the SM was reserved, to measure preemption latency."""
        self._reserve_times[sm_id] = self.host.simulator.now

    def _record_completion(self, sm_id: int) -> None:
        """Record the preemption latency of a completed preemption."""
        start = self._reserve_times.pop(sm_id, None)
        if start is not None:
            self.latency_stats.add(self.host.simulator.now - start)
        self.stats.counter("preemptions_completed").add()

    def _complete(self, sm_id: int, evicted: List[ThreadBlock]) -> None:
        """Finish the preemption of ``sm_id`` and notify the host."""
        self._record_completion(sm_id)
        self.host.preemption_complete(sm_id, evicted)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
