"""Preemption controllers: per-request mechanism selection (paper Sec. 3.2).

The paper frames context switching and SM draining as two points on a
latency-vs-overhead tradeoff and argues the hardware could pick between them
*dynamically, per preemption*.  A :class:`PreemptionController` is that
decision point: every time a scheduling policy reserves an SM, the execution
engine builds a :class:`PreemptionRequest` — a snapshot of everything the
hardware would know at that instant (incoming kernel priority, resident
blocks and their progress, estimated drain time, projected context
save/restore cost, an optional latency budget) — and asks the controller
which mechanism should free *this* SM *this* time.

Mechanisms themselves stay the two strategies of Sec. 3.2
(:class:`~repro.core.preemption.context_switch.ContextSwitchMechanism`,
:class:`~repro.core.preemption.draining.DrainingMechanism`); they are
per-SM-keyed and can serve interleaved preemptions on different SMs, so the
engine keeps one bound instance per mechanism name and routes each in-flight
preemption to the instance the controller chose.

Three controllers ship:

* :class:`StaticController` — always the same mechanism; wraps the legacy
  "one mechanism bound at system construction" behaviour and is the
  backward-compatibility path (``SchemeSpec(controller=None)`` resolves to
  it, and its outputs are byte-identical to the pre-controller code).
* :class:`HybridController` — deadline-bounded draining: drain when the
  estimated drain time fits within a budget, fall back to the context
  switch when it does not (or when draining can never finish, e.g.
  persistent kernels with effectively unbounded blocks).
* :class:`AdaptiveController` — cost-model pick: estimates the SM-idle time
  each mechanism would cause (drain = remaining resident execution;
  switch = pipeline drain + save + deferred restore) and takes the minimum.

Custom controllers plug in through :func:`repro.registry.register_controller`
exactly like policies and mechanisms:

>>> from repro.registry import register_controller
>>> from repro.core.preemption.controller import PreemptionController
>>> @register_controller("always_drain", description="demo controller")
... class AlwaysDrain(PreemptionController):
...     name = "always_drain"
...     def select(self, request):
...         return "draining"
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.gpu.config import SystemConfig
from repro.registry import MECHANISMS, UnknownComponentError, register_controller
from repro.sim.stats import StatRegistry

#: Default drain deadline of the hybrid controller, µs.  Sized against the
#: paper's Table 1 projected context-save times (~16-20 µs for a fully
#: occupied SM): draining is allowed as long as it is expected to finish
#: within roughly one worst-case save, otherwise the bounded-latency context
#: switch is taken.
DEFAULT_DRAIN_BUDGET_US = 25.0


@dataclass(frozen=True)
class ResidentBlockInfo:
    """Progress snapshot of one thread block resident on the reserved SM."""

    kernel_launch_id: int
    block_index: int
    #: Estimated execution time left on the SM (µs) as of the request.
    estimated_remaining_us: float
    #: Architectural state (registers + shared memory) a save would move.
    state_bytes: int


@dataclass(frozen=True)
class PreemptionRequest:
    """Everything a controller may consult for one preemption decision.

    Estimates are what the hardware could plausibly derive from its tables
    (KSRT/SMST residency, per-kernel resource usage, observed block runtimes);
    they are *estimates*, not oracle values — issue/restore latencies of
    in-flight blocks are not included.
    """

    sm_id: int
    now: float
    #: Resident blocks of the reserved SM (empty for an idle-but-reserved SM).
    resident: Tuple[ResidentBlockInfo, ...]
    #: KSR index of the kernel the SM is reserved for (``None`` = released).
    incoming_ksr_index: Optional[int]
    #: Scheduling priority of the incoming kernel (``None`` when unknown).
    incoming_priority: Optional[int]
    #: Scheduling priority of the kernel currently running on the SM.
    resident_priority: Optional[int]
    #: Estimated time until the SM drains naturally (max resident remaining).
    estimated_drain_us: float
    #: Bytes a context switch would save (sum of resident state).
    save_bytes: int
    #: Time to move ``save_bytes`` off-chip at the per-SM bandwidth share.
    save_time_us: float
    #: Deferred cost of restoring the saved state before re-issue.
    restore_time_us: float
    #: Pipeline-drain latency charged before a context-save trap can start.
    pipeline_drain_us: float
    #: Optional latency budget (``SchedulerConfig.preemption_latency_budget_us``).
    latency_budget_us: Optional[float]
    config: SystemConfig = field(repr=False, compare=False, default=None)  # type: ignore[assignment]

    @property
    def resident_blocks(self) -> int:
        """Number of thread blocks resident on the reserved SM."""
        return len(self.resident)

    @property
    def estimated_switch_us(self) -> float:
        """Estimated time until a context switch frees the SM."""
        return self.pipeline_drain_us + self.save_time_us


class PreemptionController(abc.ABC):
    """Per-request mechanism selection policy.

    Controllers are consulted synchronously inside
    :meth:`~repro.gpu.execution_engine.ExecutionEngine.reserve_sm` and must
    not schedule events or mutate simulation state — they only pick a
    mechanism name (a :data:`repro.registry.MECHANISMS` name or alias).

    ``needs_request`` lets request-independent controllers (``static``) skip
    the per-preemption snapshot entirely: the engine passes ``None`` instead
    of building a :class:`PreemptionRequest`, keeping the legacy hot path
    free of bookkeeping it would discard.
    """

    #: Short name used in scheme specs and experiment reports.
    name: str = "abstract"
    #: Whether :meth:`select` reads the request.  When ``False`` the engine
    #: passes ``None`` instead of building one.
    needs_request: bool = True

    def __init__(self) -> None:
        self.stats = StatRegistry()
        #: Chosen-name -> stats-label memo (selection names repeat, and the
        #: registry lookup must stay off the per-preemption hot path).
        self._stat_labels: dict = {}

    def bind(self, host) -> None:
        """Attach the controller to its engine (called once at wiring time).

        The default keeps no reference; controllers that need construction
        defaults from the engine (e.g. :class:`StaticController`) override.
        """

    @abc.abstractmethod
    def select(self, request: Optional[PreemptionRequest]) -> str:
        """Return the mechanism name that should handle ``request``.

        ``request`` is ``None`` only for controllers that declared
        ``needs_request = False``.
        """

    def decide(self, request: Optional[PreemptionRequest]) -> str:
        """Select a mechanism and record the decision (engine entry point)."""
        chosen = self.select(request)
        # Stats are keyed by canonical name so a controller answering with an
        # alias ("cs") does not split one mechanism's count across counters.
        # Unregistered names (custom mechanism instances seeded into the
        # engine's pool) are counted as returned.
        label = self._stat_labels.get(chosen)
        if label is None:
            try:
                label = MECHANISMS.canonical_name(chosen)
            except UnknownComponentError:
                label = chosen
            self._stat_labels[chosen] = label
        self.stats.counter(f"selected.{label}").add()
        return chosen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


@register_controller("static", "fixed")
class StaticController(PreemptionController):
    """Always the same mechanism (the legacy behaviour).

    With ``mechanism=None`` (the default) the controller adopts the engine's
    configured default mechanism when it is bound, so
    ``SchemeSpec(mechanism="draining", controller="static")`` preempts by
    draining — an explicit ``static`` wrap always matches the controller-less
    spelling of the same scheme.
    """

    name = "static"
    needs_request = False

    def __init__(self, *, mechanism: Optional[str] = None):
        super().__init__()
        self.mechanism = mechanism
        #: Engine the default mechanism was adopted from (``None`` when the
        #: mechanism was configured explicitly or the controller is unbound).
        self._adopted_from = None

    def bind(self, host) -> None:
        if self._adopted_from is not None and self._adopted_from is not host:
            # A second engine would silently inherit the first engine's
            # mechanism; refuse instead of producing wrong simulations.
            raise RuntimeError(
                "a StaticController that adopted its mechanism from an engine "
                "cannot be reused with another engine; create one per system "
                "or configure mechanism= explicitly"
            )
        if self.mechanism is None:
            self.mechanism = host.mechanism.name
            self._adopted_from = host

    def select(self, request: Optional[PreemptionRequest]) -> str:
        if self.mechanism is None:
            raise RuntimeError(
                "StaticController has no mechanism: configure one or bind the "
                "controller to an engine first"
            )
        return self.mechanism

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StaticController(mechanism={self.mechanism!r})"


@register_controller("hybrid", "deadline")
class HybridController(PreemptionController):
    """Deadline-bounded draining with a context-switch fallback.

    Drain when the estimated drain time fits within the budget — draining
    moves no state and wastes no work — and fall back to the context switch
    when it does not, bounding the preemption latency near the budget.  The
    budget is resolved in order: the controller's ``drain_budget_us`` option,
    the request's latency budget
    (:attr:`~repro.gpu.config.SchedulerConfig.preemption_latency_budget_us`),
    then :data:`DEFAULT_DRAIN_BUDGET_US`.
    """

    name = "hybrid"

    def __init__(self, *, drain_budget_us: Optional[float] = None):
        super().__init__()
        if drain_budget_us is not None and drain_budget_us < 0:
            raise ValueError("drain_budget_us must be non-negative")
        self.drain_budget_us = drain_budget_us

    def budget_for(self, request: PreemptionRequest) -> float:
        """The drain deadline applied to one request."""
        if self.drain_budget_us is not None:
            return self.drain_budget_us
        if request.latency_budget_us is not None:
            return request.latency_budget_us
        return DEFAULT_DRAIN_BUDGET_US

    def select(self, request: PreemptionRequest) -> str:
        if request.estimated_drain_us <= self.budget_for(request):
            return "draining"
        return "context_switch"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HybridController(drain_budget_us={self.drain_budget_us!r})"


@register_controller("adaptive", "cost_model")
class AdaptiveController(PreemptionController):
    """Cost-model selection minimizing estimated SM-idle time.

    Draining keeps the SM productive until handover but delays it by the
    remaining resident execution time; a context switch idles the SM for the
    pipeline drain plus the save, and additionally spends the restore time
    re-loading the evicted state before those blocks make progress again.
    The controller picks the mechanism with the lower estimated total,
    scaled by ``switch_bias`` (>1 penalises switching, <1 favours it).
    """

    name = "adaptive"

    def __init__(self, *, switch_bias: float = 1.0):
        super().__init__()
        if switch_bias <= 0:
            raise ValueError("switch_bias must be positive")
        self.switch_bias = switch_bias

    def costs(self, request: PreemptionRequest) -> Tuple[float, float]:
        """(drain cost, switch cost) in estimated idle-µs for one request."""
        drain_cost = request.estimated_drain_us
        switch_cost = (
            request.estimated_switch_us + request.restore_time_us
        ) * self.switch_bias
        return drain_cost, switch_cost

    def select(self, request: PreemptionRequest) -> str:
        drain_cost, switch_cost = self.costs(request)
        # Ties drain: no state moved, no restore debt incurred.
        if drain_cost <= switch_cost:
            return "draining"
        return "context_switch"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdaptiveController(switch_bias={self.switch_bias!r})"


def make_controller(name: str, **kwargs) -> PreemptionController:
    """Create a preemption controller by name (thin delegate to the registry)."""
    from repro.registry import CONTROLLERS

    return CONTROLLERS.create(name, **kwargs)


__all__ = [
    "DEFAULT_DRAIN_BUDGET_US",
    "ResidentBlockInfo",
    "PreemptionRequest",
    "PreemptionController",
    "StaticController",
    "HybridController",
    "AdaptiveController",
    "make_controller",
]
