"""The context-switch preemption mechanism (paper Sec. 3.2).

Follows the basic principle of preemption used by operating-system
schedulers: the execution contexts of all thread blocks running on the
preempted SM are saved to off-chip memory, and those thread blocks are issued
again (restoring their context first) later on.

Timing model
------------
* The SM pipelines are drained before the trap routine runs (precise
  exceptions): a fixed ``pipeline_drain_latency_us``.  Resident blocks keep
  making progress during the drain.
* Saving the contexts takes ``resident state bytes / per-SM bandwidth share``
  microseconds, matching the paper's projected save times in Table 1
  (e.g. 16.2 µs for a fully occupied SM running ``lbm.StreamCollide``).
* Restoring a preempted block before it resumes costs its own state bytes
  over the same bandwidth share; the SM driver adds that latency when it
  re-issues the block from the PTBQ (routed back to this mechanism by the
  engine, which remembers each block's evictor — mechanisms are chosen per
  preemption request by a
  :class:`~repro.core.preemption.controller.PreemptionController`, so a
  context-switched block may be restored while other SMs drain).
"""

from __future__ import annotations

from typing import List

from repro.core.preemption.base import PreemptionMechanism
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.thread_block import ThreadBlock
from repro.registry import register_mechanism


@register_mechanism("context_switch", "cs", "switch")
class ContextSwitchMechanism(PreemptionMechanism):
    """Preempt by saving and later restoring thread-block contexts."""

    name = "context_switch"

    # ------------------------------------------------------------------
    # Mechanism hooks
    # ------------------------------------------------------------------
    def initiate(self, sm: StreamingMultiprocessor) -> None:
        """Raise the preemption trap on ``sm``.

        The trap first drains the SM pipelines, then evicts all resident
        blocks and spends the save time moving their state off-chip.
        """
        self._record_reservation(sm.sm_id)
        self.stats.counter("preemptions_initiated").add()
        drain = self.host.system_config.gpu.pipeline_drain_latency_us
        if sm.is_empty:
            # Nothing resident: the SM frees as soon as the trap is taken.
            self.host.simulator.schedule(
                drain,
                lambda: self._complete(sm.sm_id, []),
                label=f"ctxswitch.sm{sm.sm_id}.empty",
            )
            return
        self.host.simulator.schedule(
            drain,
            lambda: self._start_save(sm),
            label=f"ctxswitch.sm{sm.sm_id}.drain",
        )

    def on_block_completed(self, sm: StreamingMultiprocessor) -> None:
        """Blocks may complete naturally while the trap is being taken.

        The context switch never depends on natural completions: the
        scheduled drain/save path finishes the preemption regardless, so
        there is nothing to do here.
        """

    def restore_latency_us(self, block: ThreadBlock, state_bytes_per_block: int) -> float:
        """Restoring a block moves its saved state back on-chip."""
        bandwidth = self.host.system_config.gpu.per_sm_bandwidth_bytes_per_us
        return state_bytes_per_block / bandwidth

    # ------------------------------------------------------------------
    # Internal steps
    # ------------------------------------------------------------------
    def _start_save(self, sm: StreamingMultiprocessor) -> None:
        """Evict the resident blocks and start moving their state off-chip."""
        evicted = sm.evict_all()
        if not evicted:
            # Every block completed during the pipeline drain.
            self._complete(sm.sm_id, [])
            return
        state_bytes = self._evicted_state_bytes(sm, evicted)
        bandwidth = self.host.system_config.gpu.per_sm_bandwidth_bytes_per_us
        save_time = state_bytes / bandwidth
        self.stats.counter("bytes_saved", unit="B").add(state_bytes)
        self.stats.stats("save_time_us").add(save_time)
        self.host.simulator.schedule(
            save_time,
            lambda: self._complete(sm.sm_id, evicted),
            label=f"ctxswitch.sm{sm.sm_id}.save",
        )

    def _evicted_state_bytes(
        self, sm: StreamingMultiprocessor, evicted: List[ThreadBlock]
    ) -> int:
        """Architectural state (registers + shared memory) of the evicted blocks."""
        framework = self.host.framework
        total = 0
        for block in evicted:
            ksr_index = framework.ksr_index_for_launch(block.kernel_launch_id)
            if ksr_index is None:  # pragma: no cover - defensive
                continue
            usage = framework.ksr(ksr_index).launch.spec.usage
            total += usage.state_bytes_per_block
        return total
