"""Base classes and interfaces for scheduling policies.

A policy receives event hooks from the execution engine (a kernel command was
buffered, a kernel finished, an SM became idle) and reacts by performing
framework operations (admitting commands into the active queue) and engine
operations (setting up idle SMs, reserving running SMs for preemption).

The split mirrors the paper's "scheduling framework" vs "scheduling policy"
separation (Sec. 3.3): the framework tracks state, the policy decides.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Protocol

from repro.core.framework.framework import SchedulingFramework
from repro.core.framework.tables import KernelStatusEntry
from repro.gpu.command_queue import KernelCommand
from repro.sim.stats import StatRegistry


class ExecutionEngineOps(Protocol):
    """Operations the execution engine exposes to scheduling policies."""

    @property
    def framework(self) -> SchedulingFramework:
        ...  # pragma: no cover - protocol definition

    @property
    def num_sms(self) -> int:
        ...  # pragma: no cover - protocol definition

    def activate_command(self, command: KernelCommand) -> KernelStatusEntry:
        """Admit a buffered command to the active queue / KSRT."""
        ...  # pragma: no cover - protocol definition

    def setup_sm(self, sm_id: int, ksr_index: int) -> None:
        """Set up an idle SM for an active kernel and start issuing blocks."""
        ...  # pragma: no cover - protocol definition

    def reserve_sm(self, sm_id: int, next_ksr_index: Optional[int]) -> None:
        """Reserve a running SM; the preemption mechanism will free it."""
        ...  # pragma: no cover - protocol definition

    def update_reservation(self, sm_id: int, next_ksr_index: Optional[int]) -> None:
        """Change the kernel a reserved SM is destined for."""
        ...  # pragma: no cover - protocol definition


class SchedulingPolicy(abc.ABC):
    """Abstract scheduling policy."""

    #: Short name used in experiment reports.
    name: str = "abstract"

    def __init__(self) -> None:
        self._engine: Optional[ExecutionEngineOps] = None
        self.stats = StatRegistry()

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind(self, engine: ExecutionEngineOps) -> None:
        """Attach the policy to the execution engine (called once)."""
        self._engine = engine

    @property
    def engine(self) -> ExecutionEngineOps:
        """The bound execution engine."""
        if self._engine is None:
            raise RuntimeError(f"policy {self.name} is not bound to an engine")
        return self._engine

    @property
    def framework(self) -> SchedulingFramework:
        """The scheduling framework of the bound engine."""
        return self.engine.framework

    # ------------------------------------------------------------------
    # Hooks invoked by the execution engine
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def on_command_buffered(self, command: KernelCommand) -> None:
        """A kernel command was stored in a command buffer."""

    @abc.abstractmethod
    def on_kernel_finished(self, ksr_index: int, entry: KernelStatusEntry) -> None:
        """An active kernel finished; its KSR entry has just been freed.

        ``entry`` is the (now invalid) KSR entry, passed for bookkeeping such
        as returning DSS tokens or recording statistics.
        """

    @abc.abstractmethod
    def on_sm_idle(self, sm_id: int, previous_ksr_index: Optional[int]) -> None:
        """An SM became idle.

        ``previous_ksr_index`` identifies the kernel the SM was last assigned
        or destined to (it may already be invalid if that kernel finished).
        """

    def on_kernel_activated(self, entry: KernelStatusEntry) -> None:
        """A kernel was admitted to the active queue (optional hook)."""

    # ------------------------------------------------------------------
    # Helpers shared by concrete policies
    # ------------------------------------------------------------------
    def _active_with_work(self) -> List[KernelStatusEntry]:
        """Active kernels that still have issuable thread blocks."""
        framework = self.framework
        return [
            entry
            for entry in framework.active_entries()
            if framework.kernel_has_issuable_work(entry.index)
        ]

    def _sms_needed(self, entry: KernelStatusEntry) -> int:
        """How many SMs the kernel could productively use right now.

        The estimate is the number of SMs needed to hold every issuable block
        at the kernel's occupancy, capped at the machine size.
        """
        issuable = self.framework.issuable_blocks(entry.index)
        if issuable <= 0:
            return 0
        per_sm = max(1, entry.blocks_per_sm)
        needed = -(-issuable // per_sm)  # ceil division
        return min(needed, self.engine.num_sms)

    def _reserved_for(self, ksr_index: int) -> int:
        """Number of SMs currently reserved and destined for ``ksr_index``."""
        smst = self.framework.smst
        if not smst.reserved_count:
            # Nothing is reserved (the common case on every scheduling tick
            # outside an in-flight preemption): skip the per-SM scan.
            return 0
        return sum(
            1
            for sm_entry in smst
            if sm_entry.is_reserved and sm_entry.next_ksr_index == ksr_index
        )

    def _wants_more_sms(self, entry: KernelStatusEntry) -> bool:
        """Whether giving the kernel another SM would be productive."""
        held = entry.num_assigned_sms + self._reserved_for(entry.index)
        return held < self._sms_needed(entry)

    def describe(self) -> str:
        """Human-readable policy description for reports."""
        return self.name
