"""Scheduling policies built on the scheduling framework.

* :class:`~repro.core.policies.fcfs.FCFSPolicy` — the baseline first-come
  first-serve behaviour of current GPUs (one context at a time, optional
  back-to-back scheduling of independent kernels from the same context).
* :class:`~repro.core.policies.priority.NonPreemptivePriorityPolicy` (NPQ) —
  priority queues without preemption.
* :class:`~repro.core.policies.priority.PreemptivePriorityPolicy` (PPQ) —
  priority queues with preemption; exclusive-access or shared-access variants
  (paper Sec. 4.2/4.3).
* :class:`~repro.core.policies.dss.DynamicSpatialSharingPolicy` (DSS) — the
  token-based dynamic spatial partitioning policy of Sec. 3.4.

Policies are *oblivious* to the preemption mechanism in use: they only mark
SMs reserved through the engine; the mechanism decides how the SM is freed.
"""

from repro.core.policies.base import ExecutionEngineOps, SchedulingPolicy
from repro.core.policies.dss import DynamicSpatialSharingPolicy
from repro.core.policies.fcfs import FCFSPolicy
from repro.core.policies.priority import NonPreemptivePriorityPolicy, PreemptivePriorityPolicy


def make_policy(name: str, **kwargs) -> SchedulingPolicy:
    """Create a scheduling policy by name (thin delegate to the registry).

    Recognised names (case-insensitive) are whatever is registered in
    :data:`repro.registry.POLICIES` — the built-ins are ``fcfs``, ``npq``,
    ``ppq``, ``ppq_shared`` and ``dss``.  Keyword arguments are forwarded to
    the policy constructor.
    """
    from repro.registry import POLICIES

    return POLICIES.create(name, **kwargs)


__all__ = [
    "SchedulingPolicy",
    "ExecutionEngineOps",
    "FCFSPolicy",
    "NonPreemptivePriorityPolicy",
    "PreemptivePriorityPolicy",
    "DynamicSpatialSharingPolicy",
    "make_policy",
]
