"""The Dynamic Spatial Sharing (DSS) policy (paper Sec. 3.4, Algorithm 1).

DSS performs dynamic spatial partitioning of the execution engine by
assigning disjoint sets of SMs to different kernels.  Ownership of SMs is
expressed with *tokens*: the OS/runtime assigns each process a token budget;
one token is spent when an SM is assigned to the process's kernel and
returned when the SM is deassigned.  To avoid under-utilisation, kernels may
go into debt (negative token count) and occupy more SMs than their budget
when SMs would otherwise sit idle.

The partitioning procedure runs on two events — a kernel is inserted into the
active queue, and an SM becomes idle — and repeatedly either hands an idle SM
to the kernel with the highest token count that still has thread blocks to
issue, or (when no SM is idle) reserves an SM of the kernel with the lowest
token count for the one with the highest, until the token counts differ by at
most one.

Equal sharing (paper Sec. 4.4) assigns every process ``floor(N_sm / N_proc)``
tokens, with the remainder going to the first processes whose kernels reach
the active queue.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.framework.tables import KernelStatusEntry
from repro.core.policies.base import SchedulingPolicy
from repro.gpu.command_queue import KernelCommand
from repro.registry import register_policy


@register_policy("dss", "dynamic_spatial_sharing")
class DynamicSpatialSharingPolicy(SchedulingPolicy):
    """Token-based dynamic spatial partitioning of SMs across processes."""

    name = "dss"

    def __init__(
        self,
        *,
        process_count: Optional[int] = None,
        token_budgets: Optional[Dict[str, int]] = None,
    ):
        """Create a DSS policy.

        Parameters
        ----------
        process_count:
            Number of processes in the workload, used for equal sharing when
            no explicit budgets are given.  If ``None``, the number of
            distinct contexts seen so far is used (budgets are then assigned
            on first activation and never rebalanced, which matches the
            paper's static token assignment).
        token_budgets:
            Optional explicit per-process token budgets keyed by process
            name; overrides equal sharing for the named processes.
        """
        super().__init__()
        if process_count is not None and process_count < 1:
            raise ValueError("process_count must be positive")
        self._process_count = process_count
        self._explicit_budgets = dict(token_budgets or {})
        #: Budgets assigned so far, keyed by context id.
        self._context_budgets: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Token budgets
    # ------------------------------------------------------------------
    def budget_for(self, command: KernelCommand) -> int:
        """Token budget of the process launching ``command``."""
        context_id = command.context_id
        if context_id in self._context_budgets:
            return self._context_budgets[context_id]
        if command.process_name in self._explicit_budgets:
            budget = self._explicit_budgets[command.process_name]
        else:
            budget = self._equal_share_budget()
        self._context_budgets[context_id] = budget
        return budget

    def _equal_share_budget(self) -> int:
        """Equal-share budget for the next first-seen context.

        ``tc = floor(N_sm / N_proc)``; the ``N_sm mod N_proc`` remainder goes
        to the first ``r`` contexts that reach the active queue.
        """
        num_sms = self.engine.num_sms
        known = len(self._context_budgets)
        process_count = self._process_count if self._process_count is not None else max(1, known + 1)
        base = max(1, num_sms // process_count)
        remainder = num_sms % process_count if num_sms >= process_count else 0
        bonus = 1 if known < remainder else 0
        return base + bonus

    def assigned_budgets(self) -> Dict[int, int]:
        """Budgets assigned so far, keyed by context id (for tests/reports)."""
        return dict(self._context_budgets)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_command_buffered(self, command: KernelCommand) -> None:
        self._admit()
        self._partition()

    def on_kernel_finished(self, ksr_index: int, entry: KernelStatusEntry) -> None:
        self._admit()
        self._partition()

    def on_sm_idle(self, sm_id: int, previous_ksr_index: Optional[int]) -> None:
        framework = self.framework
        if previous_ksr_index is not None and framework.ksr_valid(previous_ksr_index):
            # The SM was deassigned: return its token to the previous owner.
            framework.ksr(previous_ksr_index).token_count += 1
        self._admit()
        self._partition()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        """Admit every buffered command while active-queue capacity lasts."""
        framework = self.framework
        while framework.has_active_capacity:
            pending = framework.pending_commands()
            if not pending:
                return
            command = pending[0]
            command.launch.tokens = self.budget_for(command)
            entry = self.engine.activate_command(command)
            entry.token_count = command.launch.tokens
            self.stats.counter("kernels_admitted").add()
            self.on_kernel_activated(entry)

    # ------------------------------------------------------------------
    # Partitioning procedure (Algorithm 1)
    # ------------------------------------------------------------------
    def _partition(self) -> None:
        """Run the DSS partitioning procedure until the counts are balanced."""
        framework = self.framework
        engine = self.engine
        # Safety bound: every iteration either consumes an idle SM or
        # strictly reduces the max-min token gap, so 4x the machine size is
        # far more than the procedure can ever need.
        for _ in range(4 * engine.num_sms + 4):
            entries = framework.active_entries()
            if not entries:
                return
            receivers = [
                e
                for e in entries
                if framework.kernel_has_issuable_work(e.index) and self._wants_more_sms(e)
            ]
            if not receivers:
                return
            ksr_max = max(
                receivers, key=lambda e: (e.token_count, -e.activation_time_us, -e.index)
            )
            ksr_min = min(
                entries, key=lambda e: (e.token_count, e.activation_time_us, e.index)
            )
            idle = framework.idle_sms()
            if idle:
                # Idle SMs are always handed out; kernels may go into debt.
                ksr_max.token_count -= 1
                engine.setup_sm(idle[0], ksr_max.index)
                self.stats.counter("sm_assignments").add()
                continue
            if ksr_max.index == ksr_min.index:
                return
            if ksr_max.token_count <= ksr_min.token_count:
                # Balanced: preempting would only cause churn.
                return
            victims = framework.sms_running_kernel(ksr_min.index)
            if not victims:
                # The over-allocated kernel has no preemptable SM right now
                # (they are in setup or already being preempted); try again on
                # the next scheduling event.
                return
            ksr_min.token_count += 1
            ksr_max.token_count -= 1
            engine.reserve_sm(victims[0], ksr_max.index)
            self.stats.counter("preemptions_requested").add()
            if ksr_max.token_count <= ksr_min.token_count + 1:
                return
