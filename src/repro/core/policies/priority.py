"""Priority-queue scheduling policies (paper Sec. 2.4, 4.2, 4.3).

Two policies are provided:

* :class:`NonPreemptivePriorityPolicy` (NPQ) — "a modification to the GPU
  command scheduler [that] allows priorities to be assigned to processes":
  kernel commands are admitted in priority order and idle SMs are always
  given to the highest-priority active kernel with work, but running SMs are
  never preempted.  The high-priority kernel therefore still waits for the
  thread blocks of the currently running kernel to finish naturally.
* :class:`PreemptivePriorityPolicy` (PPQ) — additionally *reserves* SMs that
  run strictly lower-priority kernels whenever a higher-priority kernel needs
  them, letting the configured preemption mechanism free those SMs.  The
  ``exclusive_access`` flag selects between the paper's two variants
  (Fig. 6a vs 6b): with exclusive access, low-priority kernels are never
  scheduled onto free SMs while a higher-priority kernel is active; without
  it, free SMs are back-filled with low-priority work (which the paper shows
  to be counter-productive under preemption).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.framework.tables import KernelStatusEntry
from repro.core.policies.base import SchedulingPolicy
from repro.gpu.command_queue import KernelCommand
from repro.gpu.sm import SMState
from repro.registry import register_policy


@register_policy("npq", "nonpreemptive_priority")
class NonPreemptivePriorityPolicy(SchedulingPolicy):
    """Priority queues without preemption (NPQ)."""

    name = "npq"

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_command_buffered(self, command: KernelCommand) -> None:
        self._schedule()

    def on_kernel_finished(self, ksr_index: int, entry: KernelStatusEntry) -> None:
        self._schedule()

    def on_sm_idle(self, sm_id: int, previous_ksr_index: Optional[int]) -> None:
        self._schedule()

    # ------------------------------------------------------------------
    # Decision logic
    # ------------------------------------------------------------------
    def _schedule(self) -> None:
        self._admit()
        self._assign_idle_sms()

    def _admit(self) -> None:
        """Admit buffered commands, highest priority first."""
        framework = self.framework
        while framework.has_active_capacity:
            pending = framework.pending_commands()
            if not pending:
                return
            pending.sort(
                key=lambda c: (
                    -c.priority,
                    c.enqueue_time_us if c.enqueue_time_us is not None else 0.0,
                    c.command_id,
                )
            )
            entry = self.engine.activate_command(pending[0])
            self.stats.counter("kernels_admitted").add()
            self.on_kernel_activated(entry)

    def _priority_order(self, entries: List[KernelStatusEntry]) -> List[KernelStatusEntry]:
        """Sort KSR entries by descending priority, then activation order."""
        return sorted(
            entries, key=lambda e: (-e.priority, e.activation_time_us, e.index)
        )

    def _assignment_candidates(self) -> List[KernelStatusEntry]:
        """Active kernels eligible to receive idle SMs, in assignment order."""
        return self._priority_order(self._active_with_work())

    def _assign_idle_sms(self) -> None:
        """Hand idle SMs to eligible kernels in priority order."""
        framework = self.framework
        idle = framework.idle_sms()
        if not idle:
            return
        # The candidate list is invariant across the loop: assigning an SM
        # (mark_sm_setup) changes neither which kernels have issuable work
        # nor their priority order — only ``_wants_more_sms``, which is
        # re-evaluated per SM below.
        candidates = self._assignment_candidates()
        for sm_id in idle:
            target = None
            for entry in candidates:
                if self._wants_more_sms(entry):
                    target = entry
                    break
            if target is None and candidates:
                # Every candidate already holds enough SMs for its remaining
                # blocks; leave the SM idle rather than over-assign.
                return
            if target is None:
                return
            self.engine.setup_sm(sm_id, target.index)
            self.stats.counter("sm_assignments").add()


@register_policy(
    "ppq",
    "preemptive_priority",
    "ppq_exclusive",
    defaults={"exclusive_access": True},
)
class PreemptivePriorityPolicy(NonPreemptivePriorityPolicy):
    """Priority queues with preemption (PPQ)."""

    name = "ppq"

    def __init__(self, *, exclusive_access: bool = True):
        super().__init__()
        self.exclusive_access = exclusive_access
        if exclusive_access:
            self.name = "ppq"
        else:
            self.name = "ppq_shared"

    # ------------------------------------------------------------------
    # Decision logic
    # ------------------------------------------------------------------
    def _schedule(self) -> None:
        self._admit()
        self._assign_idle_sms()
        self._enforce_priorities()

    def _assignment_candidates(self) -> List[KernelStatusEntry]:
        """Eligible receivers of idle SMs.

        With exclusive access only kernels of the highest active priority are
        scheduled; lower-priority kernels wait even if SMs are free.
        """
        candidates = self._active_with_work()
        if not candidates:
            return []
        if self.exclusive_access:
            active = self.framework.active_entries()
            top_priority = max(entry.priority for entry in active)
            candidates = [e for e in candidates if e.priority >= top_priority]
        return self._priority_order(candidates)

    def _enforce_priorities(self) -> None:
        """Preempt lower-priority SMs that higher-priority kernels need."""
        framework = self.framework
        for entry in self._priority_order(self._active_with_work()):
            needed = (
                self._sms_needed(entry)
                - entry.num_assigned_sms
                - self._reserved_for(entry.index)
            )
            if needed <= 0:
                continue
            victims = self._victim_sms(entry)
            for sm_id in victims[:needed]:
                self.engine.reserve_sm(sm_id, entry.index)
                self.stats.counter("preemptions_requested").add()

    def _victim_sms(self, beneficiary: KernelStatusEntry) -> List[int]:
        """Running SMs of strictly lower-priority kernels, lowest first."""
        framework = self.framework
        victims: List[tuple[int, float, int]] = []
        for victim in framework.active_entries():
            if victim.priority >= beneficiary.priority:
                continue
            for sm_id in framework.smst.sms_for_ksr(victim.index, state=SMState.RUNNING):
                victims.append((victim.priority, -victim.activation_time_us, sm_id))
        # Preempt the lowest-priority, most recently scheduled kernels first.
        victims.sort()
        return [sm_id for _, _, sm_id in victims]


# The shared-access variant (Figure 6b) is the same class with back-filling
# of free SMs enabled; ``exclusive_access`` is forced off for this name.
register_policy(
    "ppq_shared",
    "preemptive_priority_shared",
    overrides={"exclusive_access": False},
    description="Priority queues with preemption, shared access (back-filling)",
)(PreemptivePriorityPolicy)
