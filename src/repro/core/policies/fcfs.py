"""The baseline FCFS policy (models current GPUs, paper Sec. 2.3).

Kernel commands are admitted strictly in arrival order.  Because today's GPUs
"do not support concurrent execution of commands from different contexts on
the same engine", a command is only admitted while the execution engine is
empty or running kernels from the *same* context; commands from other
contexts wait.  Within a context, independent kernels may execute
back-to-back (the Hyper-Q behaviour), controlled by
``SchedulerConfig.back_to_back_scheduling``.

The FCFS policy never preempts.
"""

from __future__ import annotations

from typing import Optional

from repro.core.framework.tables import KernelStatusEntry
from repro.core.policies.base import SchedulingPolicy
from repro.gpu.command_queue import KernelCommand
from repro.registry import register_policy


@register_policy("fcfs", "first_come_first_serve")
class FCFSPolicy(SchedulingPolicy):
    """First-come first-serve, one context at a time."""

    name = "fcfs"

    def __init__(self, *, back_to_back: Optional[bool] = None):
        super().__init__()
        #: ``None`` defers to the system configuration at bind time.
        self._back_to_back_override = back_to_back

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def back_to_back(self) -> bool:
        """Whether independent kernels from the same context may overlap."""
        if self._back_to_back_override is not None:
            return self._back_to_back_override
        return self.framework.config.scheduler.back_to_back_scheduling

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_command_buffered(self, command: KernelCommand) -> None:
        self._admit_and_assign()

    def on_kernel_finished(self, ksr_index: int, entry: KernelStatusEntry) -> None:
        self._admit_and_assign()

    def on_sm_idle(self, sm_id: int, previous_ksr_index: Optional[int]) -> None:
        self._admit_and_assign()

    # ------------------------------------------------------------------
    # Decision logic
    # ------------------------------------------------------------------
    def _admit_and_assign(self) -> None:
        self._try_admit()
        self._assign_idle_sms()

    def _try_admit(self) -> None:
        """Admit commands in arrival order, respecting context exclusivity."""
        framework = self.framework
        while framework.has_active_capacity:
            pending = framework.pending_commands()
            if not pending:
                return
            next_command = pending[0]
            active = framework.active_entries()
            if active:
                same_context = all(e.context_id == next_command.context_id for e in active)
                if not same_context:
                    # Current GPUs serialise contexts on the execution engine.
                    return
                if not self.back_to_back:
                    return
            entry = self.engine.activate_command(next_command)
            self.stats.counter("kernels_admitted").add()
            self.on_kernel_activated(entry)

    def _assign_idle_sms(self) -> None:
        """Give every idle SM to the oldest active kernel that has work."""
        framework = self.framework
        for sm_id in framework.idle_sms():
            target = None
            for entry in framework.active_entries():
                if framework.kernel_has_issuable_work(entry.index):
                    target = entry
                    break
            if target is None:
                return
            self.engine.setup_sm(sm_id, target.index)
            self.stats.counter("sm_assignments").add()
