"""The hardware scheduling framework (paper Sec. 3.3, Fig. 4).

The framework provides the bookkeeping structures that scheduling policies
and the SM driver share:

* **Command buffers** — one per GPU context, each holding a single kernel
  command received from the command dispatcher.
* **Active queue** — identifiers of the active (running or preempted)
  kernels; its capacity bounds the number of concurrently active kernels.
* **KSRT** (Kernel Status Register Table) — one entry per active kernel.
* **SMST** (SM Status Table) — one entry per SM, tracking state and the
  kernel it is running / reserved for.
* **PTBQ** (Preempted Thread Block Queues) — one bounded queue per KSRT
  entry, storing handles of context-switched thread blocks.
"""

from repro.core.framework.command_buffer import CommandBufferSet
from repro.core.framework.framework import SchedulingFramework
from repro.core.framework.tables import (
    ActiveQueue,
    KernelStatusEntry,
    KernelStatusRegisterTable,
    PreemptedThreadBlockQueue,
    SMStatusEntry,
    SMStatusTable,
)

__all__ = [
    "CommandBufferSet",
    "SchedulingFramework",
    "ActiveQueue",
    "KernelStatusEntry",
    "KernelStatusRegisterTable",
    "PreemptedThreadBlockQueue",
    "SMStatusEntry",
    "SMStatusTable",
]
