"""Per-context command buffers of the scheduling framework.

"Command Buffers receive the commands from the command dispatcher and
separate the execution commands from different contexts.  Each command buffer
can store one command." (paper Sec. 3.3)

A full buffer exerts back-pressure on the command dispatcher: the dispatcher
leaves the command at the head of its hardware queue and retries when the
execution engine signals that buffers were drained.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.gpu.command_queue import KernelCommand


class CommandBufferSet:
    """One single-entry command buffer per GPU context."""

    def __init__(self, max_contexts: int = 64):
        if max_contexts < 1:
            raise ValueError("max_contexts must be at least 1")
        self._max_contexts = max_contexts
        self._buffers: Dict[int, Optional[KernelCommand]] = {}
        self.total_buffered = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    # Producer side (command dispatcher)
    # ------------------------------------------------------------------
    def offer(self, command: KernelCommand) -> bool:
        """Try to store ``command`` in its context's buffer.

        Returns ``True`` on success; ``False`` if the buffer already holds a
        command (back-pressure) — the caller must retry later.
        """
        context_id = command.context_id
        if context_id not in self._buffers:
            if len(self._buffers) >= self._max_contexts:
                self.rejected += 1
                return False
            self._buffers[context_id] = None
        if self._buffers[context_id] is not None:
            self.rejected += 1
            return False
        self._buffers[context_id] = command
        self.total_buffered += 1
        return True

    # ------------------------------------------------------------------
    # Consumer side (scheduling policy)
    # ------------------------------------------------------------------
    def peek(self, context_id: int) -> Optional[KernelCommand]:
        """The command buffered for ``context_id``, without removing it."""
        return self._buffers.get(context_id)

    def take(self, context_id: int) -> KernelCommand:
        """Remove and return the command buffered for ``context_id``."""
        command = self._buffers.get(context_id)
        if command is None:
            raise KeyError(f"no command buffered for context {context_id}")
        self._buffers[context_id] = None
        return command

    def pending(self) -> List[KernelCommand]:
        """All buffered commands, oldest first (by enqueue time, then id)."""
        commands = [cmd for cmd in self._buffers.values() if cmd is not None]
        commands.sort(key=lambda c: (c.enqueue_time_us if c.enqueue_time_us is not None else 0.0, c.command_id))
        return commands

    @property
    def has_pending(self) -> bool:
        """Whether any context has a buffered command."""
        return any(cmd is not None for cmd in self._buffers.values())

    def occupancy(self) -> int:
        """Number of buffers currently holding a command."""
        return sum(1 for cmd in self._buffers.values() if cmd is not None)

    def contexts(self) -> List[int]:
        """All context ids that ever buffered a command."""
        return list(self._buffers.keys())
