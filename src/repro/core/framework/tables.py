"""Hardware tables of the scheduling framework (KSRT, SMST, PTBQ, active queue).

These mirror the structures of Fig. 4 in the paper.  They are modelled as
bounded tables: the paper sizes the active queue, KSRT and SMST with one
entry per SM and each PTBQ with ``num_sms * max_blocks_per_sm`` entries so
that the handles of preempted thread blocks always fit on chip.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Set

from repro.gpu.kernel import KernelLaunch
from repro.gpu.sm import SMState
from repro.gpu.thread_block import ThreadBlock


@dataclass(slots=True)
class KernelStatusEntry:
    """One Kernel Status Register (a valid KSRT entry).

    The KSR holds "control information such as number of work units to
    execute, kernel parameters..." (paper Sec. 2.3), augmented by the
    framework with the GPU context id and, for the DSS policy, the current
    token count.
    """

    index: int
    launch: KernelLaunch
    context_id: int
    valid: bool = True
    #: Current DSS token count (may go negative: the kernel is "in debt").
    token_count: int = 0
    #: SMs currently set up (or being set up) for this kernel.
    assigned_sms: Set[int] = field(default_factory=set)
    #: Cached occupancy: how many blocks of this kernel fit on one SM.
    blocks_per_sm: int = 1
    #: Cached shared-memory configuration the SM must select (bytes).
    shared_memory_config: int = 0
    #: Time the kernel was admitted to the active queue.
    activation_time_us: float = 0.0

    @property
    def priority(self) -> int:
        """Scheduling priority inherited from the launching process."""
        return self.launch.priority

    @property
    def num_assigned_sms(self) -> int:
        """Number of SMs currently assigned to the kernel."""
        return len(self.assigned_sms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KSR(index={self.index}, {self.launch.describe()}, "
            f"tokens={self.token_count}, sms={sorted(self.assigned_sms)})"
        )


class KernelStatusRegisterTable:
    """Bounded table of Kernel Status Registers (the KSRT)."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("KSRT capacity must be at least 1")
        self._capacity = capacity
        self._entries: List[Optional[KernelStatusEntry]] = [None] * capacity
        self._by_launch: Dict[int, int] = {}

    @property
    def capacity(self) -> int:
        """Maximum number of simultaneously active kernels."""
        return self._capacity

    @property
    def occupancy(self) -> int:
        """Number of valid entries."""
        return sum(1 for entry in self._entries if entry is not None)

    @property
    def has_free_entry(self) -> bool:
        """Whether a new kernel can be admitted."""
        return self.occupancy < self._capacity

    def allocate(self, launch: KernelLaunch, *, activation_time_us: float) -> KernelStatusEntry:
        """Allocate the lowest free entry for ``launch``."""
        for index, existing in enumerate(self._entries):
            if existing is None:
                entry = KernelStatusEntry(
                    index=index,
                    launch=launch,
                    context_id=launch.context_id,
                    token_count=launch.tokens,
                    activation_time_us=activation_time_us,
                )
                self._entries[index] = entry
                self._by_launch[launch.launch_id] = index
                return entry
        raise RuntimeError("KSRT is full")

    def free(self, index: int) -> KernelStatusEntry:
        """Invalidate and return the entry at ``index``."""
        entry = self._entries[index]
        if entry is None:
            raise KeyError(f"KSRT entry {index} is not valid")
        entry.valid = False
        self._entries[index] = None
        self._by_launch.pop(entry.launch.launch_id, None)
        return entry

    def get(self, index: int) -> KernelStatusEntry:
        """Return the valid entry at ``index`` (KeyError if invalid)."""
        entry = self._entries[index]
        if entry is None:
            raise KeyError(f"KSRT entry {index} is not valid")
        return entry

    def find(self, index: int) -> Optional[KernelStatusEntry]:
        """Return the entry at ``index`` or ``None`` if it is invalid."""
        if not 0 <= index < self._capacity:
            return None
        return self._entries[index]

    def is_valid(self, index: Optional[int]) -> bool:
        """Whether ``index`` refers to a valid entry."""
        return index is not None and 0 <= index < self._capacity and self._entries[index] is not None

    def index_for_launch(self, launch_id: int) -> Optional[int]:
        """KSRT index of the entry tracking ``launch_id`` (if active)."""
        return self._by_launch.get(launch_id)

    def valid_entries(self) -> List[KernelStatusEntry]:
        """All valid entries, in index order."""
        return [entry for entry in self._entries if entry is not None]

    def __iter__(self) -> Iterator[KernelStatusEntry]:
        return iter(self.valid_entries())

    def __len__(self) -> int:
        return self.occupancy


class SMStatusEntry:
    """One entry of the SM Status Table.

    Tracks the kernel being executed (KSR index), the state of the SM (idle,
    setup, running or reserved), the number of running thread blocks, and the
    KSR index of the *next* kernel when the SM is reserved (paper Sec. 3.3).

    :attr:`state` is read-only on the entry: transitions must go through
    :meth:`SMStatusTable.set_state`, which keeps the table's incremental
    idle/reserved bookkeeping exact (a direct write would silently desync
    ``idle_sms()`` and ``reserved_count``).
    """

    __slots__ = ("sm_id", "_state", "ksr_index", "next_ksr_index", "running_blocks")

    def __init__(
        self,
        sm_id: int,
        state: SMState = SMState.IDLE,
        ksr_index: Optional[int] = None,
        next_ksr_index: Optional[int] = None,
        running_blocks: int = 0,
    ):
        self.sm_id = sm_id
        self._state = state
        self.ksr_index = ksr_index
        self.next_ksr_index = next_ksr_index
        self.running_blocks = running_blocks

    @property
    def state(self) -> SMState:
        """Current SM state (mutate via :meth:`SMStatusTable.set_state`)."""
        return self._state

    @property
    def is_idle(self) -> bool:
        """Whether the SM is idle (available for assignment)."""
        return self.state is SMState.IDLE

    @property
    def is_running(self) -> bool:
        """Whether the SM is set up and running a kernel."""
        return self.state is SMState.RUNNING

    @property
    def is_reserved(self) -> bool:
        """Whether a policy reserved the SM and preemption is in progress."""
        return self.state is SMState.RESERVED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SMST(sm={self.sm_id}, state={self.state.value}, ksr={self.ksr_index}, "
            f"next={self.next_ksr_index}, blocks={self.running_blocks})"
        )


class SMStatusTable:
    """The SM Status Table: one entry per SM.

    State transitions go through :meth:`set_state` (the scheduling framework
    is the only mutator), which maintains incremental idle/reserved
    bookkeeping so the policies' per-decision queries stay cheap on
    large-GPU configurations instead of rescanning every entry.
    """

    def __init__(self, num_sms: int):
        if num_sms < 1:
            raise ValueError("the GPU needs at least one SM")
        self._entries = [SMStatusEntry(sm_id=i) for i in range(num_sms)]
        self._idle = set(range(num_sms))
        self._reserved_count = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[SMStatusEntry]:
        return iter(self._entries)

    def entry(self, sm_id: int) -> SMStatusEntry:
        """Entry of SM ``sm_id``."""
        return self._entries[sm_id]

    def set_state(self, sm_id: int, state: SMState) -> None:
        """Transition SM ``sm_id`` to ``state`` (keeps the bookkeeping exact)."""
        entry = self._entries[sm_id]
        old = entry._state
        if old is state:
            return
        if old is SMState.IDLE:
            self._idle.discard(sm_id)
        elif old is SMState.RESERVED:
            self._reserved_count -= 1
        if state is SMState.IDLE:
            self._idle.add(sm_id)
        elif state is SMState.RESERVED:
            self._reserved_count += 1
        entry._state = state

    @property
    def reserved_count(self) -> int:
        """Number of SMs currently in the RESERVED state (O(1))."""
        return self._reserved_count

    def idle_sms(self) -> List[int]:
        """Ids of all idle SMs, in ascending order."""
        return sorted(self._idle)

    def running_sms(self) -> List[int]:
        """Ids of all SMs in the RUNNING state."""
        return [e.sm_id for e in self._entries if e.is_running]

    def reserved_sms(self) -> List[int]:
        """Ids of all SMs in the RESERVED state."""
        return [e.sm_id for e in self._entries if e.is_reserved]

    def sms_for_ksr(self, ksr_index: int, *, state: Optional[SMState] = None) -> List[int]:
        """SMs currently associated with KSR ``ksr_index``.

        When ``state`` is given, only SMs in that state are returned.
        """
        out = []
        for entry in self._entries:
            if entry.ksr_index != ksr_index:
                continue
            if state is not None and entry.state is not state:
                continue
            out.append(entry.sm_id)
        return out


class PreemptedThreadBlockQueue:
    """One Preempted Thread Block Queue (PTBQ).

    Stores the handles (id + saved-context pointer, modelled here as the
    :class:`~repro.gpu.thread_block.ThreadBlock` object itself) of thread
    blocks preempted by the context-switch mechanism.  The queue is bounded
    to ``num_sms * max_blocks_per_sm`` entries; the paper keeps preempted
    blocks bounded by always issuing them before fresh blocks.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("PTBQ capacity must be at least 1")
        self._capacity = capacity
        self._queue: Deque[ThreadBlock] = deque()
        self.total_pushed = 0

    @property
    def capacity(self) -> int:
        """Maximum number of stored preempted-thread-block handles."""
        return self._capacity

    def push(self, block: ThreadBlock) -> None:
        """Append a preempted block handle to the queue."""
        if len(self._queue) >= self._capacity:
            raise RuntimeError("PTBQ overflow: more preempted blocks than the hardware can track")
        self._queue.append(block)
        self.total_pushed += 1

    def pop(self) -> Optional[ThreadBlock]:
        """Remove and return the oldest preempted block, or ``None``."""
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        """Whether the queue holds no preempted blocks."""
        return not self._queue

    def clear(self) -> None:
        """Drop all stored handles (used when the owning kernel is freed)."""
        self._queue.clear()


class ActiveQueue:
    """The Active Queue: identifiers (KSRT indices) of active kernels."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("active queue capacity must be at least 1")
        self._capacity = capacity
        self._entries: List[int] = []

    @property
    def capacity(self) -> int:
        """Maximum number of active kernels."""
        return self._capacity

    @property
    def has_space(self) -> bool:
        """Whether another kernel can become active."""
        return len(self._entries) < self._capacity

    def push(self, ksr_index: int) -> None:
        """Add a KSR index to the active queue."""
        if not self.has_space:
            raise RuntimeError("active queue is full")
        if ksr_index in self._entries:
            raise ValueError(f"KSR {ksr_index} is already in the active queue")
        self._entries.append(ksr_index)

    def remove(self, ksr_index: int) -> None:
        """Remove a KSR index (when its kernel finishes)."""
        self._entries.remove(ksr_index)

    def __contains__(self, ksr_index: int) -> bool:
        return ksr_index in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[int]:
        """Iterate KSR indices in activation (arrival) order."""
        return iter(list(self._entries))
