"""The scheduling framework facade.

:class:`SchedulingFramework` bundles the hardware tables (command buffers,
active queue, KSRT, SMST, PTBQ) behind the operations that scheduling
policies and the SM driver need: buffering and activating kernel commands,
tracking SM state, and storing/retrieving preempted thread blocks.

The framework itself contains **no policy decisions** — it only enforces the
capacity and consistency rules of the hardware structures, exactly as the
paper separates mechanism from policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.framework.command_buffer import CommandBufferSet
from repro.core.framework.tables import (
    ActiveQueue,
    KernelStatusEntry,
    KernelStatusRegisterTable,
    PreemptedThreadBlockQueue,
    SMStatusEntry,
    SMStatusTable,
)
from repro.gpu.command_queue import KernelCommand
from repro.gpu.config import SystemConfig
from repro.gpu.kernel import KernelLaunch, KernelState
from repro.gpu.sm import SMState
from repro.gpu.thread_block import ThreadBlock
from repro.sim.stats import StatRegistry


class SchedulingFramework:
    """Bookkeeping shared by scheduling policies and the SM driver."""

    def __init__(self, config: SystemConfig, *, num_sms: Optional[int] = None):
        self.config = config
        self.num_sms = num_sms if num_sms is not None else config.gpu.num_sms
        active_limit = config.scheduler.active_kernel_limit(self.num_sms)

        self.command_buffers = CommandBufferSet()
        self.active_queue = ActiveQueue(active_limit)
        self.ksrt = KernelStatusRegisterTable(active_limit)
        self.smst = SMStatusTable(self.num_sms)
        ptbq_capacity = self.num_sms * config.gpu.max_thread_blocks_per_sm
        self._ptbqs: Dict[int, PreemptedThreadBlockQueue] = {
            index: PreemptedThreadBlockQueue(ptbq_capacity) for index in range(active_limit)
        }
        #: Commands of active kernels, keyed by launch id, so the engine can
        #: notify command completion when the kernel finishes.
        self._commands_by_launch: Dict[int, KernelCommand] = {}
        self.stats = StatRegistry()

    # ------------------------------------------------------------------
    # Command buffers
    # ------------------------------------------------------------------
    def buffer_command(self, command: KernelCommand) -> bool:
        """Store a kernel command in its context's command buffer."""
        accepted = self.command_buffers.offer(command)
        if accepted:
            self.stats.counter("commands_buffered").add()
        return accepted

    def pending_commands(self) -> List[KernelCommand]:
        """Buffered commands not yet admitted, oldest first."""
        return self.command_buffers.pending()

    # ------------------------------------------------------------------
    # Activation / completion
    # ------------------------------------------------------------------
    @property
    def has_active_capacity(self) -> bool:
        """Whether another kernel may be admitted to the active queue."""
        return self.active_queue.has_space and self.ksrt.has_free_entry

    def activate_command(
        self,
        command: KernelCommand,
        *,
        now: float,
        blocks_per_sm: int,
        shared_memory_config: int,
    ) -> KernelStatusEntry:
        """Admit a buffered command: allocate a KSR and an active-queue slot.

        The caller (a scheduling policy) supplies the kernel's occupancy,
        which the SM driver computed from the kernel's resource usage; it is
        cached in the KSR entry so SM setup does not recompute it.
        """
        if not self.has_active_capacity:
            raise RuntimeError("cannot activate a kernel: the active queue is full")
        buffered = self.command_buffers.peek(command.context_id)
        if buffered is not command:
            raise ValueError("command is not at the head of its context's command buffer")
        self.command_buffers.take(command.context_id)

        launch = command.launch
        entry = self.ksrt.allocate(launch, activation_time_us=now)
        entry.blocks_per_sm = blocks_per_sm
        entry.shared_memory_config = shared_memory_config
        self.active_queue.push(entry.index)
        self._ptbqs[entry.index].clear()
        self._commands_by_launch[launch.launch_id] = command
        launch.state = KernelState.ACTIVE
        launch.activation_time_us = now
        self.stats.counter("kernels_activated").add()
        return entry

    def finish_kernel(self, ksr_index: int) -> KernelCommand:
        """Free the KSR entry and active-queue slot of a finished kernel.

        Returns the kernel command so the engine can notify its completion
        listeners (host process and command dispatcher).
        """
        entry = self.ksrt.get(ksr_index)
        if not entry.launch.all_blocks_completed:
            raise RuntimeError(
                f"finish_kernel called for {entry.launch.describe()} before all blocks completed"
            )
        if not self._ptbqs[ksr_index].empty:  # pragma: no cover - defensive
            raise RuntimeError("finished kernel still has preempted thread blocks")
        self.active_queue.remove(ksr_index)
        self.ksrt.free(ksr_index)
        command = self._commands_by_launch.pop(entry.launch.launch_id)
        self.stats.counter("kernels_finished").add()
        return command

    # ------------------------------------------------------------------
    # KSRT queries
    # ------------------------------------------------------------------
    def ksr(self, index: int) -> KernelStatusEntry:
        """The valid KSR entry at ``index``."""
        return self.ksrt.get(index)

    def ksr_valid(self, index: Optional[int]) -> bool:
        """Whether ``index`` refers to a valid (active) kernel."""
        return self.ksrt.is_valid(index)

    def active_entries(self) -> List[KernelStatusEntry]:
        """Valid KSR entries in activation (active-queue) order."""
        return [self.ksrt.get(index) for index in self.active_queue]

    def ksr_index_for_launch(self, launch_id: int) -> Optional[int]:
        """KSR index currently tracking the given kernel launch."""
        return self.ksrt.index_for_launch(launch_id)

    def priority_of(self, ksr_index: Optional[int]) -> Optional[int]:
        """Scheduling priority of the kernel at ``ksr_index`` (or ``None``).

        Used by the execution engine when it snapshots a
        :class:`~repro.core.preemption.controller.PreemptionRequest`: the
        incoming and resident kernel priorities are part of the per-request
        decision context handed to preemption controllers.
        """
        if not self.ksr_valid(ksr_index):
            return None
        return self.ksrt.get(ksr_index).priority

    def kernel_has_issuable_work(self, ksr_index: int) -> bool:
        """Whether the kernel has blocks that an SM could be given.

        Issuable work is either never-issued blocks or preempted blocks
        waiting in the kernel's PTBQ.
        """
        if not self.ksr_valid(ksr_index):
            return False
        entry = self.ksrt.get(ksr_index)
        return entry.launch.has_unissued_blocks or not self._ptbqs[ksr_index].empty

    def issuable_blocks(self, ksr_index: int) -> int:
        """Number of blocks an SM could still be given for this kernel."""
        if not self.ksr_valid(ksr_index):
            return 0
        entry = self.ksrt.get(ksr_index)
        return entry.launch.unissued_blocks + len(self._ptbqs[ksr_index])

    # ------------------------------------------------------------------
    # SMST
    # ------------------------------------------------------------------
    def sm_entry(self, sm_id: int) -> SMStatusEntry:
        """The SMST entry of SM ``sm_id``."""
        return self.smst.entry(sm_id)

    def idle_sms(self) -> List[int]:
        """Ids of all idle SMs."""
        return self.smst.idle_sms()

    def sms_running_kernel(self, ksr_index: int) -> List[int]:
        """SMs in the RUNNING state currently assigned to ``ksr_index``."""
        return self.smst.sms_for_ksr(ksr_index, state=SMState.RUNNING)

    def mark_sm_setup(self, sm_id: int, ksr_index: int) -> None:
        """Record that the SM driver started setting up ``sm_id``."""
        entry = self.smst.entry(sm_id)
        if not entry.is_idle:
            raise RuntimeError(f"SM{sm_id} must be idle to start setup (state={entry.state})")
        self.smst.set_state(sm_id, SMState.SETUP)
        entry.ksr_index = ksr_index
        entry.next_ksr_index = None
        self.ksrt.get(ksr_index).assigned_sms.add(sm_id)

    def mark_sm_running(self, sm_id: int) -> None:
        """Record that setup finished and the SM is executing its kernel."""
        entry = self.smst.entry(sm_id)
        if entry.state is not SMState.SETUP:
            raise RuntimeError(f"SM{sm_id} is not in setup (state={entry.state})")
        self.smst.set_state(sm_id, SMState.RUNNING)

    def mark_sm_reserved(self, sm_id: int, next_ksr_index: Optional[int]) -> None:
        """Record that a policy reserved ``sm_id`` for ``next_ksr_index``."""
        entry = self.smst.entry(sm_id)
        if entry.state is not SMState.RUNNING:
            raise RuntimeError(f"only running SMs can be reserved (SM{sm_id} is {entry.state})")
        self.smst.set_state(sm_id, SMState.RESERVED)
        entry.next_ksr_index = next_ksr_index
        self.stats.counter("sm_reservations").add()

    def update_sm_reservation(self, sm_id: int, next_ksr_index: Optional[int]) -> None:
        """Change the kernel a reserved SM is destined for (paper Sec. 3.4)."""
        entry = self.smst.entry(sm_id)
        if entry.state is not SMState.RESERVED:
            raise RuntimeError(f"SM{sm_id} is not reserved")
        entry.next_ksr_index = next_ksr_index

    def mark_sm_idle(self, sm_id: int) -> Optional[int]:
        """Release the SM back to the idle pool.

        Returns the KSR index the SM was last associated with (or ``None``),
        which policies use to return DSS tokens.
        """
        entry = self.smst.entry(sm_id)
        previous = entry.ksr_index
        if previous is not None and self.ksrt.is_valid(previous):
            self.ksrt.get(previous).assigned_sms.discard(sm_id)
        self.smst.set_state(sm_id, SMState.IDLE)
        entry.ksr_index = None
        entry.next_ksr_index = None
        entry.running_blocks = 0
        return previous

    def set_sm_running_blocks(self, sm_id: int, count: int) -> None:
        """Update the SMST's count of running thread blocks on ``sm_id``."""
        self.smst.entry(sm_id).running_blocks = count

    # ------------------------------------------------------------------
    # PTBQ
    # ------------------------------------------------------------------
    def push_preempted_block(self, ksr_index: int, block: ThreadBlock) -> None:
        """Store the handle of a context-switched thread block."""
        if not self.ksr_valid(ksr_index):
            raise KeyError(f"cannot push a preempted block for invalid KSR {ksr_index}")
        self._ptbqs[ksr_index].push(block)
        self.stats.counter("blocks_preempted").add()

    def pop_preempted_block(self, ksr_index: int) -> Optional[ThreadBlock]:
        """Retrieve the oldest preempted block of a kernel (or ``None``)."""
        return self._ptbqs[ksr_index].pop()

    def preempted_block_count(self, ksr_index: int) -> int:
        """Number of preempted blocks waiting in the kernel's PTBQ."""
        return len(self._ptbqs[ksr_index])

    def ptbq(self, ksr_index: int) -> PreemptedThreadBlockQueue:
        """Direct access to a kernel's PTBQ (used by tests)."""
        return self._ptbqs[ksr_index]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def command_for_launch(self, launch: KernelLaunch) -> Optional[KernelCommand]:
        """The kernel command associated with an active launch."""
        return self._commands_by_launch.get(launch.launch_id)

    def snapshot(self) -> Dict[str, float]:
        """Flat dictionary of framework counters (for experiment reports)."""
        out = dict(self.stats.snapshot())
        out["active_kernels"] = float(len(self.active_queue))
        out["buffered_commands"] = float(self.command_buffers.occupancy())
        out["idle_sms"] = float(len(self.idle_sms()))
        return out
