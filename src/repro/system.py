"""The top-level simulated system: host + PCIe + GPU.

:class:`GPUSystem` wires every substrate together — the discrete-event
simulator, the host CPU and device driver, the PCIe bus and data-transfer
engine, and the GPU execution engine with a chosen scheduling policy and
preemption mechanism — and provides the entry points the examples, tests and
experiment harness use:

>>> from repro import GPUSystem
>>> from repro.trace import TraceGenerator
>>> system = GPUSystem(policy="fcfs", mechanism="context_switch")
>>> trace = TraceGenerator().uniform_kernel("demo", num_blocks=64, tb_time_us=5.0)
>>> process = system.add_process("demo", trace, max_iterations=1)
>>> system.run()
>>> round(process.mean_iteration_time_us(), 1) > 0
True
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.core.policies import SchedulingPolicy, make_policy
from repro.core.preemption import PreemptionController, PreemptionMechanism, make_mechanism
from repro.gpu.config import SystemConfig
from repro.registry import CONTROLLERS, POLICIES, TRANSFER_POLICIES
from repro.scenario import ScenarioSpec
from repro.gpu.context import ContextTable
from repro.gpu.dispatcher import CommandDispatcher
from repro.gpu.execution_engine import ExecutionEngine
from repro.host.cpu import HostCPU
from repro.host.driver import DeviceDriver
from repro.host.process import HostProcess, IterationRecord
from repro.memory.allocator import GPUMemoryAllocator
from repro.memory.dram import DRAMModel
from repro.memory.pcie import PCIeBus
from repro.memory.transfer_engine import DataTransferEngine, TransferSchedulingPolicy
from repro.sim.engine import Simulator
from repro.trace.schema import ApplicationTrace


class GPUSystem:
    """A complete simulated CPU+GPU system."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        *,
        policy: Union[str, SchedulingPolicy] = "fcfs",
        mechanism: Union[str, PreemptionMechanism] = "context_switch",
        controller: Union[str, PreemptionController, None] = None,
        controller_options: Optional[Dict] = None,
        transfer_policy: Union[str, TransferSchedulingPolicy] = TransferSchedulingPolicy.FCFS,
        policy_options: Optional[Dict] = None,
        validate: bool = False,
        trace: bool = False,
        metrics=None,
        start_time_us: float = 0.0,
        queue: Optional[str] = None,
    ):
        self.config = config if config is not None else SystemConfig()
        #: ``start_time_us`` lets a resumed serving segment continue the
        #: simulated clock of the segment it was checkpointed from.
        #: ``queue`` picks the engine's event-queue implementation
        #: (:data:`repro.registry.EVENT_QUEUES`; ``None`` = engine default).
        self.simulator = Simulator(start_time=start_time_us, queue=queue)

        if isinstance(policy, str):
            policy = make_policy(policy, **(policy_options or {}))
        elif policy_options:
            raise ValueError("policy_options are only valid with a policy name")
        if isinstance(mechanism, str):
            mechanism = make_mechanism(mechanism)
        if isinstance(controller, str):
            controller = CONTROLLERS.create(controller, **(controller_options or {}))
        elif controller_options:
            raise ValueError("controller_options are only valid with a controller name")
        if isinstance(transfer_policy, str):
            transfer_policy = TRANSFER_POLICIES.create(transfer_policy)

        self.context_table = ContextTable()
        self.dram = DRAMModel(self.config.gpu)
        self.allocator = GPUMemoryAllocator(self.dram)
        self.pcie = PCIeBus(self.config.pcie, self.simulator)
        self.transfer_engine = DataTransferEngine(
            self.simulator, self.pcie, policy=transfer_policy
        )
        self.execution_engine = ExecutionEngine(
            self.simulator,
            self.config,
            policy=policy,
            mechanism=mechanism,
            controller=controller,
            context_table=self.context_table,
        )
        self.dispatcher = CommandDispatcher(
            self.simulator,
            num_queues=self.config.gpu.num_hw_queues,
            execution_sink=self.execution_engine,
            transfer_sink=self.transfer_engine,
        )
        self.cpu = HostCPU(self.config.cpu, self.simulator)
        self.driver = DeviceDriver(
            self.simulator,
            self.config,
            context_table=self.context_table,
            allocator=self.allocator,
            dispatcher=self.dispatcher,
        )
        self.processes: List[HostProcess] = []
        self._process_index: Dict[str, HostProcess] = {}
        #: Open-loop serving driver, when one is attached (see
        #: :class:`repro.serving.ServingDriver`); observed like any component.
        self.serving = None
        #: Minimum completed iterations per process before :meth:`run` with
        #: ``stop_after_min_iterations`` halts the simulation.
        self._min_iterations: Optional[int] = None
        #: Observers installed on the component hooks (see
        #: :meth:`install_observer`); the components themselves keep a single
        #: ``observer`` attribute, multiplexed through a
        #: :class:`~repro.sim.observers.CompositeObserver` when several are
        #: installed (e.g. ``validate=True`` together with ``trace=True``).
        self._component_observers: List[object] = []
        #: Runtime invariant-validation hub (``None`` unless ``validate=True``).
        self.validation = None
        if validate:
            from repro.validation import make_hub  # local: keeps import cheap

            self.validation = make_hub()
            self.validation.attach(self)
        #: Telemetry trace collector (``None`` unless ``trace`` enabled it or
        #: a :class:`~repro.telemetry.TraceCollector` was attached manually).
        self.telemetry = None
        if trace:
            from repro.telemetry import TraceCollector  # local: keeps import cheap

            collector = trace if isinstance(trace, TraceCollector) else TraceCollector()
            collector.attach(self)
        #: Metrics hub (``None`` unless metrics are enabled).  ``metrics``
        #: accepts ``True`` / a ``ScenarioSpec.metrics``-style mapping; the
        #: hub hooks the engine through None-gated attributes rather than
        #: observers, so enabling it keeps the SM wave-batching fast path.
        self.metrics = None
        # `{}` means on-with-defaults (the canonical form of `metrics=True`),
        # so gate on None rather than truthiness.
        if metrics is not None and metrics is not False:
            from repro.obs import (  # local: keeps import cheap
                MetricsHub,
                attach_engine_metrics,
                attach_gpu_metrics,
            )

            hub = MetricsHub.from_spec(
                None if metrics is True else metrics, start_us=start_time_us
            )
            hub.meta.update(
                {
                    "policy": self.policy.name,
                    "mechanism": self.mechanism.name,
                    "controller": self.controller.name,
                }
            )
            attach_engine_metrics(hub, self.simulator)
            attach_gpu_metrics(hub, self)
            wave_hist = hub.registry.histogram(
                "engine.wave_size", hub.histogram_growth
            )
            for sm in self.execution_engine.sms():
                sm.metrics_wave_hist = wave_hist
            self.simulator.metrics = hub
            self.metrics = hub

    # ------------------------------------------------------------------
    # Instrumentation observers
    # ------------------------------------------------------------------
    def install_observer(self, observer) -> None:
        """Attach ``observer`` to every instrumented component of the system.

        Observers (see :class:`repro.sim.observers.BaseObserver` for the hook
        vocabulary) must only observe — never schedule events or mutate model
        state — so any number of them can be installed without perturbing the
        simulation.  Multiple observers are multiplexed through a
        :class:`~repro.sim.observers.CompositeObserver`, keeping the
        single-observer hot path a plain attribute check.
        """
        if any(existing is observer for existing in self._component_observers):
            raise ValueError("observer is already installed")
        if getattr(observer, "wants_simulator_events", True):
            self.simulator.add_observer(observer)
        self._component_observers.append(observer)
        self._rewire_observers()

    def uninstall_observer(self, observer) -> None:
        """Detach a previously installed observer (idempotent)."""
        self.simulator.remove_observer(observer)
        self._component_observers = [
            existing for existing in self._component_observers if existing is not observer
        ]
        self._rewire_observers()

    def _rewire_observers(self) -> None:
        observers = self._component_observers
        if not observers:
            target = None
        elif len(observers) == 1:
            target = observers[0]
        else:
            from repro.sim.observers import CompositeObserver

            target = CompositeObserver(observers)
        self.execution_engine.observer = target
        for sm in self.execution_engine.sms():
            sm.observer = target
        self.dispatcher.observer = target
        self.cpu.observer = target
        if self.serving is not None:
            self.serving.observer = target

    # ------------------------------------------------------------------
    # Declarative construction
    # ------------------------------------------------------------------
    @classmethod
    def from_scenario(
        cls,
        scenario: ScenarioSpec,
        *,
        config: Optional[SystemConfig] = None,
        suite=None,
    ) -> "GPUSystem":
        """Build a system (processes included) from a :class:`ScenarioSpec`.

        This is the canonical constructor of the declarative API: the
        scenario's scheme is resolved through the component registries, the
        workload scale preset supplies the benchmark suite and the scaled
        hardware configuration, and one process per application is added with
        the scenario's priorities and start stagger.

        Parameters
        ----------
        config:
            Pre-scaled :class:`SystemConfig` to use instead of the scenario's
            (``scale.scale_config(scenario.system_config())``).
        suite:
            Benchmark suite supplying the application traces (default: a
            :class:`~repro.workloads.synthetic.SyntheticSuite` at the
            scenario's scale, which resolves both Parboil names and
            seed-derived ``syn-*`` applications).
        """
        from repro.workloads.synthetic import SyntheticSuite  # local: avoids cycle

        scale = scenario.workload_scale()
        if config is None:
            config = scale.scale_config(scenario.system_config())
        if suite is None:
            suite = SyntheticSuite(scale)

        scheme = scenario.scheme
        options = dict(scheme.policy_options)
        if POLICIES.canonical_name(scheme.policy) == "dss":
            # Equal sharing needs the process count for its token budgets.
            options.setdefault("process_count", scenario.num_processes)

        system = cls(
            config,
            policy=scheme.policy,
            mechanism=scheme.mechanism,
            controller=scheme.controller,
            controller_options=dict(scheme.controller_options) or None,
            transfer_policy=scheme.transfer_policy,
            policy_options=options or None,
            validate=scenario.validate,
            trace=scenario.trace,
            metrics=scenario.metrics,
            queue=scenario.queue,
        )
        for slot, (app, process_name) in enumerate(
            zip(scenario.applications, scenario.process_names())
        ):
            priority = (
                scenario.high_priority
                if slot == scenario.high_priority_index
                else scenario.normal_priority
            )
            system.add_process(
                process_name,
                suite.trace(app),
                priority=priority,
                start_delay_us=scenario.start_stagger_us * slot,
            )
        return system

    # ------------------------------------------------------------------
    # Workload construction
    # ------------------------------------------------------------------
    @property
    def policy(self) -> SchedulingPolicy:
        """The execution-engine scheduling policy."""
        return self.execution_engine.policy

    @property
    def mechanism(self) -> PreemptionMechanism:
        """The default/fallback preemption mechanism.

        With the (default) ``static`` controller this is *the* mechanism;
        dynamic controllers may route individual preemptions to other bound
        instances (see :meth:`ExecutionEngine.mechanisms`).
        """
        return self.execution_engine.mechanism

    @property
    def controller(self) -> PreemptionController:
        """The preemption controller consulted per preemption request."""
        return self.execution_engine.controller

    def add_process(
        self,
        name: str,
        trace: ApplicationTrace,
        *,
        priority: int = 0,
        tokens: int = 0,
        start_delay_us: float = 0.0,
        max_iterations: Optional[int] = None,
    ) -> HostProcess:
        """Add (but do not yet start) a host process replaying ``trace``."""
        if name in self._process_index:
            raise ValueError(f"a process named {name!r} already exists")
        process = HostProcess(
            name,
            trace,
            simulator=self.simulator,
            driver=self.driver,
            cpu=self.cpu,
            priority=priority,
            tokens=tokens,
            start_delay_us=start_delay_us,
            max_iterations=max_iterations,
            on_iteration_complete=self._on_iteration_complete,
        )
        self.processes.append(process)
        self._process_index[name] = process
        return process

    def process(self, name: str) -> HostProcess:
        """Look up a process by name (O(1))."""
        try:
            return self._process_index[name]
        except KeyError:
            raise KeyError(f"no process named {name!r}") from None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        until_us: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_after_min_iterations: Optional[int] = None,
    ) -> None:
        """Start every process and run the simulation.

        Parameters
        ----------
        until_us:
            Optional simulated-time bound.
        max_events:
            Optional bound on processed events (livelock guard in tests).
        stop_after_min_iterations:
            Stop the simulation as soon as *every* process has completed at
            least this many iterations (the paper's replay methodology).
        """
        self._min_iterations = stop_after_min_iterations
        for process in self.processes:
            if not process._started:  # noqa: SLF001 - intentional internal check
                process.start()
        self.simulator.run(until=until_us, max_events=max_events)
        if self.validation is not None:
            self.validation.finalize()
        # Serving runs manage their own finalize (a checkpointed segment
        # must not cut an extra row at the quiesce instant — split and
        # unsplit runs would otherwise disagree on the snapshot series).
        if self.metrics is not None and self.serving is None:
            self.metrics.finalize(self.simulator.now)

    def _on_iteration_complete(self, process: HostProcess, record: IterationRecord) -> None:
        if self._min_iterations is None:
            return
        if all(p.completed_iterations >= self._min_iterations for p in self.processes):
            for p in self.processes:
                p.stop()
            self.simulator.stop()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def violations(self) -> List[Dict]:
        """Recorded invariant violations (empty list when validation is off)."""
        return self.validation.to_dicts() if self.validation is not None else []

    def trace_summary(self) -> Optional[Dict]:
        """Telemetry summary of the run (``None`` when tracing is off)."""
        return self.telemetry.summary() if self.telemetry is not None else None

    def metrics_snapshot(self) -> Optional[Dict]:
        """Latest metric values (``None`` when metrics are off).

        Kept out of :class:`repro.runner.RunRecord` result payloads on
        purpose: run artifacts must stay byte-identical with metrics on or
        off (snapshot series are exported as separate JSONL artifacts).
        """
        return self.metrics.registry.snapshot() if self.metrics is not None else None

    def iteration_times_us(self) -> Dict[str, List[float]]:
        """Completed-iteration durations per process."""
        return {
            process.name: [record.duration_us for record in process.iterations]
            for process in self.processes
        }

    def mean_iteration_times_us(self) -> Dict[str, float]:
        """Mean completed-iteration duration per process."""
        return {
            process.name: process.mean_iteration_time_us()
            for process in self.processes
            if process.iterations
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GPUSystem(policy={self.policy.name}, mechanism={self.mechanism.name}, "
            f"processes={len(self.processes)})"
        )


def run_isolated(
    trace: ApplicationTrace,
    *,
    config: Optional[SystemConfig] = None,
    mechanism: Union[str, PreemptionMechanism] = "context_switch",
    iterations: int = 1,
) -> float:
    """Run one application alone on the GPU and return its mean iteration time.

    Isolated execution times are the baseline of every multiprogram metric
    (NTT, ANTT, STP, fairness).
    """
    system = GPUSystem(config, policy="fcfs", mechanism=mechanism)
    process = system.add_process(trace.name, trace, max_iterations=iterations)
    system.run()
    return process.mean_iteration_time_us()
