"""The multi-GPU fleet: cluster admission, routed epochs, merged metrics.

:class:`GPUFleet` serves one open-loop scenario on ``N`` member GPUs.  The
fleet owns the arrival streams and the cluster-level
:class:`~repro.serving.queue.IngressQueue`; member GPUs interact with the
cluster *only* at epoch boundaries:

1. All arrivals falling inside the epoch are generated (per-tenant
   key-addressed streams, exactly the serving driver's semantics) and
   offered to the cluster queue — fleet-level admission accounting happens
   here, with the queue's drop/drop_oldest/block policies.
2. At the boundary the queue is dispatched in priority-then-FIFO order and
   each request is routed to a member GPU by the scenario's router
   (:data:`repro.registry.ROUTERS`) over epoch-boundary
   :class:`~repro.cluster.routing.GPUView` snapshots.
3. Each GPU runs its batch to idle through the pure
   :func:`~repro.cluster.worker.execute_epoch` function — serially, or
   sharded over :meth:`repro.runner.BatchRunner.map_tasks`.  Because the
   worker is a pure function of plain data, both paths are byte-identical.
4. Completions fold into per-GPU and fleet-level
   :class:`~repro.serving.metrics.ServingMetrics` in a deterministic merge
   order (completion time, then request id).

:func:`run_fleet` is the one-call entry point; the scenario routing in
:class:`repro.workloads.multiprogram.WorkloadRunner` dispatches any scenario
with a ``cluster=`` section here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.cluster.routing import GPUView
from repro.cluster.spec import ClusterSpec
from repro.registry import ARRIVALS
from repro.runner import BatchRunner
from repro.scenario import ScenarioSpec
from repro.serving.driver import ServingSpec, TenantSpec
from repro.serving.metrics import ServingMetrics
from repro.serving.queue import IngressQueue, Request
from repro.telemetry.events import TraceEvent

from repro.cluster.worker import execute_epoch, make_epoch_payload

#: Version tag of the fleet summary payload.
FLEET_SUMMARY_SCHEMA = 1


def _round3(value: float) -> float:
    return round(float(value), 3)


@dataclass
class _TenantCursor:
    """One tenant's arrival stream, advanced centrally by the fleet."""

    spec: TenantSpec
    process: Any
    kernels: List[str]
    next_arrival_us: float
    count: int = 0


@dataclass
class _MemberState:
    """Cross-epoch state of one member GPU (the quiesce-at-idle reduction)."""

    view: GPUView
    launches: int = 0
    events_processed: int = 0
    metrics: Optional[ServingMetrics] = None


@dataclass
class FleetOutcome:
    """Everything a finished fleet run produced."""

    scenario: ScenarioSpec
    summary: Dict[str, Any]
    epochs: int
    simulated_time_us: float
    events_processed: int
    validated: bool
    violations: List[Dict]
    trace_events: List[TraceEvent] = field(default_factory=list)
    #: Per-epoch metrics snapshot rows (``None`` when metrics are off).
    metrics_rows: Optional[List[Dict[str, Any]]] = None
    #: Final metric values (``None`` when metrics are off).
    metrics_snapshot: Optional[Dict[str, float]] = None
    #: Hub meta (router, fleet size, ...) for the JSONL exporter header.
    metrics_meta: Optional[Dict[str, Any]] = None


class GPUFleet:
    """Runs one open-loop scenario across ``num_gpus`` member GPUs.

    ``runner`` supplies the process pool the epoch batches shard over
    (:meth:`~repro.runner.BatchRunner.map_tasks`); ``None`` runs every batch
    serially in this process.  Results are byte-identical either way.
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        *,
        runner: Optional[BatchRunner] = None,
        suite=None,
    ):
        from repro.workloads.synthetic import SyntheticSuite  # local: avoids cycle

        self.scenario = scenario
        self.spec = ServingSpec.from_scenario(scenario)
        self.cluster = ClusterSpec.from_scenario(scenario)
        self.router = self.cluster.build_router()
        self.runner = runner
        suite = suite if suite is not None else SyntheticSuite(scenario.workload_scale())

        self.queue = IngressQueue(
            capacity=self.spec.queue_capacity, admission=self.spec.admission
        )
        self._request_seq = 0
        self._cursors: List[_TenantCursor] = []
        for tenant in self.spec.tenants:
            process = ARRIVALS.create(
                tenant.process, seed=tenant.seed, **dict(tenant.options)
            )
            self._cursors.append(
                _TenantCursor(
                    spec=tenant,
                    process=process,
                    kernels=sorted(suite.trace(tenant.app).kernels),
                    next_arrival_us=process.next_gap_us(),
                )
            )
        budgets = {t.name: t.slo_us for t in self.spec.tenants}

        def _metrics() -> ServingMetrics:
            return ServingMetrics(
                tenants=budgets,
                warmup_us=self.spec.warmup_us,
                window_us=self.spec.window_us,
                seed=self.spec.metrics_seed,
                reservoir_capacity=self.spec.reservoir_capacity,
            )

        self.metrics = _metrics()
        self._members = [
            _MemberState(view=GPUView(gpu_id=gpu_id), metrics=_metrics())
            for gpu_id in range(self.cluster.num_gpus)
        ]
        self.epochs = 0
        self.violations: List[Dict] = []
        self.trace_events: List[TraceEvent] = []
        self._trace_seq = 0

        #: Metrics hub (``None`` unless the scenario enables metrics).  Fleet
        #: members execute inside worker processes, so the hub samples the
        #: centrally-merged views and cuts one row per epoch boundary — the
        #: fleet's natural snapshot cadence — instead of hooking an engine.
        self.obs = None
        if scenario.metrics is not None:
            from repro.obs import MetricsHub, attach_fleet_metrics  # local: cheap

            hub = MetricsHub.from_spec(scenario.metrics)
            hub.meta.update(
                {
                    "policy": scenario.scheme.policy,
                    "mechanism": scenario.scheme.mechanism,
                    "router": self.cluster.router,
                    "num_gpus": self.cluster.num_gpus,
                }
            )
            attach_fleet_metrics(hub, self)
            self.obs = hub

    # ------------------------------------------------------------------
    # Arrival generation (epoch granularity)
    # ------------------------------------------------------------------
    def _arrivals_until(self, bound_us: float) -> List[Request]:
        """Generate every arrival with ``arrival <= bound`` (and horizon)."""
        horizon = self.spec.horizon_us
        pending: List[Request] = []
        for slot, cursor in enumerate(self._cursors):
            while cursor.next_arrival_us <= min(bound_us, horizon):
                arrival_us = cursor.next_arrival_us
                pending.append(
                    Request(
                        request_id=0,  # assigned after the merge sort
                        tenant=cursor.spec.name,
                        kernel=cursor.kernels[cursor.count % len(cursor.kernels)],
                        priority=cursor.spec.priority,
                        arrival_us=arrival_us,
                        tenant_index=cursor.count,
                    )
                )
                cursor.count += 1
                # Gaps accumulate from true arrival times (queueing- and
                # epoch-independent), like the single-GPU serving driver.
                cursor.next_arrival_us = arrival_us + cursor.process.next_gap_us()
        slots = {cursor.spec.name: slot for slot, cursor in enumerate(self._cursors)}
        pending.sort(key=lambda r: (r.arrival_us, slots[r.tenant], r.tenant_index))
        for request in pending:
            request.request_id = self._request_seq
            self._request_seq += 1
        return pending

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route_epoch(self) -> List[List[Dict[str, Any]]]:
        """Dispatch the cluster queue and build per-GPU epoch batches."""
        views = [member.view for member in self._members]
        batches: List[List[Dict[str, Any]]] = [[] for _ in self._members]
        while True:
            request = self.queue.pop()
            if request is None:
                break
            gpu_id = self.router.route(request, views)
            if not 0 <= gpu_id < len(views):
                raise ValueError(
                    f"router {self.cluster.router!r} returned invalid gpu "
                    f"{gpu_id!r} for a {len(views)}-GPU fleet"
                )
            view = views[gpu_id]
            view.assigned += 1
            view.tenant_assigned[request.tenant] = (
                view.tenant_assigned.get(request.tenant, 0) + 1
            )
            batches[gpu_id].append(
                {
                    "request_id": request.request_id,
                    "tenant": request.tenant,
                    "kernel": request.kernel,
                    "priority": request.priority,
                    "arrival_us": request.arrival_us,
                    "tenant_index": request.tenant_index,
                }
            )
        return batches

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> "GPUFleet":
        """Run the full horizon, epoch by epoch."""
        horizon = self.spec.horizon_us
        epoch_us = self.cluster.epoch_us
        bounds: List[float] = []
        bound = epoch_us
        while bound < horizon:
            bounds.append(bound)
            bound += epoch_us
        bounds.append(horizon)
        for bound in bounds:
            self._run_epoch(bound)
            if self.obs is not None:
                self.obs.emit_row(bound)
        return self

    def _run_epoch(self, bound_us: float) -> None:
        self.epochs += 1
        for request in self._arrivals_until(bound_us):
            self.queue.offer(request)
        batches = self._route_epoch()
        payloads = [
            make_epoch_payload(
                self.scenario,
                gpu_id=member.view.gpu_id,
                clock_us=member.view.clock_us,
                launches=member.launches,
                batch=batch,
            )
            for member, batch in zip(self._members, batches)
            if batch
        ]
        if not payloads:
            return
        if self.runner is not None:
            results = self.runner.map_tasks(execute_epoch, payloads)
        else:
            results = [execute_epoch(payload) for payload in payloads]
        merged: List[Dict[str, Any]] = []
        epoch_events: List[tuple] = []
        for result in results:
            member = self._members[int(result["gpu_id"])]
            member.view.clock_us = float(result["clock_us"])
            member.launches += int(result["launches"])
            member.events_processed += int(result["events_processed"])
            member.view.completed += len(result["completions"])
            self.violations.extend(result["violations"])
            for completion in result["completions"]:
                member.metrics.record_completion(
                    completion["tenant"],
                    arrival_us=completion["arrival_us"],
                    admit_us=completion["admit_us"],
                    complete_us=completion["complete_us"],
                )
                merged.append(completion)
            for event in result.get("trace_events", ()):
                epoch_events.append(
                    (float(event["time_us"]), int(result["gpu_id"]), event)
                )
        # Merge the epoch's traces time-ordered across GPUs (GPU id breaks
        # same-instant ties; per-GPU order is already chronological) and
        # resequence globally so the fleet trace reads as one timeline.
        epoch_events.sort(key=lambda item: (item[0], item[1]))
        for time_us, _, event in epoch_events:
            self.trace_events.append(
                TraceEvent(
                    seq=self._trace_seq,
                    time_us=time_us,
                    kind=str(event["kind"]),
                    attrs=dict(event["attrs"]),
                )
            )
            self._trace_seq += 1
        # Fleet-level metrics fold in a deterministic merge order: requests
        # are globally unique, so (completion time, request id) totally
        # orders same-instant completions from different GPUs.
        merged.sort(key=lambda c: (c["complete_us"], c["request_id"]))
        for completion in merged:
            self.metrics.record_completion(
                completion["tenant"],
                arrival_us=completion["arrival_us"],
                admit_us=completion["admit_us"],
                complete_us=completion["complete_us"],
            )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def simulated_time_us(self) -> float:
        """Fleet simulated time: the farthest member clock."""
        return max(member.view.clock_us for member in self._members)

    @property
    def events_processed(self) -> int:
        """Engine events processed across every member GPU and epoch."""
        return sum(member.events_processed for member in self._members)

    def summary(self) -> Dict[str, Any]:
        """JSON-serialisable fleet summary (admission, metrics, per-GPU)."""
        spec = self.spec
        now = self.simulated_time_us
        per_gpu = []
        for member in self._members:
            view = member.view
            per_gpu.append(
                {
                    "gpu_id": view.gpu_id,
                    "clock_us": _round3(view.clock_us),
                    "assigned": view.assigned,
                    "completed": view.completed,
                    "launches": member.launches,
                    "events_processed": member.events_processed,
                    "tenant_assigned": dict(sorted(view.tenant_assigned.items())),
                    "metrics": member.metrics.summary(now_us=view.clock_us),
                }
            )
        return {
            "schema": FLEET_SUMMARY_SCHEMA,
            "horizon_us": _round3(spec.horizon_us),
            "simulated_time_us": _round3(now),
            "num_gpus": self.cluster.num_gpus,
            "router": self.cluster.router,
            "epoch_us": _round3(self.cluster.epoch_us),
            "epochs": self.epochs,
            "queue": {
                "capacity": spec.queue_capacity,
                "admission": spec.admission,
                "max_inflight": spec.max_inflight,
                **self.queue.counters.to_dict(),
            },
            **self.metrics.summary(now_us=now),
            "per_gpu": per_gpu,
        }


def run_fleet(
    scenario: ScenarioSpec,
    *,
    runner: Optional[BatchRunner] = None,
    suite=None,
) -> FleetOutcome:
    """Run a ``cluster=`` scenario across its fleet and collect the outcome.

    ``runner`` shards epoch batches over its worker pool; ``None`` runs
    serially.  Both paths produce byte-identical summaries.
    """
    fleet = GPUFleet(scenario, runner=runner, suite=suite).run()
    return FleetOutcome(
        scenario=scenario,
        summary=fleet.summary(),
        epochs=fleet.epochs,
        simulated_time_us=fleet.simulated_time_us,
        events_processed=fleet.events_processed,
        validated=scenario.validate,
        violations=fleet.violations,
        trace_events=fleet.trace_events,
        metrics_rows=None if fleet.obs is None else list(fleet.obs.rows),
        metrics_snapshot=None if fleet.obs is None else fleet.obs.registry.snapshot(),
        metrics_meta=None if fleet.obs is None else dict(fleet.obs.meta),
    )


__all__ = ["GPUFleet", "FleetOutcome", "run_fleet", "FLEET_SUMMARY_SCHEMA"]
