"""Cluster request routers: place admitted requests on fleet member GPUs.

A router sees the request stream the fleet's admission queue dispatches at
each epoch boundary, plus a :class:`GPUView` snapshot per member GPU (clock,
cumulative assignment/completion counts), and names the GPU each request
runs on.  Routers are registered in :data:`repro.registry.ROUTERS` and
selected by name through the scenario's ``cluster=`` section, exactly like
scheduling policies and arrival processes.

Every router is deterministic: routing is a pure function of the request
sequence and the epoch-boundary views (plus explicit options), never of
wall-clock time or process identity — the fleet's serial-vs-sharded
byte-identity guarantee depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.registry import register_router
from repro.serving.queue import Request
from repro.utils.determinism import hash_uniform

_NS = "repro.cluster.routing"


@dataclass
class GPUView:
    """Epoch-boundary snapshot of one member GPU, as routers see it."""

    #: Fleet-local GPU index.
    gpu_id: int
    #: The GPU's simulation clock at the last sync point (µs).
    clock_us: float = 0.0
    #: Requests assigned to the GPU so far (including the current round).
    assigned: int = 0
    #: Requests the GPU has completed so far.
    completed: int = 0
    #: Cumulative per-tenant assignment counts.
    tenant_assigned: Dict[str, int] = field(default_factory=dict)


def _least_loaded_id(views: List[GPUView]) -> int:
    """The least-loaded GPU: fewest assignments, then earliest clock.

    The fleet has no per-request cost model at routing time, so load is the
    pair (cumulative assignments, clock): assignment counts spread the batch
    evenly and the clock breaks ties toward the GPU that is least behind.
    """
    return min(views, key=lambda v: (v.assigned, v.clock_us, v.gpu_id)).gpu_id


def _affinity_home(tenant: str, num_gpus: int, seed: int) -> int:
    """The tenant's stable home GPU (hash-keyed, independent of load)."""
    return min(
        int(hash_uniform(_NS, seed, "affinity", tenant) * num_gpus), num_gpus - 1
    )


class Router:
    """Base class for cluster routers (subclass and implement :meth:`route`)."""

    name = "base"

    def route(self, request: Request, views: List[GPUView]) -> int:
        """Return the ``gpu_id`` the request runs on."""
        raise NotImplementedError


@register_router("round_robin", "rr")
class RoundRobinRouter(Router):
    """Cycle through member GPUs in order, ignoring load and tenancy."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def route(self, request: Request, views: List[GPUView]) -> int:
        gpu_id = self._cursor % len(views)
        self._cursor += 1
        return gpu_id


@register_router("least_loaded", "ll")
class LeastLoadedRouter(Router):
    """Send each request to the GPU with the fewest assignments (clock ties)."""

    name = "least_loaded"

    def route(self, request: Request, views: List[GPUView]) -> int:
        return _least_loaded_id(views)


@register_router("tenant_affinity", "affinity")
class TenantAffinityRouter(Router):
    """Pin every tenant to a stable home GPU (hash of the tenant name).

    Keeps a tenant's requests on one device — the serving analogue of
    context/data locality — at the cost of load imbalance when tenant rates
    are skewed.  ``seed`` reshuffles the tenant→GPU mapping.
    """

    name = "tenant_affinity"

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = int(seed)

    def route(self, request: Request, views: List[GPUView]) -> int:
        return _affinity_home(request.tenant, len(views), self.seed)


@register_router("priority_spill", "spill")
class PrioritySpillRouter(Router):
    """Affinity for normal traffic; high-priority and overflow spill to load.

    Requests with ``priority > threshold`` always take the least-loaded GPU
    (latency-critical traffic must not queue behind a hot home device).
    Everything else goes to its tenant-affinity home unless the home is
    ``spill_margin`` assignments ahead of the least-loaded GPU, in which
    case it spills there too.
    """

    name = "priority_spill"

    def __init__(
        self, *, threshold: int = 0, spill_margin: int = 4, seed: int = 0
    ) -> None:
        if spill_margin < 1:
            raise ValueError("spill_margin must be at least 1")
        self.threshold = int(threshold)
        self.spill_margin = int(spill_margin)
        self.seed = int(seed)

    def route(self, request: Request, views: List[GPUView]) -> int:
        spill_id = _least_loaded_id(views)
        if request.priority > self.threshold:
            return spill_id
        home_id = _affinity_home(request.tenant, len(views), self.seed)
        if views[home_id].assigned - views[spill_id].assigned >= self.spill_margin:
            return spill_id
        return home_id


__all__ = [
    "GPUView",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "TenantAffinityRouter",
    "PrioritySpillRouter",
]
