"""Multi-GPU fleet simulation: routed epochs over N member GPUs.

Scenario-level entry point: add a ``cluster=`` section next to
``arrivals=`` and the workload runner dispatches to :func:`run_fleet`,
which serves the arrival streams across the fleet — serially or sharded
over a :class:`~repro.runner.BatchRunner` process pool, byte-identically.
"""

from repro.cluster.fleet import FLEET_SUMMARY_SCHEMA, FleetOutcome, GPUFleet, run_fleet
from repro.cluster.routing import (
    GPUView,
    LeastLoadedRouter,
    PrioritySpillRouter,
    RoundRobinRouter,
    Router,
    TenantAffinityRouter,
)
from repro.cluster.spec import ClusterSpec
from repro.cluster.worker import execute_epoch, make_epoch_payload

__all__ = [
    "FLEET_SUMMARY_SCHEMA",
    "ClusterSpec",
    "FleetOutcome",
    "GPUFleet",
    "GPUView",
    "LeastLoadedRouter",
    "PrioritySpillRouter",
    "Router",
    "RoundRobinRouter",
    "TenantAffinityRouter",
    "execute_epoch",
    "make_epoch_payload",
    "run_fleet",
]
