"""The fleet worker: run one GPU's epoch batch to idle, as a pure function.

:func:`execute_epoch` is the unit of work the fleet shards over
:meth:`repro.runner.BatchRunner.map_tasks`.  Its payload and result are
plain JSON-serialisable data, and the function is deterministic, so serial
execution and process-pool execution produce *identical* results — the
fleet's byte-identity guarantee reduces to calling the same function on the
same payloads.

Member GPUs synchronise with the cluster only at epoch boundaries, and every
epoch batch is run to idle, so a GPU's cross-epoch state reduces to its
clock and its launch count (the same quiesce-at-idle reduction the serving
checkpoints use): each call rebuilds a fresh
:class:`~repro.system.GPUSystem` at ``start_time_us=clock_us``, recreates
the per-tenant contexts in a fixed order (stable context ids) and continues
the launch-id sequence (stable per-launch jitter), making the epoch split
invisible in the results.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Tuple

from repro.registry import POLICIES
from repro.scenario import ScenarioSpec
from repro.serving.driver import ServingSpec
from repro.serving.queue import IngressQueue, Request
from repro.system import GPUSystem

#: Per-process cache of (config, suite) pairs, keyed like the batch runner's
#: worker cache: rebuilding the synthetic suite per epoch would swamp the
#: actual simulation work.
_CONTEXT_CACHE: Dict[Tuple[str, str], Tuple[Any, Any]] = {}


def _context_for(scenario: ScenarioSpec) -> Tuple[Any, Any]:
    import json

    from repro.workloads.synthetic import SyntheticSuite  # local: avoids cycle

    key = (
        scenario.scale,
        json.dumps(dict(scenario.config_overrides), sort_keys=True, default=str),
    )
    cached = _CONTEXT_CACHE.get(key)
    if cached is None:
        scale = scenario.workload_scale()
        config = scale.scale_config(scenario.system_config())
        cached = (config, SyntheticSuite(scale))
        _CONTEXT_CACHE[key] = cached
    return cached


def make_epoch_payload(
    scenario: ScenarioSpec,
    *,
    gpu_id: int,
    clock_us: float,
    launches: int,
    batch: List[Dict[str, Any]],
) -> Dict[str, Any]:
    """Assemble one :func:`execute_epoch` payload (plain data only)."""
    return {
        "scenario": scenario.to_dict(),
        "gpu_id": gpu_id,
        "clock_us": clock_us,
        "launches": launches,
        "batch": batch,
    }


class _EpochRun:
    """Drives one epoch batch on one rebuilt GPU system."""

    def __init__(self, payload: Dict[str, Any]):
        scenario = ScenarioSpec.from_dict(payload["scenario"])
        self.scenario = scenario
        self.spec = ServingSpec.from_scenario(scenario)
        self.gpu_id = int(payload["gpu_id"])
        config, suite = _context_for(scenario)

        scheme = scenario.scheme
        options = dict(scheme.policy_options)
        if POLICIES.canonical_name(scheme.policy) == "dss":
            options.setdefault("process_count", scenario.num_processes)
        trace: Any = False
        if scenario.trace:
            from repro.telemetry import TraceCollector  # local: keeps import cheap

            trace = TraceCollector(gpu_id=self.gpu_id)
        self.system = GPUSystem(
            config,
            policy=scheme.policy,
            mechanism=scheme.mechanism,
            controller=scheme.controller,
            controller_options=dict(scheme.controller_options) or None,
            transfer_policy=scheme.transfer_policy,
            policy_options=options or None,
            validate=scenario.validate,
            trace=trace,
            start_time_us=float(payload["clock_us"]),
            queue=scenario.queue,
        )
        # Continue the launch-id sequence across epochs: per-launch jitter is
        # keyed by launch id, so the epoch split must hand out the ids an
        # unsplit run would have.
        self.system.driver._launch_ids = itertools.count(  # noqa: SLF001
            int(payload["launches"]) + 1
        )

        # One context per tenant, created in spec order on *every* epoch —
        # context ids stay stable regardless of which tenants have work.
        self._contexts: Dict[str, Any] = {}
        self._kernels: Dict[str, List[Tuple[str, Any]]] = {}
        for tenant in self.spec.tenants:
            trace_obj = suite.trace(tenant.app)
            self._kernels[tenant.name] = [
                (name, trace_obj.kernels[name]) for name in sorted(trace_obj.kernels)
            ]
            self._contexts[tenant.name] = self.system.driver.create_context(
                tenant.name, priority=tenant.priority
            )

        self._batch = [
            Request(
                request_id=int(item["request_id"]),
                tenant=str(item["tenant"]),
                kernel=str(item["kernel"]),
                priority=int(item["priority"]),
                arrival_us=float(item["arrival_us"]),
                tenant_index=int(item["tenant_index"]),
            )
            for item in payload["batch"]
        ]
        # Local dispatch queue: big enough to never drop; preserves the
        # fleet-wide priority-then-FIFO contract among co-located requests.
        self._queue = IngressQueue(
            capacity=max(1, len(self._batch)), admission="block"
        )
        self._inflight = 0
        self._completions: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        sim = self.system.simulator
        for request in self._batch:
            # A request reaches this GPU at its (cluster) arrival time, or
            # immediately if the GPU's clock is already past it.
            sim.schedule(
                max(0.0, request.arrival_us - sim.now),
                lambda request=request: self._on_available(request),
                label=f"fleet.gpu{self.gpu_id}.arrival",
            )
        self.system.run(max_events=self.scenario.resolved_max_events())
        if self._inflight or len(self._queue):
            raise RuntimeError(
                f"fleet epoch stopped with work outstanding on gpu {self.gpu_id} "
                f"(inflight={self._inflight}, queued={len(self._queue)})"
            )
        self._completions.sort(key=lambda c: (c["complete_us"], c["request_id"]))
        result: Dict[str, Any] = {
            "gpu_id": self.gpu_id,
            "clock_us": sim.now,
            "launches": len(self._batch),
            "events_processed": sim.events_processed,
            "completions": self._completions,
            "violations": self.system.violations(),
        }
        if self.system.telemetry is not None:
            result["trace_events"] = [
                event.to_dict() for event in self.system.telemetry.events
            ]
        return result

    def _on_available(self, request: Request) -> None:
        self._queue.offer(request)
        self._dispatch()

    def _dispatch(self) -> None:
        while self._inflight < self.spec.max_inflight:
            request = self._queue.pop()
            if request is None:
                break
            self._launch(request)

    def _launch(self, request: Request) -> None:
        now = self.system.simulator.now
        request.admit_us = now
        kernels = self._kernels[request.tenant]
        _, kernel_spec = kernels[request.tenant_index % len(kernels)]
        command = self.system.driver.launch_kernel(
            self._contexts[request.tenant], kernel_spec, priority=request.priority
        )
        self._inflight += 1
        if self.system.telemetry is not None:
            self.system.telemetry.on_request_admitted(request, now)
        command.subscribe_completion(
            lambda done_us, request=request: self._on_complete(request, done_us)
        )

    def _on_complete(self, request: Request, now: float) -> None:
        request.complete_us = now
        self._inflight -= 1
        if self.system.telemetry is not None:
            self.system.telemetry.on_request_completed(request, now)
        self._completions.append(
            {
                "request_id": request.request_id,
                "tenant": request.tenant,
                "arrival_us": request.arrival_us,
                "admit_us": request.admit_us,
                "complete_us": now,
            }
        )
        self._dispatch()


def execute_epoch(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one GPU's epoch batch to idle; pure data in, pure data out."""
    return _EpochRun(payload).run()


__all__ = ["execute_epoch", "make_epoch_payload"]
