"""Parsed, validated form of ``ScenarioSpec.cluster`` (the fleet section).

A scenario becomes a multi-GPU fleet run by adding a ``cluster=`` mapping
next to its ``arrivals=`` section::

    ScenarioSpec(
        ...,
        arrivals={"horizon_us": 100_000.0, ...},
        cluster={"num_gpus": 4, "router": "least_loaded",
                 "epoch_us": 5_000.0},
    )

``num_gpus`` sizes the fleet, ``router`` names the placement policy
(resolved through :data:`repro.registry.ROUTERS`, aliases accepted) with
``router_options`` passed to its factory, and ``epoch_us`` sets the
submission/completion sync interval (default: an eighth of the horizon).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.registry import ROUTERS
from repro.scenario import ScenarioSpec

#: Keys accepted in ``ScenarioSpec.cluster`` (everything else is rejected,
#: mirroring the arrivals/scenario loaders' unknown-key policy).
_CLUSTER_KEYS = frozenset({"num_gpus", "router", "router_options", "epoch_us"})


@dataclass
class ClusterSpec:
    """One fleet: member count, routing policy and sync-epoch length."""

    #: Number of member GPUs.
    num_gpus: int
    #: Canonical router name (resolved through ``ROUTERS``).
    router: str
    #: Keyword options for the router factory (e.g. ``spill_margin``).
    router_options: Dict[str, Any]
    #: Length of one submission/completion epoch (µs) — the only points at
    #: which member GPUs synchronise with the cluster queue.
    epoch_us: float

    @classmethod
    def from_scenario(cls, scenario: ScenarioSpec) -> "ClusterSpec":
        """Parse/validate the scenario's ``cluster=`` section.

        Unknown router names raise
        :class:`~repro.registry.UnknownComponentError` (with close-match
        suggestions), like every other registry lookup.
        """
        cluster = scenario.cluster
        if cluster is None:
            raise ValueError("scenario has no cluster= section (single-GPU)")
        if scenario.arrivals is None:
            raise ValueError("cluster= fleets require an arrivals= section")
        unknown = set(cluster) - _CLUSTER_KEYS
        if unknown:
            raise ValueError(
                f"unknown cluster keys: {sorted(unknown)} "
                f"(accepted: {sorted(_CLUSTER_KEYS)})"
            )
        num_gpus = int(cluster.get("num_gpus", 1))
        if num_gpus < 1:
            raise ValueError("num_gpus must be at least 1")
        router = ROUTERS.canonical_name(str(cluster.get("router", "round_robin")))
        horizon_us = float(scenario.arrivals["horizon_us"])
        epoch_us = float(cluster.get("epoch_us", horizon_us / 8.0))
        if epoch_us <= 0:
            raise ValueError("epoch_us must be positive")
        return cls(
            num_gpus=num_gpus,
            router=router,
            router_options=dict(cluster.get("router_options", {})),
            epoch_us=epoch_us,
        )

    def build_router(self):
        """Instantiate the routing policy."""
        return ROUTERS.create(self.router, **dict(self.router_options))


__all__ = ["ClusterSpec"]
