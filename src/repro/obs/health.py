"""Heartbeat/health reporting for long serving runs.

A :class:`HealthReporter` subscribes to a hub's snapshot rows
(:meth:`~repro.obs.hub.MetricsHub.add_row_listener`) and emits one
human-readable line per row: simulated progress against the horizon,
offered-vs-served request counts and rate, a wall-clock ETA extrapolated
from progress so far, and the age of the last checkpoint.  Lines go to
stderr (or any stream handed in) — never stdout, which must stay
byte-identical with metrics off.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Mapping, Optional, TextIO


class HealthReporter:
    """Render per-snapshot heartbeat lines for an open-loop serving run."""

    def __init__(
        self,
        *,
        horizon_us: float,
        stream: Optional[TextIO] = None,
        clock=time.perf_counter,
    ):
        if horizon_us <= 0:
            raise ValueError(f"horizon_us must be positive (got {horizon_us})")
        self.horizon_us = float(horizon_us)
        self.stream = stream
        self._clock = clock
        self._wall_start = clock()
        self._last_checkpoint_us: Optional[float] = None
        self.lines_emitted = 0

    def note_checkpoint(self, sim_us: float) -> None:
        """Record that a checkpoint was cut at simulation time ``sim_us``."""
        self._last_checkpoint_us = float(sim_us)

    # ------------------------------------------------------------------
    # Row listener
    # ------------------------------------------------------------------
    def heartbeat(self, row: Mapping[str, Any]) -> str:
        """Render (and write, if a stream is attached) one heartbeat line."""
        line = self.render(row)
        stream = self.stream if self.stream is not None else sys.stderr
        stream.write(line + "\n")
        self.lines_emitted += 1
        return line

    def render(self, row: Mapping[str, Any]) -> str:
        t_us = float(row["t_us"])
        metrics = row.get("metrics", {})
        offered = metrics.get("serving.arrived", 0)
        served = metrics.get("serving.completed", 0)
        progress = min(1.0, t_us / self.horizon_us)
        wall_s = self._clock() - self._wall_start
        if 0.0 < progress < 1.0:
            eta = f"{wall_s * (1.0 - progress) / progress:.1f}s"
        elif progress >= 1.0:
            eta = "0.0s"
        else:
            eta = "?"
        served_rate = served / t_us * 1e6 if t_us > 0 else 0.0
        parts = [
            f"health: t={t_us:g}us ({progress:.0%} of horizon)",
            f"offered={offered:g} served={served:g} ({served_rate:,.0f} req/s)",
            f"wall={wall_s:.1f}s eta={eta}",
        ]
        if self._last_checkpoint_us is not None:
            parts.append(f"ckpt_age={max(0.0, t_us - self._last_checkpoint_us):g}us")
        return " ".join(parts)


__all__ = ["HealthReporter"]
