"""Per-layer read-only samplers feeding a :class:`~repro.obs.hub.MetricsHub`.

Each ``attach_*`` function pre-binds the metrics it owns and registers one
closure on the hub; the closure copies live state into the registry right
before a snapshot row is cut.  Samplers are strictly read-only: they pull
from counters and trackers the simulation already maintains
(:class:`~repro.sim.engine.Simulator` bookkeeping, the execution engine's
:class:`~repro.sim.stats.StatRegistry`, serving queue counters), so enabling
metrics cannot perturb a run.
"""

from __future__ import annotations

from repro.obs.hub import MetricsHub


def attach_engine_metrics(hub: MetricsHub, simulator) -> None:
    """Mirror the event-loop bookkeeping (heap depth, compactions, counts)."""
    registry = hub.registry
    pending = registry.gauge("engine.pending_events")
    heap_entries = registry.gauge("engine.heap_entries")
    peak_heap = registry.gauge("engine.peak_heap_entries")
    processed = registry.counter("engine.events_processed")
    scheduled = registry.counter("engine.events_scheduled")
    cancelled = registry.counter("engine.events_cancelled")
    compactions = registry.counter("engine.heap_compactions")

    def sample(now_us: float) -> None:
        pending.set(simulator.pending_events)
        heap_entries.set(len(simulator.queue))
        peak_heap.set(simulator.peak_heap_entries)
        processed.set(simulator.events_processed)
        scheduled.set(simulator.events_scheduled)
        cancelled.set(simulator.events_cancelled)
        compactions.set(simulator.compactions)

    hub.add_sampler(sample)


def attach_gpu_metrics(hub: MetricsHub, system) -> None:
    """Mirror SM utilisation and the execution engine's stat registry.

    Covers per-SM busy fraction (mean/min/max over SMs), block accounting,
    and the per-mechanism preemption counters (``preemptions_via.*`` — the
    controller's per-request mechanism choices) the engine already keeps.
    """
    registry = hub.registry
    engine = system.execution_engine
    sms = engine.sms()
    busy_mean = registry.gauge("gpu.sm_busy_fraction.mean")
    busy_min = registry.gauge("gpu.sm_busy_fraction.min")
    busy_max = registry.gauge("gpu.sm_busy_fraction.max")
    blocks_executed = registry.counter("gpu.blocks_executed")
    blocks_preempted = registry.counter("gpu.blocks_preempted")
    wave_events = registry.counter("gpu.completion_waves_fired")

    def sample(now_us: float) -> None:
        fractions = [sm.busy_fraction(now_us) for sm in sms]
        if fractions:
            busy_mean.set(sum(fractions) / len(fractions))
            busy_min.set(min(fractions))
            busy_max.set(max(fractions))
        blocks_executed.set(sum(sm.blocks_executed for sm in sms))
        blocks_preempted.set(sum(sm.blocks_preempted for sm in sms))
        wave_events.set(sum(sm.completion_waves_fired for sm in sms))
        for name, value in engine.stats.snapshot().items():
            registry.counter(f"gpu.{name}").set(value)

    hub.add_sampler(sample)


def attach_serving_metrics(hub: MetricsHub, driver) -> None:
    """Mirror the admission queue and the streaming serving metrics.

    Queue depth / admission outcomes come from :class:`repro.serving.queue.
    QueueCounters`; completion and per-tenant SLO-violation counts from the
    driver's :class:`~repro.serving.metrics.ServingMetrics`.
    """
    registry = hub.registry
    depth = registry.gauge("serving.queue_depth")
    inflight = registry.gauge("serving.inflight")
    arrived = registry.counter("serving.arrived")
    admitted = registry.counter("serving.admitted")
    dropped = registry.counter("serving.dropped")
    backpressure = registry.counter("serving.backpressure_events")
    peak_depth = registry.gauge("serving.peak_queue_depth")
    completed = registry.counter("serving.completed")

    def sample(now_us: float) -> None:
        counters = driver.queue.counters
        depth.set(len(driver.queue))
        inflight.set(driver._inflight)
        arrived.set(counters.arrived)
        admitted.set(counters.admitted)
        dropped.set(counters.dropped)
        backpressure.set(counters.backpressure_events)
        peak_depth.set(counters.peak_depth)
        completed.set(driver.metrics.completed)
        for tenant, count in driver.metrics.slo_violations.items():
            registry.counter(f"serving.slo_violations.{tenant}").set(count)
        for tenant, count in counters.per_tenant_admitted.items():
            registry.counter(f"serving.tenant.{tenant}.admitted").set(count)

    hub.add_sampler(sample)


def attach_fleet_metrics(hub: MetricsHub, fleet) -> None:
    """Mirror per-GPU load and router decisions of a multi-GPU fleet.

    The fleet is epoch-driven (members execute in worker processes), so the
    fleet calls :meth:`~repro.obs.hub.MetricsHub.emit_row` itself at each
    epoch boundary; this sampler only mirrors the per-member views the
    router maintains centrally.
    """
    registry = hub.registry
    fleet_depth = registry.gauge("cluster.queue_depth")
    fleet_assigned = registry.counter("cluster.assigned")
    fleet_completed = registry.counter("cluster.completed")

    def sample(now_us: float) -> None:
        fleet_depth.set(len(fleet.queue))
        total_assigned = 0
        total_completed = 0
        for member in fleet._members:
            view = member.view
            total_assigned += view.assigned
            total_completed += view.completed
            prefix = f"cluster.gpu{view.gpu_id}"
            registry.counter(f"{prefix}.assigned").set(view.assigned)
            registry.counter(f"{prefix}.completed").set(view.completed)
            registry.counter(f"{prefix}.launches").set(member.launches)
            registry.counter(f"{prefix}.events_processed").set(member.events_processed)
            for tenant, count in view.tenant_assigned.items():
                registry.counter(f"{prefix}.tenant.{tenant}.assigned").set(count)
        fleet_assigned.set(total_assigned)
        fleet_completed.set(total_completed)

    hub.add_sampler(sample)


__all__ = [
    "attach_engine_metrics",
    "attach_gpu_metrics",
    "attach_serving_metrics",
    "attach_fleet_metrics",
]
