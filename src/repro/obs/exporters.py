"""Snapshot exporters: JSONL time series, Prometheus text, ASCII dashboard.

Exporters are registry-pluggable (:data:`repro.registry.EXPORTERS`) so
downstream tooling can add its own formats::

    from repro.registry import EXPORTERS
    exporter = EXPORTERS.create("jsonl", path="run.metrics.jsonl")
    exporter.export(hub)

All three built-ins consume the same inputs — the hub's ``meta`` mapping and
its list of snapshot rows — and are deterministic: the same rows always
produce the same bytes (the serial-vs-parallel JSONL identity in
``tests/obs/test_determinism.py`` depends on this, so keep ``sort_keys`` and
the fixed separators).
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Optional, Sequence, TextIO

from repro.registry import register_exporter

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_]")

#: Ten-level ASCII ramp used for dashboard sparklines (pure ASCII on purpose:
#: the dashboard must survive dumb terminals and CI logs).
_SPARK_RAMP = " .:-=+*#%@"


def _dumps(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# JSONL time series
# ----------------------------------------------------------------------
def render_jsonl(rows: Sequence[Mapping[str, Any]], *, meta: Optional[Mapping[str, Any]] = None) -> str:
    """One meta line followed by one line per snapshot row."""
    lines = [_dumps({"meta": dict(meta or {})})]
    lines.extend(_dumps(row) for row in rows)
    return "\n".join(lines) + "\n"


def write_jsonl(
    rows: Sequence[Mapping[str, Any]],
    path: str,
    *,
    meta: Optional[Mapping[str, Any]] = None,
) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_jsonl(rows, meta=meta))
    return path


def read_jsonl(path: str) -> Dict[str, Any]:
    """Parse a written series back into ``{"meta": ..., "rows": [...]}``."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    if not lines or "meta" not in lines[0]:
        raise ValueError(f"{path}: not a metrics JSONL series")
    return {"meta": lines[0]["meta"], "rows": lines[1:]}


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def prometheus_name(name: str) -> str:
    """A metric name sanitised to the Prometheus grammar, ``repro_``-prefixed."""
    return "repro_" + _PROM_NAME.sub("_", name)


def render_prometheus(registry, *, meta: Optional[Mapping[str, Any]] = None) -> str:
    """Prometheus text exposition (format 0.0.4) of a registry's last values.

    Histograms are flattened to ``_count``/``_sum`` plus cumulative
    ``_bucket{le=...}`` samples, matching native Prometheus histograms.
    """
    lines: List[str] = []
    for key, value in sorted((meta or {}).items()):
        lines.append(f"# META {key} {value}")
    for name, metric in sorted(registry.metrics().items()):
        prom = prometheus_name(name)
        if metric.kind == "histogram":
            lines.append(f"# TYPE {prom} histogram")
            cumulative = metric.zero_count
            if metric.zero_count:
                lines.append(f'{prom}_bucket{{le="0"}} {cumulative}')
            for index in sorted(metric._buckets):
                cumulative += metric._buckets[index]
                upper = metric.growth ** index
                lines.append(f'{prom}_bucket{{le="{upper:g}"}} {cumulative}')
            lines.append(f'{prom}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{prom}_sum {metric.total:g}")
            lines.append(f"{prom}_count {metric.count}")
        else:
            lines.append(f"# TYPE {prom} {metric.kind}")
            lines.append(f"{prom} {metric.value:g}")
    return "\n".join(lines) + "\n"


def write_prometheus(registry, path: str, *, meta: Optional[Mapping[str, Any]] = None) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_prometheus(registry, meta=meta))
    return path


# ----------------------------------------------------------------------
# ASCII dashboard
# ----------------------------------------------------------------------
def _sparkline(values: Sequence[float], width: int) -> str:
    """Resample ``values`` to ``width`` columns on the ASCII ramp."""
    if not values:
        return " " * width
    if len(values) > width:
        # Nearest-sample resampling keeps the line deterministic.
        step = len(values) / width
        values = [values[min(len(values) - 1, int(i * step))] for i in range(width)]
    low, high = min(values), max(values)
    span = high - low
    ramp_top = len(_SPARK_RAMP) - 1
    cells = []
    for value in values:
        level = ramp_top if span == 0 else int((value - low) / span * ramp_top)
        cells.append(_SPARK_RAMP[level])
    return "".join(cells).ljust(width)


def render_dashboard(
    rows: Sequence[Mapping[str, Any]],
    *,
    meta: Optional[Mapping[str, Any]] = None,
    series: Optional[Sequence[str]] = None,
    width: int = 40,
    max_series: int = 24,
) -> str:
    """An ASCII dashboard: one sparkline per metric series over the run.

    ``series`` selects metric names explicitly; by default every series that
    *changes* over the rows is shown (constant series carry no shape), capped
    at ``max_series`` with a trailing note so truncation is never silent.
    """
    if not rows:
        return "(no snapshot rows)\n"
    names = sorted({name for row in rows for name in row.get("metrics", {})})
    if series is not None:
        selected = [name for name in series if name in names]
    else:
        selected = []
        for name in names:
            values = [row["metrics"].get(name) for row in rows]
            numeric = [v for v in values if isinstance(v, (int, float))]
            if numeric and (len(set(numeric)) > 1 or len(rows) == 1):
                selected.append(name)
    dropped = 0
    if len(selected) > max_series:
        dropped = len(selected) - max_series
        selected = selected[:max_series]
    label_width = max((len(name) for name in selected), default=0)
    t0, t1 = rows[0]["t_us"], rows[-1]["t_us"]
    lines = []
    title = " ".join(f"{key}={value}" for key, value in sorted((meta or {}).items()))
    if title:
        lines.append(title)
    lines.append(
        f"{len(rows)} snapshot(s) over t=[{t0:g}, {t1:g}] us; ramp '{_SPARK_RAMP}'"
    )
    for name in selected:
        values = [
            row["metrics"][name]
            for row in rows
            if isinstance(row["metrics"].get(name), (int, float))
        ]
        last = values[-1] if values else float("nan")
        lines.append(
            f"{name.ljust(label_width)} |{_sparkline(values, width)}| last={last:g}"
        )
    if dropped:
        lines.append(f"... {dropped} more series not shown (pass series= to select)")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Registry-pluggable exporter objects
# ----------------------------------------------------------------------
@register_exporter("jsonl")
class JSONLExporter:
    """Write the hub's snapshot rows as a JSONL time series."""

    name = "jsonl"

    def __init__(self, *, path: str):
        self.path = path

    def export(self, hub) -> str:
        return write_jsonl(hub.rows, self.path, meta=hub.meta)


@register_exporter("prometheus", "prom")
class PrometheusExporter:
    """Write the registry's latest values in Prometheus text exposition."""

    name = "prometheus"

    def __init__(self, *, path: str):
        self.path = path

    def export(self, hub) -> str:
        return write_prometheus(hub.registry, self.path, meta=hub.meta)


@register_exporter("dashboard", "ascii")
class DashboardExporter:
    """Render the ASCII dashboard (to a stream, or return the text)."""

    name = "dashboard"

    def __init__(self, *, stream: Optional[TextIO] = None, width: int = 40):
        self.stream = stream
        self.width = width

    def export(self, hub) -> str:
        text = render_dashboard(hub.rows, meta=hub.meta, width=self.width)
        if self.stream is not None:
            self.stream.write(text)
        return text


__all__ = [
    "JSONLExporter",
    "PrometheusExporter",
    "DashboardExporter",
    "render_jsonl",
    "write_jsonl",
    "read_jsonl",
    "render_prometheus",
    "write_prometheus",
    "prometheus_name",
    "render_dashboard",
]
