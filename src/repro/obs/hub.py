"""The metrics hub: per-event-kind counting and sim-time-aligned snapshots.

One :class:`MetricsHub` owns a :class:`~repro.obs.metrics.MetricsRegistry`
plus the machinery that turns it into a time series:

* :meth:`on_event` is the engine probe.  :class:`repro.sim.engine.Simulator`
  calls it for every fired event through a None-gated attribute (so the cost
  with metrics off is one attribute load).  It counts events per *kind*
  (labels with digit runs collapsed, keeping cardinality O(kinds) no matter
  how many SMs/blocks/requests a run has) and checks whether a snapshot
  boundary has been crossed.
* Snapshot rows are emitted at simulation times that are exact multiples of
  ``interval_us``.  Because row emission is a pure function of the event
  stream (fire times and labels), serial and parallel runs of the same
  scenario produce byte-identical JSONL (``tests/obs/test_determinism.py``).
* *Samplers* are read-only callbacks registered by each layer (engine, GPU,
  serving, cluster) that copy live state into the registry right before a
  row is cut.  Samplers must never mutate simulation state — the same
  contract as engine observers — which is what keeps results byte-identical
  with metrics on or off.
* :meth:`state`/:meth:`restore` round-trip the hub (registry, per-kind
  counts, boundary cursor, rows so far) through JSON, so serving
  checkpoint/resume carries metrics across segments.

The hub deliberately schedules **no events** and installs **no observers**:
wave joining in :mod:`repro.gpu.sm` relies on event-sequence contiguity and
on the no-observer batch fast path, so the metrics layer rides entirely on
pre-existing hooks.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

#: Default snapshot cadence (µs of simulation time).
DEFAULT_INTERVAL_US = 1000.0

#: Raw-label -> kind cache bound; labels beyond this are normalized per call.
_KIND_CACHE_LIMIT = 4096

_DIGIT_RUNS = re.compile(r"[0-9]+")

#: Keys accepted in a ``ScenarioSpec.metrics`` mapping.
_METRICS_KEYS = frozenset({"interval_us", "heartbeat", "histogram_growth"})


def normalize_label(label: str) -> str:
    """Collapse digit runs so per-instance labels share one metric kind.

    ``sm12.wave34.complete`` -> ``smN.waveN.complete``;
    ``serving.arrival.lbm#0`` -> ``serving.arrival.lbm#N``.
    """
    if not label:
        return "unlabeled"
    return _DIGIT_RUNS.sub("N", label)


def resolve_metrics_spec(spec: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """Validate and default a ``ScenarioSpec.metrics`` mapping.

    ``None``/``False`` mean *off* (callers guard before resolving); ``True``
    and ``{}`` mean *on with defaults*.  Unknown keys are rejected the same
    way :class:`repro.serving.ServingSpec` rejects unknown ``arrivals=`` keys.
    """
    if spec is None or spec is True:
        spec = {}
    unknown = set(spec) - _METRICS_KEYS
    if unknown:
        raise ValueError(f"unknown metrics keys: {sorted(unknown)}")
    interval_us = float(spec.get("interval_us", DEFAULT_INTERVAL_US))
    if interval_us <= 0:
        raise ValueError(f"metrics interval_us must be positive (got {interval_us})")
    growth = float(spec.get("histogram_growth", 2.0))
    return {
        "interval_us": interval_us,
        "heartbeat": bool(spec.get("heartbeat", False)),
        "histogram_growth": growth,
    }


class MetricsHub:
    """Registry + per-kind event counts + aligned snapshot rows."""

    def __init__(
        self,
        *,
        interval_us: float = DEFAULT_INTERVAL_US,
        start_us: float = 0.0,
        histogram_growth: float = 2.0,
    ):
        if interval_us <= 0:
            raise ValueError(f"interval_us must be positive (got {interval_us})")
        self.registry = MetricsRegistry()
        self.interval_us = float(interval_us)
        self.histogram_growth = float(histogram_growth)
        #: Static run description written by exporters (scheme, scale, ...).
        self.meta: Dict[str, Any] = {}
        #: Normalized event kind -> fired count.
        self.event_counts: Dict[str, int] = {}
        self._kind_cache: Dict[str, str] = {}
        #: Next snapshot boundary: the first multiple of ``interval_us``
        #: strictly after ``start_us`` (boundaries are globally aligned, so a
        #: resumed segment continues the same grid).
        self._next_due = (math.floor(float(start_us) / self.interval_us) + 1) * self.interval_us
        #: Emitted snapshot rows (JSON-native dicts, ascending ``t_us``).
        self.rows: List[Dict[str, Any]] = []
        self._samplers: List[Callable[[float], None]] = []
        self._row_listeners: List[Callable[[Dict[str, Any]], None]] = []

    @classmethod
    def from_spec(
        cls, spec: Optional[Mapping[str, Any]], *, start_us: float = 0.0
    ) -> "MetricsHub":
        resolved = resolve_metrics_spec(spec)
        return cls(
            interval_us=resolved["interval_us"],
            start_us=start_us,
            histogram_growth=resolved["histogram_growth"],
        )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_sampler(self, sampler: Callable[[float], None]) -> None:
        """Register a read-only callback run right before each row is cut."""
        self._samplers.append(sampler)

    def add_row_listener(self, listener: Callable[[Dict[str, Any]], None]) -> None:
        """Register a callback invoked with each emitted row (heartbeats)."""
        self._row_listeners.append(listener)

    # ------------------------------------------------------------------
    # Engine probe (hot path)
    # ------------------------------------------------------------------
    def on_event(self, time_us: float, label: str) -> None:
        """Count one fired event; cut snapshot rows for crossed boundaries."""
        cache = self._kind_cache
        kind = cache.get(label)
        if kind is None:
            kind = normalize_label(label)
            if len(cache) < _KIND_CACHE_LIMIT:
                cache[label] = kind
        counts = self.event_counts
        counts[kind] = counts.get(kind, 0) + 1
        if time_us >= self._next_due:
            # Emit one row at the *latest* boundary <= time_us; sparse event
            # streams thus produce sparse rows rather than a backlog of
            # identical ones.
            boundary = math.floor(time_us / self.interval_us) * self.interval_us
            self.emit_row(boundary)
            self._next_due = boundary + self.interval_us

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def sample(self, now_us: float) -> None:
        """Run every sampler and mirror per-kind counts into the registry."""
        for sampler in self._samplers:
            sampler(now_us)
        registry_counter = self.registry.counter
        for kind, count in self.event_counts.items():
            registry_counter(f"engine.events.{kind}").set(count)

    def emit_row(self, t_us: float) -> Dict[str, Any]:
        """Cut one snapshot row at simulation time ``t_us``."""
        self.sample(t_us)
        row = {"t_us": t_us, "metrics": self.registry.snapshot()}
        self.rows.append(row)
        for listener in self._row_listeners:
            listener(row)
        return row

    def finalize(self, now_us: float) -> None:
        """Cut the final row at run end (skipped if a row already covers it)."""
        if not self.rows or self.rows[-1]["t_us"] < now_us:
            self.emit_row(now_us)

    # ------------------------------------------------------------------
    # Checkpoint round-trip
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """JSON-native hub state for checkpoints."""
        return {
            "interval_us": self.interval_us,
            "next_due_us": self._next_due,
            "event_counts": dict(sorted(self.event_counts.items())),
            "registry": self.registry.state(),
            "rows": list(self.rows),
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        """Resume from :meth:`state` output (merging into existing metrics)."""
        self.interval_us = float(state["interval_us"])
        self._next_due = float(state["next_due_us"])
        self.event_counts = dict(state["event_counts"])
        self.registry.restore(state["registry"])
        self.rows = [dict(row) for row in state["rows"]]


__all__ = [
    "MetricsHub",
    "DEFAULT_INTERVAL_US",
    "normalize_label",
    "resolve_metrics_spec",
]
