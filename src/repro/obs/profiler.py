"""Wall-clock self-profiling: per-event-kind and per-phase attribution.

Two complementary profilers replace the old single-line ``--profile``:

* :class:`EventLoopProfiler` hooks the engine's hot loop (the None-gated
  ``Simulator.profiler`` attribute) and attributes wall-clock callback time
  per normalized event kind — "where does the time go *inside* a run".
* :class:`PhaseProfiler` wraps coarse phases (one experiment, cache
  collection) with a context manager and renders the multi-line report the
  CLI prints to stderr — "where does the time go *across* a run".

Profiling only measures; it never touches simulation state, so results stay
byte-identical with profiling on or off (wall-clock readings go to stderr
exclusively).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.obs.hub import normalize_label

_KIND_CACHE_LIMIT = 4096


class EventLoopProfiler:
    """Attribute event-callback wall time per normalized event kind."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self.kind_wall_s: Dict[str, float] = {}
        self.kind_count: Dict[str, int] = {}
        self._kind_cache: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Hot path (called by Simulator._fire when attached)
    # ------------------------------------------------------------------
    def record(self, label: str, callback) -> None:
        clock = self._clock
        start = clock()
        try:
            callback()
        finally:
            elapsed = clock() - start
            cache = self._kind_cache
            kind = cache.get(label)
            if kind is None:
                kind = normalize_label(label)
                if len(cache) < _KIND_CACHE_LIMIT:
                    cache[label] = kind
            self.kind_wall_s[kind] = self.kind_wall_s.get(kind, 0.0) + elapsed
            self.kind_count[kind] = self.kind_count.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, simulator) -> "EventLoopProfiler":
        """Install on a simulator (one profiler per engine at a time)."""
        if simulator.profiler is not None:
            raise ValueError("a profiler is already attached to this simulator")
        simulator.profiler = self
        return self

    def detach(self, simulator) -> None:
        if simulator.profiler is self:
            simulator.profiler = None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def total_wall_s(self) -> float:
        return sum(self.kind_wall_s.values())

    @property
    def total_events(self) -> int:
        return sum(self.kind_count.values())

    def top(self, count: int = 10) -> List[Tuple[str, float, int]]:
        """The ``count`` hottest kinds as ``(kind, wall_s, events)``."""
        ranked = sorted(
            self.kind_wall_s.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            (kind, wall, self.kind_count[kind]) for kind, wall in ranked[:count]
        ]

    def format(self, count: int = 10) -> str:
        """Multi-line per-kind report (stderr material)."""
        total = self.total_wall_s
        lines = [
            f"profile: event kinds: {len(self.kind_wall_s)}, "
            f"callback wall {total:.3f} s over {self.total_events} event(s)"
        ]
        for kind, wall, events in self.top(count):
            share = wall / total if total else 0.0
            lines.append(
                f"profile:   {kind}: {wall:.3f} s ({share:.1%}), {events} event(s)"
            )
        return "\n".join(lines)


class Phase:
    """One timed phase: name, wall seconds, and an attributable event count."""

    __slots__ = ("name", "wall_s", "events")

    def __init__(self, name: str):
        self.name = name
        self.wall_s = 0.0
        self.events = 0


class PhaseProfiler:
    """Coarse-grained wall-clock attribution across named phases."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._start = clock()
        self.phases: List[Phase] = []

    @contextmanager
    def phase(self, name: str):
        """Time one phase; set ``.events`` on the yielded record if known."""
        record = Phase(name)
        self.phases.append(record)
        start = self._clock()
        try:
            yield record
        finally:
            record.wall_s = self._clock() - start

    @property
    def wall_s(self) -> float:
        return self._clock() - self._start

    @property
    def events(self) -> int:
        return sum(phase.events for phase in self.phases)

    def format(self, *, total_events: Optional[int] = None) -> str:
        """The multi-line ``--profile`` report.

        The first line keeps the legacy single-line shape (wall, events,
        events/s) so existing log scrapers survive; phase lines follow.
        """
        wall = self.wall_s
        events = self.events if total_events is None else total_events
        rate = events / wall if wall > 0 else 0.0
        lines = [
            f"profile: wall {wall:.2f} s, {events} event(s) processed, "
            f"{rate:,.0f} events/s"
        ]
        for phase in self.phases:
            share = phase.wall_s / wall if wall > 0 else 0.0
            detail = f"profile:   phase {phase.name}: {phase.wall_s:.2f} s ({share:.1%})"
            if phase.events:
                phase_rate = phase.events / phase.wall_s if phase.wall_s > 0 else 0.0
                detail += f", {phase.events} event(s), {phase_rate:,.0f} events/s"
            lines.append(detail)
        return "\n".join(lines)


__all__ = ["EventLoopProfiler", "PhaseProfiler", "Phase"]
