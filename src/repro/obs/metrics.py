"""O(1)-memory metric primitives: counters, gauges, log-bucketed histograms.

Every metric is a plain ``__slots__`` object holding JSON-native numbers, so
a :class:`MetricsRegistry` can ``state()``/``restore()`` itself through the
same JSON round-trip the serving checkpoints use (see
:meth:`repro.serving.driver.ServingDriver.checkpoint`).  Nothing here touches
the simulation: metrics only *record* values handed to them, which is what
keeps runs byte-identical with observability on or off.

The histogram uses geometric (log-spaced) buckets so that a stream of any
length is summarised in a handful of integers per decade of dynamic range.
Quantile estimates return the upper edge of the bucket holding the exact
nearest-rank sample, so the estimate is always within one bucket width of the
true value (``tests/obs/test_metrics_registry.py`` property-checks this with
hypothesis).
"""

from __future__ import annotations

import math

from typing import Any, Dict, Iterable, Mapping, Optional, Tuple


class MetricTypeError(TypeError):
    """Raised when a registry name is reused with a different metric type."""


class CounterMetric:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str, value: float = 0):
        self.name = name
        self.value = value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def set(self, value: float) -> None:
        """Set an absolute value (used when mirroring an external counter)."""
        self.value = value

    def state(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def restore(self, state: Mapping[str, Any]) -> None:
        self.value = state["value"]

    def snapshot_items(self) -> Iterable[Tuple[str, float]]:
        yield self.name, self.value


class GaugeMetric:
    """A point-in-time value (queue depth, busy fraction, heap size...)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str, value: float = 0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def state(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def restore(self, state: Mapping[str, Any]) -> None:
        self.value = state["value"]

    def snapshot_items(self) -> Iterable[Tuple[str, float]]:
        yield self.name, self.value


class LogHistogram:
    """A log-bucketed histogram over non-negative samples.

    A positive sample ``v`` lands in the bucket with integer index ``i`` such
    that ``growth**(i-1) < v <= growth**i``; zeros are counted separately.
    Memory is O(log(max/min)) regardless of stream length.  The bucket index
    is computed from ``math.log`` and then *corrected* by comparison against
    the exact power, so float rounding can never misplace a sample.
    """

    __slots__ = (
        "name",
        "growth",
        "count",
        "total",
        "zero_count",
        "min_value",
        "max_value",
        "_buckets",
    )

    kind = "histogram"

    #: Quantiles expanded into registry snapshots.
    SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99)

    def __init__(self, name: str, growth: float = 2.0):
        if not growth > 1.0:
            raise ValueError(f"histogram growth must be > 1 (got {growth})")
        self.name = name
        self.growth = float(growth)
        self.count = 0
        self.total = 0.0
        self.zero_count = 0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        #: bucket index -> sample count (sparse; only touched buckets exist).
        self._buckets: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0:
            raise ValueError(f"histogram {self.name!r} takes non-negative samples")
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if value == 0.0:
            self.zero_count += 1
            return
        index = self.bucket_index(value)
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + 1

    def bucket_index(self, value: float) -> int:
        """Index ``i`` with ``growth**(i-1) < value <= growth**i`` (value > 0)."""
        index = math.ceil(math.log(value) / math.log(self.growth))
        # log() rounding can land one bucket off either way; fix by comparing
        # against the exact powers.
        while self.growth ** index < value:
            index += 1
        while self.growth ** (index - 1) >= value:
            index -= 1
        return index

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """(exclusive lower, inclusive upper) edges of bucket ``index``."""
        return self.growth ** (index - 1), self.growth ** index

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile estimate (bucket upper edge; 0.0 for zeros).

        Returns ``None`` on an empty histogram.  The estimate is the upper
        edge of the bucket containing the exact nearest-rank sample, so it
        never undershoots and overshoots by at most one bucket width.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1] (got {q})")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zero_count:
            return 0.0
        cumulative = self.zero_count
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                return self.growth ** index
        return self.growth ** max(self._buckets)  # pragma: no cover - defensive

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "growth": self.growth,
            "count": self.count,
            "total": self.total,
            "zero_count": self.zero_count,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "buckets": {str(index): count for index, count in sorted(self._buckets.items())},
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        self.growth = float(state["growth"])
        self.count = state["count"]
        self.total = state["total"]
        self.zero_count = state["zero_count"]
        self.min_value = state["min_value"]
        self.max_value = state["max_value"]
        self._buckets = {int(index): count for index, count in state["buckets"].items()}

    def snapshot_items(self) -> Iterable[Tuple[str, float]]:
        yield f"{self.name}.count", self.count
        yield f"{self.name}.sum", self.total
        if self.count:
            yield f"{self.name}.min", self.min_value
            yield f"{self.name}.max", self.max_value
            for q in self.SNAPSHOT_QUANTILES:
                yield f"{self.name}.p{int(q * 100)}", self.quantile(q)


_METRIC_TYPES = {
    CounterMetric.kind: CounterMetric,
    GaugeMetric.kind: GaugeMetric,
    LogHistogram.kind: LogHistogram,
}


class MetricsRegistry:
    """A flat, name-keyed registry of metrics.

    ``counter``/``gauge``/``histogram`` create-or-return metrics by name;
    reusing a name with a different type raises :class:`MetricTypeError`.
    :meth:`snapshot` flattens everything into one sorted ``{name: number}``
    mapping — the unit the snapshot exporters and the hub's time-series rows
    are built from — and :meth:`state`/:meth:`restore` round-trip the full
    registry through JSON for checkpoint/resume.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Creation / lookup
    # ------------------------------------------------------------------
    def _get(self, name: str, kind: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
            return metric
        if metric.kind != kind:
            raise MetricTypeError(
                f"metric {name!r} already registered as {metric.kind} (wanted {kind})"
            )
        return metric

    def counter(self, name: str) -> CounterMetric:
        return self._get(name, "counter", lambda: CounterMetric(name))

    def gauge(self, name: str) -> GaugeMetric:
        return self._get(name, "gauge", lambda: GaugeMetric(name))

    def histogram(self, name: str, growth: float = 2.0) -> LogHistogram:
        return self._get(name, "histogram", lambda: LogHistogram(name, growth))

    def get(self, name: str):
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def metrics(self) -> Dict[str, Any]:
        """Name -> metric mapping (insertion order)."""
        return dict(self._metrics)

    # ------------------------------------------------------------------
    # Snapshots / serialisation
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """All metric values flattened into one sorted mapping."""
        items: Dict[str, float] = {}
        for metric in self._metrics.values():
            for key, value in metric.snapshot_items():
                items[key] = value
        return dict(sorted(items.items()))

    def state(self) -> Dict[str, Any]:
        return {name: metric.state() for name, metric in sorted(self._metrics.items())}

    def restore(self, state: Mapping[str, Any]) -> None:
        """Rebuild metric values from :meth:`state` output (merging by name)."""
        for name, metric_state in state.items():
            kind = metric_state["kind"]
            metric_cls = _METRIC_TYPES.get(kind)
            if metric_cls is None:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
            metric = self._metrics.get(name)
            if metric is None:
                if metric_cls is LogHistogram:
                    metric = LogHistogram(name, float(metric_state["growth"]))
                else:
                    metric = metric_cls(name)
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise MetricTypeError(
                    f"cannot restore {kind} state into {metric.kind} metric {name!r}"
                )
            metric.restore(metric_state)


__all__ = [
    "CounterMetric",
    "GaugeMetric",
    "LogHistogram",
    "MetricsRegistry",
    "MetricTypeError",
]
