"""Unified runtime observability: metrics, snapshots, profiling, health.

The ``obs`` package gives every layer of the simulator an always-on,
O(1)-memory view of what a run is doing *while* it executes:

* :mod:`repro.obs.metrics` — counters, gauges and log-bucketed histograms in
  a checkpointable :class:`MetricsRegistry`.
* :mod:`repro.obs.hub` — the :class:`MetricsHub`: per-event-kind counting on
  the engine hot path plus sim-time-aligned snapshot rows.
* :mod:`repro.obs.samplers` — read-only per-layer samplers (engine, GPU,
  serving, cluster).
* :mod:`repro.obs.exporters` — JSONL time series, Prometheus text
  exposition and an ASCII dashboard (registry-pluggable via
  :data:`repro.registry.EXPORTERS`).
* :mod:`repro.obs.profiler` — wall-clock self-profiling per event kind and
  per phase (the multi-line ``--profile`` report).
* :mod:`repro.obs.health` — heartbeat lines for long serving runs.

Scenario opt-in is ``ScenarioSpec(metrics={...})`` (or ``--metrics`` on the
CLI); the hard contract is that simulation *results* are byte-identical with
observability on or off.
"""

from repro.obs.exporters import (
    DashboardExporter,
    JSONLExporter,
    PrometheusExporter,
    read_jsonl,
    render_dashboard,
    render_jsonl,
    render_prometheus,
    write_jsonl,
    write_prometheus,
)
from repro.obs.health import HealthReporter
from repro.obs.hub import (
    DEFAULT_INTERVAL_US,
    MetricsHub,
    normalize_label,
    resolve_metrics_spec,
)
from repro.obs.metrics import (
    CounterMetric,
    GaugeMetric,
    LogHistogram,
    MetricsRegistry,
    MetricTypeError,
)
from repro.obs.profiler import EventLoopProfiler, Phase, PhaseProfiler
from repro.obs.samplers import (
    attach_engine_metrics,
    attach_fleet_metrics,
    attach_gpu_metrics,
    attach_serving_metrics,
)

__all__ = [
    "CounterMetric",
    "GaugeMetric",
    "LogHistogram",
    "MetricsRegistry",
    "MetricTypeError",
    "MetricsHub",
    "DEFAULT_INTERVAL_US",
    "normalize_label",
    "resolve_metrics_spec",
    "attach_engine_metrics",
    "attach_gpu_metrics",
    "attach_serving_metrics",
    "attach_fleet_metrics",
    "JSONLExporter",
    "PrometheusExporter",
    "DashboardExporter",
    "render_jsonl",
    "write_jsonl",
    "read_jsonl",
    "render_prometheus",
    "write_prometheus",
    "render_dashboard",
    "HealthReporter",
    "EventLoopProfiler",
    "PhaseProfiler",
    "Phase",
]
