"""Open-loop serving layer: arrivals, admission, streaming SLO metrics.

See :mod:`repro.serving.driver` for the execution model and the
checkpoint/resume semantics.
"""

from repro.serving.arrivals import ArrivalProcess, make_arrival_process
from repro.serving.driver import (
    ServingDriver,
    ServingOutcome,
    ServingSpec,
    TenantSpec,
    run_serving,
)
from repro.serving.metrics import P2Quantile, ReservoirSampler, ServingMetrics
from repro.serving.queue import IngressQueue, QueueCounters, Request

__all__ = [
    "ArrivalProcess",
    "make_arrival_process",
    "ServingDriver",
    "ServingOutcome",
    "ServingSpec",
    "TenantSpec",
    "run_serving",
    "P2Quantile",
    "ReservoirSampler",
    "ServingMetrics",
    "IngressQueue",
    "QueueCounters",
    "Request",
]
