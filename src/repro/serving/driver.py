"""The open-loop serving driver: arrival streams → admission → GPU launches.

:class:`ServingDriver` executes one *segment* of an open-loop serving run on
a fresh :class:`~repro.system.GPUSystem`: per-tenant arrival processes
generate timed request events, requests pass through the bounded
:class:`~repro.serving.queue.IngressQueue`, and admitted requests launch one
kernel each (drawn round-robin from the tenant's application trace) with the
tenant's priority, which the GPU scheduling policy then arbitrates.
Completions feed the O(1)-memory :class:`~repro.serving.metrics.ServingMetrics`.

Checkpoint/resume uses *quiesce-at-idle* semantics: a segment asked to stop
near time ``b`` keeps running normally until the first instant at or after
``b`` when the serving layer is idle (admission queue empty, no in-flight
requests).  At such an instant the entire simulation state reduces to the
clock, the per-tenant arrival cursors, the admission counters and the metric
estimators — all JSON-serialisable — so a resumed run rebuilt from the
checkpoint is *byte-identical* to the unsplit run: the kernel launch-id
sequence is continued across segments (per-launch deterministic jitter is
keyed by launch id), contexts are recreated in the same order (same context
ids), and arrival gaps are key-addressed by request index, not RNG state.

Use :func:`run_serving` for whole runs (optionally split across checkpoint
bounds); it JSON-round-trips every checkpoint to prove serialisability.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.registry import ARRIVALS, POLICIES
from repro.scenario import ScenarioSpec
from repro.serving.arrivals import ArrivalProcess
from repro.serving.metrics import ServingMetrics
from repro.serving.queue import ADMISSION_POLICIES, IngressQueue, QueueCounters, Request
from repro.system import GPUSystem

#: Version tag of the checkpoint payload (bumped on incompatible changes).
CHECKPOINT_SCHEMA = 1
#: Version tag of the serving summary payload.
SUMMARY_SCHEMA = 1

#: Keys accepted in ``ScenarioSpec.arrivals`` (everything else is rejected,
#: mirroring the scenario JSON loader's unknown-key policy).
_ARRIVAL_KEYS = frozenset(
    {
        "horizon_us",
        "warmup_us",
        "queue_capacity",
        "admission",
        "max_inflight",
        "window_us",
        "reservoir_capacity",
        "metrics_seed",
        "tenants",
    }
)

#: Per-tenant keys consumed by the driver itself; every *other* key in a
#: tenant mapping is passed through as an arrival-process option.
_TENANT_DRIVER_KEYS = frozenset({"process", "seed", "priority", "slo_us"})


def _round3(value: float) -> float:
    return round(float(value), 3)


@dataclass
class TenantSpec:
    """One tenant: an application served by one arrival stream."""

    #: Process name (``app#slot``), also the tenant key in summaries.
    name: str
    #: Application whose trace supplies the request kernels.
    app: str
    #: Slot index in the scenario's application list.
    slot: int
    #: Canonical arrival-process name (resolved through ``ARRIVALS``).
    process: str
    #: Arrival-stream seed.
    seed: int
    #: Scheduling priority of the tenant's requests.
    priority: int
    #: Arrival-process options (rate, burstiness, ...).
    options: Dict[str, Any] = field(default_factory=dict)
    #: Latency budget (µs) for SLO-violation counting; ``None`` = no SLO.
    slo_us: Optional[float] = None


@dataclass
class ServingSpec:
    """Parsed, validated form of ``ScenarioSpec.arrivals`` + ``.slo``."""

    horizon_us: float
    warmup_us: float
    queue_capacity: int
    admission: str
    max_inflight: int
    window_us: float
    reservoir_capacity: int
    metrics_seed: int
    tenants: List[TenantSpec]

    @classmethod
    def from_scenario(cls, scenario: ScenarioSpec) -> "ServingSpec":
        """Parse/validate the scenario's serving configuration.

        Unknown arrival-process names raise
        :class:`~repro.registry.UnknownComponentError` (with close-match
        suggestions), like every other registry lookup.
        """
        arrivals = scenario.arrivals
        if arrivals is None:
            raise ValueError("scenario has no arrivals= section (closed-loop)")
        unknown = set(arrivals) - _ARRIVAL_KEYS
        if unknown:
            raise ValueError(
                f"unknown arrivals keys: {sorted(unknown)} "
                f"(accepted: {sorted(_ARRIVAL_KEYS)})"
            )
        if "horizon_us" not in arrivals:
            raise ValueError("arrivals requires horizon_us")
        horizon_us = float(arrivals["horizon_us"])
        if horizon_us <= 0:
            raise ValueError("horizon_us must be positive")
        warmup_us = float(arrivals.get("warmup_us", 0.0))
        if not 0.0 <= warmup_us < horizon_us:
            raise ValueError("warmup_us must be in [0, horizon_us)")
        admission = str(arrivals.get("admission", "drop"))
        if admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {admission!r} "
                f"(choose from {', '.join(ADMISSION_POLICIES)})"
            )
        max_inflight = int(arrivals.get("max_inflight", 8))
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")

        tenant_specs = arrivals.get("tenants")
        if tenant_specs is None:
            tenant_specs = [{} for _ in scenario.applications]
        if len(tenant_specs) != len(scenario.applications):
            raise ValueError(
                f"arrivals.tenants has {len(tenant_specs)} entries for "
                f"{len(scenario.applications)} applications"
            )

        slo = dict(scenario.slo or {})
        tenants: List[TenantSpec] = []
        for slot, (app, name, tenant) in enumerate(
            zip(scenario.applications, scenario.process_names(), tenant_specs)
        ):
            tenant = dict(tenant)
            process = ARRIVALS.canonical_name(str(tenant.get("process", "poisson")))
            default_priority = (
                scenario.high_priority
                if slot == scenario.high_priority_index
                else scenario.normal_priority
            )
            slo_us = tenant.get("slo_us")
            if slo_us is None:
                for key in (name, app, "default"):
                    if key in slo and slo[key] is not None:
                        slo_us = slo[key]
                        break
            options = {
                key: value
                for key, value in tenant.items()
                if key not in _TENANT_DRIVER_KEYS
            }
            tenants.append(
                TenantSpec(
                    name=name,
                    app=app,
                    slot=slot,
                    process=process,
                    seed=int(tenant.get("seed", slot)),
                    priority=int(tenant.get("priority", default_priority)),
                    options=options,
                    slo_us=None if slo_us is None else float(slo_us),
                )
            )

        return cls(
            horizon_us=horizon_us,
            warmup_us=warmup_us,
            queue_capacity=int(arrivals.get("queue_capacity", 64)),
            admission=admission,
            max_inflight=max_inflight,
            window_us=float(arrivals.get("window_us", horizon_us / 4.0)),
            reservoir_capacity=int(arrivals.get("reservoir_capacity", 32)),
            metrics_seed=int(arrivals.get("metrics_seed", 0)),
            tenants=tenants,
        )


@dataclass
class _TenantRuntime:
    """Live per-tenant state inside one segment."""

    spec: TenantSpec
    process: ArrivalProcess
    context: Any
    #: (kernel name, KernelSpec) in sorted-name order; requests cycle it.
    kernels: List[Tuple[str, Any]]
    #: Absolute time of the tenant's next (not yet offered) arrival.
    next_arrival_us: float
    #: Requests generated so far (the arrival-stream cursor).
    count: int = 0


class ServingDriver:
    """Executes one serving segment on a fresh :class:`GPUSystem`.

    The driver owns the system: it creates one GPU context per tenant,
    schedules arrival events, admits requests through the ingress queue and
    launches their kernels.  After :meth:`run` returns, :meth:`summary` and
    :meth:`checkpoint` expose the results.
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        *,
        config=None,
        suite=None,
        checkpoint: Optional[Mapping[str, Any]] = None,
    ):
        from repro.workloads.synthetic import SyntheticSuite  # local: avoids cycle

        self.scenario = scenario
        self.spec = ServingSpec.from_scenario(scenario)
        scale = scenario.workload_scale()
        self.config = (
            config if config is not None else scale.scale_config(scenario.system_config())
        )
        self.suite = suite if suite is not None else SyntheticSuite(scale)

        state = checkpoint
        if state is not None and int(state.get("schema", -1)) != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"unsupported serving checkpoint schema {state.get('schema')!r}"
            )
        start_us = float(state["clock_us"]) if state else 0.0

        scheme = scenario.scheme
        options = dict(scheme.policy_options)
        if POLICIES.canonical_name(scheme.policy) == "dss":
            # Equal sharing needs the tenant count for its token budgets.
            options.setdefault("process_count", scenario.num_processes)
        self.system = GPUSystem(
            self.config,
            policy=scheme.policy,
            mechanism=scheme.mechanism,
            controller=scheme.controller,
            controller_options=dict(scheme.controller_options) or None,
            transfer_policy=scheme.transfer_policy,
            policy_options=options or None,
            validate=scenario.validate,
            trace=scenario.trace,
            metrics=scenario.metrics,
            start_time_us=start_us,
            queue=scenario.queue,
        )
        #: Observer target, kept in sync by ``GPUSystem._rewire_observers``.
        self.observer = None
        self.system.serving = self
        self.system._rewire_observers()  # noqa: SLF001 - observers pre-date us

        spec = self.spec
        self.queue = IngressQueue(
            capacity=spec.queue_capacity, admission=spec.admission
        )
        if state:
            self.queue.counters = QueueCounters.from_dict(state["queue_counters"])
            self.metrics = ServingMetrics.restore(state["metrics"])
            self._request_seq = int(state["request_seq"])
            self._events_before = int(state["events_processed"])
            # Continue the launch-id sequence: per-launch deterministic
            # jitter is keyed by launch id, so a resumed segment must hand
            # out the ids the unsplit run would have (one launch per
            # admitted request — the serving system runs no host processes).
            self.system.driver._launch_ids = itertools.count(  # noqa: SLF001
                self.queue.counters.admitted + 1
            )
        else:
            self.metrics = ServingMetrics(
                tenants={t.name: t.slo_us for t in spec.tenants},
                warmup_us=spec.warmup_us,
                window_us=spec.window_us,
                seed=spec.metrics_seed,
                reservoir_capacity=spec.reservoir_capacity,
            )
            self._request_seq = 0
            self._events_before = 0

        self._tenants: List[_TenantRuntime] = []
        for tenant in spec.tenants:
            trace = self.suite.trace(tenant.app)
            kernels = [(name, trace.kernels[name]) for name in sorted(trace.kernels)]
            context = self.system.driver.create_context(
                tenant.name, priority=tenant.priority
            )
            process = ARRIVALS.create(
                tenant.process, seed=tenant.seed, **dict(tenant.options)
            )
            if state:
                tstate = state["tenants"][tenant.name]
                process.restore(tstate["process"])
                runtime = _TenantRuntime(
                    spec=tenant,
                    process=process,
                    context=context,
                    kernels=kernels,
                    next_arrival_us=float(tstate["next_arrival_us"]),
                    count=int(tstate["count"]),
                )
            else:
                runtime = _TenantRuntime(
                    spec=tenant,
                    process=process,
                    context=context,
                    kernels=kernels,
                    next_arrival_us=process.next_gap_us(),
                )
            self._tenants.append(runtime)
        self._by_name = {runtime.spec.name: runtime for runtime in self._tenants}
        self._inflight = 0
        self._quiesce_armed = False
        self._stopped_for_checkpoint = False
        #: True once the run reached the horizon and drained (vs. quiesced).
        self.complete = False

        #: Heartbeat reporter (``None`` unless ``metrics={"heartbeat": ...}``).
        self.health = None
        hub = self.system.metrics
        if hub is not None:
            from repro.obs import (  # local: keeps import cheap
                HealthReporter,
                attach_serving_metrics,
                resolve_metrics_spec,
            )

            if state is not None and "obs" in state:
                hub.restore(state["obs"])
            attach_serving_metrics(hub, self)
            if resolve_metrics_spec(scenario.metrics)["heartbeat"]:
                self.health = HealthReporter(horizon_us=self.spec.horizon_us)
                if state is not None:
                    self.health.note_checkpoint(start_us)
                hub.add_row_listener(self.health.heartbeat)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, *, quiesce_at_us: Optional[float] = None) -> "ServingDriver":
        """Run the segment to the horizon, or quiesce near ``quiesce_at_us``.

        With ``quiesce_at_us`` set, the segment stops at the first idle
        instant (queue empty, nothing in flight) at or after that time and
        :attr:`complete` stays ``False``; :meth:`checkpoint` then resumes it.
        If the run drains naturally first, it completes like an unbounded
        segment (resuming the checkpoint is then a no-op segment).
        """
        sim = self.system.simulator
        for runtime in self._tenants:
            if runtime.next_arrival_us <= self.spec.horizon_us:
                self._schedule_arrival(runtime)
        if quiesce_at_us is not None:
            sim.schedule(
                max(0.0, float(quiesce_at_us) - sim.now),
                self._on_quiesce_probe,
                label="serving.quiesce",
            )
        self.system.run(max_events=self.scenario.resolved_max_events())
        if self._inflight or len(self.queue):
            raise RuntimeError(
                "serving segment stopped with work outstanding "
                f"(inflight={self._inflight}, queued={len(self.queue)})"
            )
        self.complete = not self._stopped_for_checkpoint
        return self

    def _schedule_arrival(self, runtime: _TenantRuntime) -> None:
        sim = self.system.simulator
        sim.schedule(
            max(0.0, runtime.next_arrival_us - sim.now),
            lambda runtime=runtime: self._on_arrival(runtime),
            label=f"serving.arrival.{runtime.spec.name}",
        )

    def _on_arrival(self, runtime: _TenantRuntime) -> None:
        spec = runtime.spec
        arrival_us = runtime.next_arrival_us
        kernel_name, _ = runtime.kernels[runtime.count % len(runtime.kernels)]
        request = Request(
            request_id=self._request_seq,
            tenant=spec.name,
            kernel=kernel_name,
            priority=spec.priority,
            arrival_us=arrival_us,
            tenant_index=runtime.count,
        )
        self._request_seq += 1
        runtime.count += 1
        # Advance the stream; gaps accumulate from *true* arrival times, so
        # the arrival schedule is independent of queueing and segmentation.
        runtime.next_arrival_us = arrival_us + runtime.process.next_gap_us()
        if runtime.next_arrival_us <= self.spec.horizon_us:
            self._schedule_arrival(runtime)
        now = self.system.simulator.now
        if self.observer is not None:
            self.observer.on_request_arrived(request, now)
        dropped = self.queue.offer(request)
        if dropped is not None and self.observer is not None:
            self.observer.on_request_dropped(dropped, now)
        self._dispatch()

    def _dispatch(self) -> None:
        while self._inflight < self.spec.max_inflight:
            request = self.queue.pop()
            if request is None:
                break
            self._launch(request)

    def _launch(self, request: Request) -> None:
        runtime = self._by_name[request.tenant]
        now = self.system.simulator.now
        request.admit_us = now
        _, kernel_spec = runtime.kernels[
            request.tenant_index % len(runtime.kernels)
        ]
        command = self.system.driver.launch_kernel(
            runtime.context, kernel_spec, priority=request.priority
        )
        self._inflight += 1
        if self.observer is not None:
            self.observer.on_request_admitted(request, now)
        command.subscribe_completion(
            lambda done_us, request=request: self._on_complete(request, done_us)
        )

    def _on_complete(self, request: Request, now: float) -> None:
        request.complete_us = now
        self._inflight -= 1
        self.metrics.record_completion(
            request.tenant,
            arrival_us=request.arrival_us,
            admit_us=request.admit_us,
            complete_us=now,
        )
        if self.observer is not None:
            self.observer.on_request_completed(request, now)
        self._dispatch()
        self._maybe_quiesce()

    def _on_quiesce_probe(self) -> None:
        self._quiesce_armed = True
        self._maybe_quiesce()

    def _maybe_quiesce(self) -> None:
        if (
            self._quiesce_armed
            and not self._stopped_for_checkpoint
            and self._inflight == 0
            and len(self.queue) == 0
        ):
            self._stopped_for_checkpoint = True
            self.system.simulator.stop()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Engine events processed across all segments so far."""
        return self._events_before + self.system.simulator.events_processed

    def checkpoint(self) -> Dict[str, Any]:
        """JSON-serialisable resume state (valid at quiesce or completion)."""
        sim = self.system.simulator
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "clock_us": sim.now,
            "request_seq": self._request_seq,
            "events_processed": self.events_processed,
            "queue_counters": self.queue.counters.to_dict(),
            "metrics": self.metrics.state(),
            "tenants": {
                runtime.spec.name: {
                    "process": runtime.process.state(),
                    "next_arrival_us": runtime.next_arrival_us,
                    "count": runtime.count,
                }
                for runtime in self._tenants
            },
        }
        # Optional (schema-compatible): checkpoints from metrics-off runs
        # stay valid, and metrics-off resumes simply ignore the key.
        if self.system.metrics is not None:
            payload["obs"] = self.system.metrics.state()
        return payload

    def summary(self) -> Dict[str, Any]:
        """The serving summary (admission counters + streaming metrics)."""
        spec = self.spec
        now = self.system.simulator.now
        return {
            "schema": SUMMARY_SCHEMA,
            "horizon_us": _round3(spec.horizon_us),
            "simulated_time_us": _round3(now),
            "queue": {
                "capacity": spec.queue_capacity,
                "admission": spec.admission,
                "max_inflight": spec.max_inflight,
                **self.queue.counters.to_dict(),
            },
            **self.metrics.summary(now_us=now),
        }


@dataclass
class ServingOutcome:
    """Everything a finished (or checkpointed) serving run produced."""

    scenario: ScenarioSpec
    summary: Dict[str, Any]
    checkpoint: Dict[str, Any]
    segments: int
    engine_stats: Dict[str, float]
    simulated_time_us: float
    events_processed: int
    validated: bool
    violations: List[Dict]
    trace_events: List[Any] = field(default_factory=list)
    #: Metrics snapshot rows (``None`` when metrics are off); carried across
    #: checkpoint segments through the hub state in the checkpoint payload.
    metrics_rows: Optional[List[Dict[str, Any]]] = None
    #: Final metric values at run end (``None`` when metrics are off).
    metrics_snapshot: Optional[Dict[str, float]] = None
    #: Hub meta (scheme names etc.) for the JSONL exporter header.
    metrics_meta: Optional[Dict[str, Any]] = None


def run_serving(
    scenario: ScenarioSpec,
    *,
    checkpoint_at: Sequence[float] = (),
    config=None,
    suite=None,
) -> ServingOutcome:
    """Run an open-loop serving scenario, optionally split across segments.

    ``checkpoint_at`` lists simulated times near which the run is quiesced,
    checkpointed and resumed on a fresh system; every checkpoint payload is
    JSON round-tripped, so splitting proves serialisability.  By
    construction a split run's summary is byte-identical to the unsplit
    run's (see the module docstring for why).
    """
    bounds = sorted(float(b) for b in checkpoint_at)
    state: Optional[Dict[str, Any]] = None
    segments = 0
    violations: List[Dict] = []
    trace_events: List[Any] = []
    driver: Optional[ServingDriver] = None
    for bound in [*bounds, None]:
        driver = ServingDriver(scenario, config=config, suite=suite, checkpoint=state)
        driver.run(quiesce_at_us=bound)
        segments += 1
        violations.extend(driver.system.violations())
        if driver.system.telemetry is not None:
            trace_events.extend(driver.system.telemetry.events)
        # Round-trip through JSON even for the in-process hand-off: resume
        # must never depend on live Python objects sneaking through.
        state = json.loads(json.dumps(driver.checkpoint()))
    assert driver is not None
    hub = driver.system.metrics
    if hub is not None:
        hub.finalize(driver.system.simulator.now)
    return ServingOutcome(
        scenario=scenario,
        summary=driver.summary(),
        checkpoint=state,
        segments=segments,
        engine_stats=driver.system.execution_engine.utilization_snapshot(),
        simulated_time_us=driver.system.simulator.now,
        events_processed=driver.events_processed,
        validated=scenario.validate,
        violations=violations,
        trace_events=trace_events,
        metrics_rows=None if hub is None else list(hub.rows),
        metrics_snapshot=None if hub is None else hub.registry.snapshot(),
        metrics_meta=None if hub is None else dict(hub.meta),
    )


__all__ = [
    "CHECKPOINT_SCHEMA",
    "SUMMARY_SCHEMA",
    "TenantSpec",
    "ServingSpec",
    "ServingDriver",
    "ServingOutcome",
    "run_serving",
]
