"""Deterministic open-loop arrival processes (the serving layer's sources).

Every process generates one tenant's request stream as a sequence of
interarrival gaps.  Draws go through :func:`repro.utils.determinism.hash_uniform`
with *key-addressed* components (seed, kind, request index), never through
sequential RNG state, so:

* the same ``(process, seed)`` always yields the same stream, on every
  platform and in every worker process, and
* a stream can be *resumed* from a serialized cursor (:meth:`ArrivalProcess.state`
  / :meth:`ArrivalProcess.restore`) and continue byte-identically — the
  foundation of the serving layer's checkpoint/resume support.

Processes are pluggable through :data:`repro.registry.ARRIVALS`
(:func:`repro.registry.register_arrival`); unknown names raise
:class:`~repro.registry.UnknownComponentError` with close-match suggestions,
exactly like policies and controllers.

>>> from repro.registry import ARRIVALS
>>> proc = ARRIVALS.create("poisson", seed=7, mean_interarrival_us=100.0)
>>> gaps = [proc.next_gap_us() for _ in range(3)]
>>> restored = ARRIVALS.create("poisson", seed=7, mean_interarrival_us=100.0)
>>> [restored.next_gap_us() for _ in range(3)] == gaps
True
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.registry import ARRIVALS, register_arrival
from repro.utils.determinism import hash_uniform

#: Namespace component so arrival draws never collide with other users of
#: :func:`hash_uniform` (e.g. the scenario fuzzer's ``repro.synthetic``).
_NS = "repro.serving.arrivals"

#: Upper bound on a single interarrival gap (µs).  Heavy-tailed processes
#: (Pareto) can draw essentially unbounded gaps; clamping keeps horizons
#: finite without perturbing the bulk of the distribution.
MAX_GAP_US = 10_000_000.0


def _u(seed: int, *key) -> float:
    """Deterministic uniform sample in [0, 1) for (seed, key)."""
    return hash_uniform(_NS, seed, *key)


class ArrivalProcess:
    """Base class: a resumable, deterministic interarrival-gap stream.

    Subclasses implement :meth:`_gap_us` as a pure function of the request
    index (plus any serialized per-stream state), which is what makes the
    cursor in :meth:`state` sufficient to resume the stream exactly.
    """

    name = "base"

    def __init__(self, *, seed: int = 0, mean_interarrival_us: float = 100.0):
        if mean_interarrival_us <= 0:
            raise ValueError("mean_interarrival_us must be positive")
        self.seed = int(seed)
        self.mean_interarrival_us = float(mean_interarrival_us)
        self._index = 0

    # ------------------------------------------------------------------
    # Stream generation
    # ------------------------------------------------------------------
    def next_gap_us(self) -> float:
        """The next interarrival gap (µs); advances the cursor."""
        gap = min(MAX_GAP_US, max(0.0, self._gap_us(self._index)))
        self._index += 1
        return round(gap, 3)

    def _gap_us(self, index: int) -> float:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpoint/resume
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """JSON-serialisable cursor; restore with :meth:`restore`."""
        return {"index": self._index}

    def restore(self, state: Dict[str, Any]) -> None:
        """Reposition the stream at a cursor produced by :meth:`state`."""
        self._index = int(state["index"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(seed={self.seed}, "
            f"mean={self.mean_interarrival_us}, index={self._index})"
        )


@register_arrival(
    "poisson",
    "exponential",
    description="memoryless Poisson arrivals (exponential interarrival gaps)",
)
class PoissonArrivals(ArrivalProcess):
    """Exponential gaps with the configured mean."""

    name = "poisson"

    def _gap_us(self, index: int) -> float:
        u = _u(self.seed, "gap", index)
        return -self.mean_interarrival_us * math.log(1.0 - u)


@register_arrival(
    "mmpp",
    "bursty",
    "onoff",
    description="bursty on-off modulated Poisson (MMPP-style burst trains)",
)
class MMPPArrivals(ArrivalProcess):
    """Two-state modulated Poisson: dense bursts separated by idle gaps.

    While *on*, gaps are exponential with mean ``mean / burstiness``; while
    *off*, with mean ``mean * burstiness`` — so the process alternates between
    request trains well above the average rate and near-idle stretches.
    State-phase lengths (in requests) are geometric, drawn key-addressed per
    phase number, so the phase schedule is as reproducible as the gaps.
    """

    name = "mmpp"

    def __init__(
        self,
        *,
        seed: int = 0,
        mean_interarrival_us: float = 100.0,
        burstiness: float = 8.0,
        mean_burst_len: int = 12,
        mean_idle_len: int = 3,
    ):
        super().__init__(seed=seed, mean_interarrival_us=mean_interarrival_us)
        if burstiness < 1.0:
            raise ValueError("burstiness must be >= 1")
        if mean_burst_len < 1 or mean_idle_len < 1:
            raise ValueError("phase lengths must be at least 1")
        self.burstiness = float(burstiness)
        self.mean_burst_len = int(mean_burst_len)
        self.mean_idle_len = int(mean_idle_len)
        self._phase = "on"
        self._phase_number = 0
        self._left = self._phase_len("on", 0)

    def _phase_len(self, phase: str, number: int) -> int:
        mean_len = self.mean_burst_len if phase == "on" else self.mean_idle_len
        u = _u(self.seed, "phase_len", number)
        # Geometric with the requested mean (support >= 1).
        return 1 + int(-math.log(1.0 - u) * max(0.0, mean_len - 1))

    def _gap_us(self, index: int) -> float:
        if self._left == 0:
            self._phase = "off" if self._phase == "on" else "on"
            self._phase_number += 1
            self._left = self._phase_len(self._phase, self._phase_number)
        self._left -= 1
        mean = (
            self.mean_interarrival_us / self.burstiness
            if self._phase == "on"
            else self.mean_interarrival_us * self.burstiness
        )
        u = _u(self.seed, "gap", index)
        return -mean * math.log(1.0 - u)

    def state(self) -> Dict[str, Any]:
        return {
            "index": self._index,
            "phase": self._phase,
            "phase_number": self._phase_number,
            "left": self._left,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        super().restore(state)
        self._phase = str(state["phase"])
        self._phase_number = int(state["phase_number"])
        self._left = int(state["left"])


@register_arrival(
    "lognormal",
    description="heavy-tailed lognormal interarrival gaps",
)
class LognormalArrivals(ArrivalProcess):
    """Lognormal gaps; ``sigma`` sets the tail weight, the mean is preserved."""

    name = "lognormal"

    def __init__(
        self,
        *,
        seed: int = 0,
        mean_interarrival_us: float = 100.0,
        sigma: float = 1.0,
    ):
        super().__init__(seed=seed, mean_interarrival_us=mean_interarrival_us)
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.sigma = float(sigma)
        # E[exp(mu + sigma Z)] = exp(mu + sigma^2/2) = mean_interarrival_us.
        self._mu = math.log(self.mean_interarrival_us) - self.sigma * self.sigma / 2.0

    def _gap_us(self, index: int) -> float:
        u1 = max(_u(self.seed, "ln_u1", index), 1e-12)
        u2 = _u(self.seed, "ln_u2", index)
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return math.exp(self._mu + self.sigma * z)


@register_arrival(
    "pareto",
    description="heavy-tailed Pareto interarrival gaps (power-law tail)",
)
class ParetoArrivals(ArrivalProcess):
    """Pareto gaps; ``alpha`` > 1 sets the tail index, the mean is preserved."""

    name = "pareto"

    def __init__(
        self,
        *,
        seed: int = 0,
        mean_interarrival_us: float = 100.0,
        alpha: float = 2.5,
    ):
        super().__init__(seed=seed, mean_interarrival_us=mean_interarrival_us)
        if alpha <= 1.0:
            raise ValueError("alpha must be > 1 (finite mean)")
        self.alpha = float(alpha)
        # E[X] = xm * alpha / (alpha - 1) = mean_interarrival_us.
        self._xm = self.mean_interarrival_us * (self.alpha - 1.0) / self.alpha

    def _gap_us(self, index: int) -> float:
        u = _u(self.seed, "gap", index)
        return self._xm / (1.0 - u) ** (1.0 / self.alpha)


@register_arrival(
    "replay",
    "trace",
    description="replay an explicit interarrival-gap list (trace-file source)",
)
class ReplayArrivals(ArrivalProcess):
    """Replays a fixed gap list, wrapping around by default.

    The bridge to trace-file workloads (:mod:`repro.loadgen`): the gaps ride
    through scenario JSON verbatim, so a replayed stream is exactly as
    reproducible and resumable as a synthetic one.

    Exhaustion behavior is explicit: ``wrap=True`` (the default, and the
    behavior replay has always had) cycles the gap list for as long as the
    run asks for arrivals; ``wrap=False`` halts the stream once the list is
    exhausted — every further gap is :data:`MAX_GAP_US`, pushing the next
    arrival past any finite horizon.  Compiled workload traces use
    ``wrap=False`` so a trace's request count is exact.  ``cycle`` is the
    original name of the same switch and remains accepted as an alias.
    """

    name = "replay"

    def __init__(
        self,
        *,
        seed: int = 0,
        mean_interarrival_us: float = 100.0,
        interarrival_us: Optional[Sequence[float]] = None,
        wrap: Optional[bool] = None,
        cycle: Optional[bool] = None,
    ):
        super().__init__(seed=seed, mean_interarrival_us=mean_interarrival_us)
        gaps: List[float] = [float(g) for g in (interarrival_us or [])]
        if not gaps:
            raise ValueError("replay needs a non-empty interarrival_us list")
        if any(g < 0 for g in gaps):
            raise ValueError("interarrival gaps must be non-negative")
        self.gaps = gaps
        if wrap is not None and cycle is not None and bool(wrap) != bool(cycle):
            raise ValueError(
                "wrap and cycle are the same switch; pass one (or equal values)"
            )
        resolved = wrap if wrap is not None else cycle
        self.wrap = True if resolved is None else bool(resolved)

    @property
    def cycle(self) -> bool:
        """Legacy name of :attr:`wrap` (kept for pre-loadgen callers)."""
        return self.wrap

    def _gap_us(self, index: int) -> float:
        if index >= len(self.gaps) and not self.wrap:
            # Past the end of a non-wrapping trace: push the next arrival
            # beyond any finite horizon.
            return MAX_GAP_US
        return self.gaps[index % len(self.gaps)]

    def state(self) -> Dict[str, Any]:
        return {"index": self._index, "wrap": self.wrap}

    def restore(self, state: Dict[str, Any]) -> None:
        super().restore(state)
        # Pre-wrap checkpoints carry no flag; the constructor value stands.
        if "wrap" in state:
            self.wrap = bool(state["wrap"])


def make_arrival_process(kind: str, **options) -> ArrivalProcess:
    """Instantiate an arrival process by registry name."""
    return ARRIVALS.create(kind, **options)


__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "LognormalArrivals",
    "ParetoArrivals",
    "ReplayArrivals",
    "make_arrival_process",
    "MAX_GAP_US",
]
