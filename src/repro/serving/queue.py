"""Admission/ingress queue of the open-loop serving layer.

Requests arrive from :mod:`repro.serving.arrivals` streams and wait here
until the :class:`~repro.serving.driver.ServingDriver` has a launch slot.
The queue is bounded with a pluggable admission policy:

* ``drop`` — a request arriving at a full queue is dropped (tail drop),
* ``drop_oldest`` — the lowest-priority, oldest request is evicted to make
  room (head drop; favours fresh work under overload).  The arriving
  request is part of the victim pool: when it ranks below everything
  queued, *it* is the one dropped,
* ``block`` — the queue grows beyond capacity, but every over-capacity
  admission is counted as a backpressure event (open-loop sources cannot be
  slowed down, so "blocking" manifests as measured pressure, not lost work).

Dispatch order is by tenant priority (higher first), FIFO within a priority
— the same ordering contract as the GPU scheduling policies the priorities
map onto.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Admission policies accepted by :class:`IngressQueue`.
ADMISSION_POLICIES = ("drop", "drop_oldest", "block")


@dataclass
class Request:
    """One open-loop request: a kernel launch on behalf of a tenant."""

    #: Dense run-wide id (stable across checkpoint/resume segments).
    request_id: int
    #: Tenant (process) name the request belongs to.
    tenant: str
    #: Name of the kernel the request launches (from the tenant's trace).
    kernel: str
    #: Scheduling priority (mapped onto the GPU scheduling policy).
    priority: int
    #: True arrival time (µs); may precede the current segment's clock for
    #: requests carried across a checkpoint boundary.
    arrival_us: float
    #: Launch (admission to the GPU) time; ``None`` while queued.
    admit_us: Optional[float] = None
    #: Completion time; ``None`` until the kernel finishes.
    complete_us: Optional[float] = None
    #: Per-tenant request index (the arrival stream cursor that produced it).
    tenant_index: int = 0

    @property
    def latency_us(self) -> float:
        """Sojourn time (completion − arrival); requires completion."""
        if self.complete_us is None:
            raise ValueError("request has not completed")
        return self.complete_us - self.arrival_us


@dataclass
class QueueCounters:
    """Admission bookkeeping, serialized into checkpoints and summaries."""

    arrived: int = 0
    admitted: int = 0
    dropped: int = 0
    backpressure_events: int = 0
    peak_depth: int = 0
    per_tenant_arrived: Dict[str, int] = field(default_factory=dict)
    per_tenant_admitted: Dict[str, int] = field(default_factory=dict)
    per_tenant_dropped: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "arrived": self.arrived,
            "admitted": self.admitted,
            "dropped": self.dropped,
            "backpressure_events": self.backpressure_events,
            "peak_depth": self.peak_depth,
            "per_tenant_arrived": dict(sorted(self.per_tenant_arrived.items())),
            "per_tenant_admitted": dict(sorted(self.per_tenant_admitted.items())),
            "per_tenant_dropped": dict(sorted(self.per_tenant_dropped.items())),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QueueCounters":
        """Rebuild counters from :meth:`to_dict` output."""
        return cls(
            arrived=int(payload["arrived"]),
            admitted=int(payload["admitted"]),
            dropped=int(payload["dropped"]),
            backpressure_events=int(payload["backpressure_events"]),
            peak_depth=int(payload["peak_depth"]),
            per_tenant_arrived=dict(payload["per_tenant_arrived"]),
            per_tenant_admitted=dict(payload["per_tenant_admitted"]),
            per_tenant_dropped=dict(payload["per_tenant_dropped"]),
        )


class IngressQueue:
    """Bounded, priority-ordered admission queue with drop accounting."""

    def __init__(self, *, capacity: int = 64, admission: str = "drop"):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {admission!r} "
                f"(choose from {', '.join(ADMISSION_POLICIES)})"
            )
        self.capacity = int(capacity)
        self.admission = admission
        self.counters = QueueCounters()
        #: Heap of (-priority, enqueue seq, request): priority then FIFO.
        self._heap: List[tuple] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def offer(self, request: Request) -> Optional[Request]:
        """Offer an arriving request; returns the *dropped* request, if any.

        Under ``drop`` a full queue rejects the offered request itself;
        under ``drop_oldest`` the lowest-priority, oldest request — counting
        the arriving request itself as the youngest candidate — is evicted;
        under ``block`` nothing is ever dropped but over-capacity admissions
        bump the backpressure counter.
        """
        counters = self.counters
        counters.arrived += 1
        counters.per_tenant_arrived[request.tenant] = (
            counters.per_tenant_arrived.get(request.tenant, 0) + 1
        )
        dropped: Optional[Request] = None
        if len(self._heap) >= self.capacity:
            if self.admission == "drop":
                dropped = request
            elif self.admission == "drop_oldest":
                dropped = self._evict_oldest(request)
            else:  # block
                counters.backpressure_events += 1
        if dropped is not request:
            heapq.heappush(self._heap, (-request.priority, self._seq, request))
            self._seq += 1
            counters.peak_depth = max(counters.peak_depth, len(self._heap))
        if dropped is not None:
            counters.dropped += 1
            counters.per_tenant_dropped[dropped.tenant] = (
                counters.per_tenant_dropped.get(dropped.tenant, 0) + 1
            )
        return dropped

    def _evict_oldest(self, incoming: Request) -> Request:
        """Pick the ``drop_oldest`` victim: worst priority, oldest within it.

        The arriving request belongs to the victim pool too (as the
        youngest candidate): when it ranks strictly below every queued
        request it is the victim, so eviction can never promote a newcomer
        over queued work that outranks it.  On a priority tie the queued
        (older) request is evicted, preserving head-drop semantics.
        """
        victim_pos = max(
            range(len(self._heap)),
            key=lambda pos: (self._heap[pos][0], -self._heap[pos][1]),
        )
        neg_priority, _, victim = self._heap[victim_pos]
        if -incoming.priority > neg_priority:
            return incoming
        self._heap[victim_pos] = self._heap[-1]
        self._heap.pop()
        heapq.heapify(self._heap)
        return victim

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def pop(self) -> Optional[Request]:
        """Next request to launch (highest priority, FIFO within)."""
        if not self._heap:
            return None
        request = heapq.heappop(self._heap)[2]
        self.counters.admitted += 1
        self.counters.per_tenant_admitted[request.tenant] = (
            self.counters.per_tenant_admitted.get(request.tenant, 0) + 1
        )
        return request

    def drain(self) -> List[Request]:
        """Remove and return every queued request, in dispatch order."""
        out = []
        while self._heap:
            out.append(heapq.heappop(self._heap)[2])
        return out


__all__ = ["IngressQueue", "Request", "QueueCounters", "ADMISSION_POLICIES"]
