"""Streaming, O(1)-memory serving metrics (latency quantiles, SLOs, windows).

Open-loop serving runs target million-request horizons, so nothing here may
hold per-request state.  Three estimators cover the ROADMAP's steady-state
reporting needs:

* :class:`P2Quantile` — the P² streaming quantile estimator (Jain &
  Chlamtac, CACM 1985): five markers per tracked quantile, parabolic
  interpolation, O(1) memory and update cost.
* :class:`ReservoirSampler` — fixed-seed Algorithm-R reservoir; randomness
  comes from :func:`repro.utils.determinism.hash_uniform` keyed by the sample
  index, so the kept sample *set* is a pure function of (seed, stream).
* :class:`SlidingWindow` — ring of time buckets giving windowed throughput
  and ANTT without a timestamp log.

:class:`ServingMetrics` composes them per tenant and globally, applies the
warmup-window discard, counts per-tenant SLO violations against configurable
latency budgets, and serializes/restores its entire state
(:meth:`ServingMetrics.state` / :meth:`ServingMetrics.restore`) so a
checkpointed serving run resumes with byte-identical summaries.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional

from repro.utils.determinism import hash_uniform

_NS = "repro.serving.metrics"

#: Quantiles tracked for every latency stream.
QUANTILES = (0.5, 0.95, 0.99)

#: Service-time floor (µs) used when normalizing latency.  The simulator
#: rounds every timestamp to 1 ns (1e-3 µs), so a "zero-duration" kernel
#: really means "faster than one tick"; flooring at the tick keeps the
#: normalized latency finite instead of silently reporting 1.0.
MIN_SERVICE_US = 1e-3


def _round3(value: float) -> float:
    return round(value, 3)


# ----------------------------------------------------------------------
# P² streaming quantile estimator
# ----------------------------------------------------------------------
class P2Quantile:
    """One P² marker set estimating the ``q`` quantile of a stream."""

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        self.q = float(q)
        self._count = 0
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def add(self, value: float) -> None:
        """Fold one observation into the estimate."""
        value = float(value)
        self._count += 1
        if self._count <= 5:
            self._heights.append(value)
            self._heights.sort()
            if self._count == 5:
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0,
                    1.0 + 2.0 * self.q,
                    1.0 + 4.0 * self.q,
                    3.0 + 2.0 * self.q,
                    5.0,
                ]
            return
        h, n, nd = self._heights, self._positions, self._desired
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            while value >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            nd[i] += self._increments[i]
        for i in (1, 2, 3):
            d = nd[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                sign = 1.0 if d >= 0 else -1.0
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, sign)
                n[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, sign: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(sign)
        return h[i] + sign * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def count(self) -> int:
        """Number of folded observations."""
        return self._count

    def value(self) -> float:
        """The current quantile estimate (0.0 before any observation).

        Below five observations the exact small-sample quantile (nearest
        rank) is returned, so short streams report true values.
        """
        if self._count == 0:
            return 0.0
        if self._count < 5:
            rank = max(1, math.ceil(self.q * self._count))
            return self._heights[rank - 1]
        return self._heights[2]

    def state(self) -> Dict[str, Any]:
        """JSON-serialisable estimator state."""
        return {
            "q": self.q,
            "count": self._count,
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
        }

    @classmethod
    def restore(cls, state: Mapping[str, Any]) -> "P2Quantile":
        """Rebuild an estimator from :meth:`state` output."""
        est = cls(state["q"])
        est._count = int(state["count"])
        est._heights = [float(v) for v in state["heights"]]
        est._positions = [float(v) for v in state["positions"]]
        est._desired = [float(v) for v in state["desired"]]
        return est


# ----------------------------------------------------------------------
# Fixed-seed reservoir sampling
# ----------------------------------------------------------------------
class ReservoirSampler:
    """Algorithm-R reservoir with hash-keyed (reproducible) randomness."""

    def __init__(self, capacity: int = 32, *, seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.seed = int(seed)
        self._samples: List[float] = []
        self._count = 0

    def add(self, value: float) -> None:
        """Offer one observation to the reservoir."""
        index = self._count
        self._count += 1
        if len(self._samples) < self.capacity:
            self._samples.append(float(value))
            return
        slot = int(hash_uniform(_NS, self.seed, "reservoir", index) * (index + 1))
        if slot < self.capacity:
            self._samples[slot] = float(value)

    @property
    def count(self) -> int:
        """Number of offered observations."""
        return self._count

    def samples(self) -> List[float]:
        """The kept samples, sorted (for stable reporting)."""
        return sorted(self._samples)

    def state(self) -> Dict[str, Any]:
        """JSON-serialisable reservoir state."""
        return {
            "capacity": self.capacity,
            "seed": self.seed,
            "count": self._count,
            "samples": list(self._samples),
        }

    @classmethod
    def restore(cls, state: Mapping[str, Any]) -> "ReservoirSampler":
        """Rebuild a reservoir from :meth:`state` output."""
        sampler = cls(int(state["capacity"]), seed=int(state["seed"]))
        sampler._count = int(state["count"])
        sampler._samples = [float(v) for v in state["samples"]]
        return sampler


# ----------------------------------------------------------------------
# Sliding-window throughput / ANTT
# ----------------------------------------------------------------------
class SlidingWindow:
    """Windowed completion stats from a ring of time buckets (O(buckets))."""

    NUM_BUCKETS = 8

    def __init__(self, window_us: float):
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        self.window_us = float(window_us)
        self._bucket_us = self.window_us / self.NUM_BUCKETS
        #: slot -> [bucket epoch, completions, latency sum, normalized sum]
        self._buckets: List[List[float]] = [
            [-1.0, 0.0, 0.0, 0.0] for _ in range(self.NUM_BUCKETS)
        ]

    def record(self, time_us: float, latency_us: float, normalized: float) -> None:
        """Record one completion at ``time_us``."""
        epoch = float(int(time_us / self._bucket_us))
        bucket = self._buckets[int(epoch) % self.NUM_BUCKETS]
        if bucket[0] != epoch:
            bucket[0] = epoch
            bucket[1] = bucket[2] = bucket[3] = 0.0
        bucket[1] += 1.0
        bucket[2] += latency_us
        bucket[3] += normalized

    def stats(self, now_us: float) -> Dict[str, float]:
        """Throughput (requests/s) and ANTT over the trailing window."""
        newest = int(now_us / self._bucket_us)
        oldest = newest - self.NUM_BUCKETS + 1
        count = latency_sum = norm_sum = 0.0
        for bucket in self._buckets:
            if oldest <= bucket[0] <= newest:
                count += bucket[1]
                latency_sum += bucket[2]
                norm_sum += bucket[3]
        # Pro-rate by the elapsed span: the newest bucket is only partially
        # elapsed, and a stream younger than the window has only lived for
        # ``now_us`` — dividing by the full window under-reports throughput
        # by up to 1/NUM_BUCKETS (more for young streams).
        span_us = min(now_us - oldest * self._bucket_us, now_us)
        throughput = count / span_us * 1e6 if span_us > 0 else 0.0
        return {
            "completions": int(count),
            "throughput_rps": _round3(throughput),
            "mean_latency_us": _round3(latency_sum / count) if count else 0.0,
            "antt": _round3(norm_sum / count) if count else 0.0,
        }

    def state(self) -> Dict[str, Any]:
        """JSON-serialisable window state."""
        return {
            "window_us": self.window_us,
            "buckets": [list(bucket) for bucket in self._buckets],
        }

    @classmethod
    def restore(cls, state: Mapping[str, Any]) -> "SlidingWindow":
        """Rebuild a window from :meth:`state` output."""
        window = cls(float(state["window_us"]))
        window._buckets = [
            [float(v) for v in bucket] for bucket in state["buckets"]
        ]
        return window


# ----------------------------------------------------------------------
# One latency stream (global or per tenant)
# ----------------------------------------------------------------------
class _LatencyStream:
    """Quantile estimators + running moments for one latency stream."""

    def __init__(self) -> None:
        self.quantiles = {q: P2Quantile(q) for q in QUANTILES}
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def add(self, latency_us: float) -> None:
        self.count += 1
        self.sum += latency_us
        self.max = max(self.max, latency_us)
        for estimator in self.quantiles.values():
            estimator.add(latency_us)

    def summary(self) -> Dict[str, Any]:
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": _round3(self.sum / self.count),
            "p50": _round3(self.quantiles[0.5].value()),
            "p95": _round3(self.quantiles[0.95].value()),
            "p99": _round3(self.quantiles[0.99].value()),
            "max": _round3(self.max),
        }

    def state(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "quantiles": {str(q): est.state() for q, est in self.quantiles.items()},
        }

    @classmethod
    def restore(cls, state: Mapping[str, Any]) -> "_LatencyStream":
        stream = cls()
        stream.count = int(state["count"])
        stream.sum = float(state["sum"])
        stream.max = float(state["max"])
        stream.quantiles = {
            float(q): P2Quantile.restore(sub) for q, sub in state["quantiles"].items()
        }
        return stream


# ----------------------------------------------------------------------
# The composed serving metrics
# ----------------------------------------------------------------------
class ServingMetrics:
    """Warmup-discarded latency/SLO/throughput metrics of one serving run."""

    def __init__(
        self,
        *,
        tenants: Mapping[str, Optional[float]],
        warmup_us: float = 0.0,
        window_us: float = 1000.0,
        seed: int = 0,
        reservoir_capacity: int = 32,
    ):
        if warmup_us < 0:
            raise ValueError("warmup_us must be non-negative")
        #: Tenant name -> SLO latency budget in µs (``None`` = no budget).
        self.slo_budgets_us: Dict[str, Optional[float]] = {
            name: (float(budget) if budget is not None else None)
            for name, budget in tenants.items()
        }
        self.warmup_us = float(warmup_us)
        self.seed = int(seed)
        self.global_stream = _LatencyStream()
        self.tenant_streams: Dict[str, _LatencyStream] = {
            name: _LatencyStream() for name in self.slo_budgets_us
        }
        self.slo_violations: Dict[str, int] = {name: 0 for name in self.slo_budgets_us}
        self.reservoir = ReservoirSampler(reservoir_capacity, seed=seed)
        self.window = SlidingWindow(window_us)
        self.warmup_discarded = 0
        self.completed = 0
        #: Completions whose service time was below one simulator tick and
        #: was floored at :data:`MIN_SERVICE_US` for normalization.
        self.zero_service = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_completion(
        self, tenant: str, *, arrival_us: float, admit_us: float, complete_us: float
    ) -> None:
        """Fold one completed request into the metrics.

        ``latency`` is request sojourn time (complete − arrival); the
        ANTT-style *normalized* latency divides by the request's own service
        time (complete − admit), the serving analogue of the paper's
        normalized turnaround time.  Sub-tick service times are floored at
        :data:`MIN_SERVICE_US` and counted in ``zero_service``.
        """
        if tenant not in self.tenant_streams:
            raise KeyError(f"unknown tenant {tenant!r}")
        self.completed += 1
        if arrival_us < self.warmup_us:
            # Warmup-window discard: requests arriving before steady state
            # are counted but never contribute to latency/SLO metrics.
            self.warmup_discarded += 1
            return
        latency = complete_us - arrival_us
        service = complete_us - admit_us
        if service < MIN_SERVICE_US:
            self.zero_service += 1
            service = MIN_SERVICE_US
        normalized = latency / service
        self.global_stream.add(latency)
        self.tenant_streams[tenant].add(latency)
        self.reservoir.add(latency)
        self.window.record(complete_us, latency, normalized)
        budget = self.slo_budgets_us.get(tenant)
        if budget is not None and latency > budget:
            self.slo_violations[tenant] += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self, *, now_us: float) -> Dict[str, Any]:
        """JSON-serialisable metrics snapshot at simulation time ``now_us``."""
        measured_us = max(0.0, now_us - self.warmup_us)
        measured = self.completed - self.warmup_discarded
        throughput = measured / measured_us * 1e6 if measured_us > 0 else 0.0
        tenants = {}
        for name in sorted(self.tenant_streams):
            budget = self.slo_budgets_us[name]
            tenants[name] = {
                "latency_us": self.tenant_streams[name].summary(),
                "slo_budget_us": _round3(budget) if budget is not None else None,
                "slo_violations": self.slo_violations[name],
            }
        return {
            "warmup_us": _round3(self.warmup_us),
            "completed": self.completed,
            "warmup_discarded": self.warmup_discarded,
            "zero_service": self.zero_service,
            "latency_us": self.global_stream.summary(),
            "throughput_rps": _round3(throughput),
            "window": {"window_us": _round3(self.window.window_us), **self.window.stats(now_us)},
            "reservoir": [_round3(v) for v in self.reservoir.samples()],
            "slo_violations_total": sum(self.slo_violations.values()),
            "tenants": tenants,
        }

    # ------------------------------------------------------------------
    # Checkpoint/resume
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Full JSON-serialisable metric state (checkpoint payload)."""
        return {
            "warmup_us": self.warmup_us,
            "seed": self.seed,
            "warmup_discarded": self.warmup_discarded,
            "completed": self.completed,
            "zero_service": self.zero_service,
            "slo_budgets_us": dict(self.slo_budgets_us),
            "slo_violations": dict(self.slo_violations),
            "global": self.global_stream.state(),
            "tenants": {
                name: stream.state() for name, stream in self.tenant_streams.items()
            },
            "reservoir": self.reservoir.state(),
            "window": self.window.state(),
        }

    @classmethod
    def restore(cls, state: Mapping[str, Any]) -> "ServingMetrics":
        """Rebuild the metrics from :meth:`state` output."""
        metrics = cls(
            tenants=state["slo_budgets_us"],
            warmup_us=float(state["warmup_us"]),
            window_us=float(state["window"]["window_us"]),
            seed=int(state["seed"]),
            reservoir_capacity=int(state["reservoir"]["capacity"]),
        )
        metrics.warmup_discarded = int(state["warmup_discarded"])
        metrics.completed = int(state["completed"])
        metrics.zero_service = int(state.get("zero_service", 0))
        metrics.slo_violations = {
            name: int(count) for name, count in state["slo_violations"].items()
        }
        metrics.global_stream = _LatencyStream.restore(state["global"])
        metrics.tenant_streams = {
            name: _LatencyStream.restore(sub) for name, sub in state["tenants"].items()
        }
        metrics.reservoir = ReservoirSampler.restore(state["reservoir"])
        metrics.window = SlidingWindow.restore(state["window"])
        return metrics


__all__ = [
    "P2Quantile",
    "ReservoirSampler",
    "SlidingWindow",
    "ServingMetrics",
    "QUANTILES",
    "MIN_SERVICE_US",
]
