"""The workload-trace model: frozen, JSON-round-trippable request traces.

A :class:`WorkloadTrace` is the load generator's interchange format: one
record per *tenant* (a user population hitting the GPU through one arrival
stream) holding the tenant's absolute arrival timestamps, per-request size
samples and scheduling priority.  Traces are frozen dataclasses that
round-trip through plain dictionaries / JSON like
:class:`~repro.scenario.ScenarioSpec`, and additionally through a compact
JSONL on-disk format (:func:`save_trace` / :func:`load_trace`): one header
line followed by one line per tenant, each a compact sorted-key JSON object,
so a write → load → write cycle is *byte-identical* — the property the
loadgen test-suite pins.

Traces come from two places: synthesized by a registered trace source
(:data:`repro.registry.TRACE_SOURCES`, see :mod:`repro.loadgen.synth`) or
ingested from a file that some external system produced in this format.
Either way the downstream pipeline is the same:
:mod:`repro.loadgen.calibrate` maps the size samples onto kernel-grid
multipliers, :mod:`repro.loadgen.validate` checks the arrival statistics and
:mod:`repro.loadgen.compile` emits a runnable
:class:`~repro.scenario.ScenarioSpec`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

#: Version tag of the trace payload (bumped on incompatible changes).
TRACE_SCHEMA = 1
#: The ``kind`` marker of the JSONL header line.
TRACE_KIND = "workload-trace"


def _round3(value: float) -> float:
    return round(float(value), 3)


@dataclass(frozen=True)
class TraceTenant:
    """One tenant's request stream within a workload trace."""

    #: Tenant identifier (unique within the trace).
    name: str
    #: Absolute arrival timestamps (µs), non-decreasing, within the horizon.
    arrivals_us: Tuple[float, ...]
    #: Dimensionless request-size samples, one per arrival, all positive.
    #: Calibration maps these onto kernel-grid multipliers.
    sizes: Tuple[float, ...]
    #: Scheduling priority of the tenant's requests.
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        object.__setattr__(
            self, "arrivals_us", tuple(_round3(t) for t in self.arrivals_us)
        )
        object.__setattr__(self, "sizes", tuple(_round3(s) for s in self.sizes))
        if len(self.sizes) != len(self.arrivals_us):
            raise ValueError(
                f"tenant {self.name!r}: {len(self.sizes)} sizes for "
                f"{len(self.arrivals_us)} arrivals"
            )
        previous = 0.0
        for t in self.arrivals_us:
            if t < previous:
                raise ValueError(f"tenant {self.name!r}: arrivals must be non-decreasing")
            previous = t
        if any(t < 0 for t in self.arrivals_us):
            raise ValueError(f"tenant {self.name!r}: arrivals must be non-negative")
        if any(s <= 0 for s in self.sizes):
            raise ValueError(f"tenant {self.name!r}: sizes must be positive")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def gaps_us(self) -> List[float]:
        """Interarrival gaps (µs); the first gap is the first arrival time."""
        gaps: List[float] = []
        previous = 0.0
        for t in self.arrivals_us:
            gaps.append(_round3(t - previous))
            previous = t
        return gaps

    def mean_size(self) -> float:
        """Mean request size (1.0 when the tenant has no arrivals)."""
        return sum(self.sizes) / len(self.sizes) if self.sizes else 1.0

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        return {
            "name": self.name,
            "arrivals_us": list(self.arrivals_us),
            "sizes": list(self.sizes),
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceTenant":
        """Rebuild a tenant from :meth:`to_dict` output."""
        unknown = set(payload) - {"name", "arrivals_us", "sizes", "priority"}
        if unknown:
            raise ValueError(f"unknown TraceTenant keys: {sorted(unknown)}")
        return cls(
            name=str(payload["name"]),
            arrivals_us=tuple(payload["arrivals_us"]),
            sizes=tuple(payload["sizes"]),
            priority=int(payload.get("priority", 0)),
        )


@dataclass(frozen=True)
class WorkloadTrace:
    """A complete workload trace: per-tenant request streams over a horizon."""

    #: Human-readable trace name (rides into compiled scenario reports).
    name: str
    #: Trace horizon (µs); every arrival falls in ``[0, horizon_us]``.
    horizon_us: float
    #: Per-tenant streams, in a stable order.
    tenants: Tuple[TraceTenant, ...]
    #: Registry name of the synthesizing source (``""`` = ingested trace).
    source: str = ""
    #: Source parameters the trace was synthesized from (JSON-canonical).
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("trace name must be non-empty")
        object.__setattr__(self, "horizon_us", _round3(self.horizon_us))
        if self.horizon_us <= 0:
            raise ValueError("horizon_us must be positive")
        object.__setattr__(self, "tenants", tuple(self.tenants))
        if not self.tenants:
            raise ValueError("a trace needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        for tenant in self.tenants:
            if tenant.arrivals_us and tenant.arrivals_us[-1] > self.horizon_us:
                raise ValueError(
                    f"tenant {tenant.name!r} has arrivals past the horizon"
                )
        object.__setattr__(
            self, "params", json.loads(json.dumps(dict(self.params), sort_keys=True))
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def total_arrivals(self) -> int:
        """Total request count across all tenants."""
        return sum(len(tenant.arrivals_us) for tenant in self.tenants)

    def mean_rate_per_us(self) -> float:
        """Aggregate offered arrival rate (requests per simulated µs)."""
        return self.total_arrivals / self.horizon_us

    def pooled_gaps_us(self) -> List[float]:
        """Every tenant's interarrival gaps, concatenated in tenant order.

        The pooled per-stream gap sample is what validation compares across
        traces — it is the quantity the arrival processes actually draw.
        """
        gaps: List[float] = []
        for tenant in self.tenants:
            gaps.extend(tenant.gaps_us())
        return gaps

    # ------------------------------------------------------------------
    # Serialisation (dict / JSON)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        return {
            "schema": TRACE_SCHEMA,
            "kind": TRACE_KIND,
            "name": self.name,
            "horizon_us": self.horizon_us,
            "source": self.source,
            "params": dict(self.params),
            "tenants": [tenant.to_dict() for tenant in self.tenants],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkloadTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        schema = int(payload.get("schema", -1))
        if schema != TRACE_SCHEMA:
            raise ValueError(f"unsupported trace schema {schema!r}")
        kind = payload.get("kind", TRACE_KIND)
        if kind != TRACE_KIND:
            raise ValueError(f"not a workload trace (kind={kind!r})")
        unknown = set(payload) - {
            "schema", "kind", "name", "horizon_us", "source", "params", "tenants"
        }
        if unknown:
            raise ValueError(f"unknown WorkloadTrace keys: {sorted(unknown)}")
        return cls(
            name=str(payload["name"]),
            horizon_us=float(payload["horizon_us"]),
            tenants=tuple(
                TraceTenant.from_dict(tenant) for tenant in payload["tenants"]
            ),
            source=str(payload.get("source", "")),
            params=dict(payload.get("params", {})),
        )

    def to_json(self) -> str:
        """JSON form."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadTrace":
        """Rebuild a trace from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Serialisation (JSONL file format)
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The compact JSONL on-disk form: header line + one line per tenant.

        Keys are sorted and separators compact, so the same trace always
        serialises to the same bytes (write → load → write is identity).
        """
        header = {
            "schema": TRACE_SCHEMA,
            "kind": TRACE_KIND,
            "name": self.name,
            "horizon_us": self.horizon_us,
            "source": self.source,
            "params": dict(self.params),
            "tenants": len(self.tenants),
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        for tenant in self.tenants:
            lines.append(
                json.dumps(tenant.to_dict(), sort_keys=True, separators=(",", ":"))
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "WorkloadTrace":
        """Rebuild a trace from :meth:`to_jsonl` output."""
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("empty trace file")
        header = json.loads(lines[0])
        if not isinstance(header, dict):
            raise ValueError("trace header must be a JSON object")
        if int(header.get("schema", -1)) != TRACE_SCHEMA:
            raise ValueError(f"unsupported trace schema {header.get('schema')!r}")
        if header.get("kind") != TRACE_KIND:
            raise ValueError(f"not a workload trace (kind={header.get('kind')!r})")
        expected = int(header["tenants"])
        tenant_lines = lines[1:]
        if len(tenant_lines) != expected:
            raise ValueError(
                f"trace header promises {expected} tenant(s), "
                f"file has {len(tenant_lines)}"
            )
        return cls(
            name=str(header["name"]),
            horizon_us=float(header["horizon_us"]),
            tenants=tuple(
                TraceTenant.from_dict(json.loads(line)) for line in tenant_lines
            ),
            source=str(header.get("source", "")),
            params=dict(header.get("params", {})),
        )


def save_trace(trace: WorkloadTrace, path: str) -> None:
    """Write ``trace`` to ``path`` in the JSONL on-disk format."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(trace.to_jsonl())


def load_trace(path: str) -> WorkloadTrace:
    """Load a trace written by :func:`save_trace` (or an external producer)."""
    with open(path, "r", encoding="utf-8") as handle:
        return WorkloadTrace.from_jsonl(handle.read())


__all__ = [
    "TRACE_SCHEMA",
    "TRACE_KIND",
    "TraceTenant",
    "WorkloadTrace",
    "save_trace",
    "load_trace",
]
