"""Seed-deterministic workload-trace synthesis (the "millions of users" model).

Every synthesizer here is a *trace source*: a registered component
(:data:`repro.registry.TRACE_SOURCES`, :func:`repro.registry.register_trace_source`)
whose :meth:`~TraceSource.build` derives a complete
:class:`~repro.loadgen.trace.WorkloadTrace` from an integer seed.  All draws
go through :func:`repro.utils.determinism.hash_uniform` with key-addressed
components (seed, purpose, tenant, index) — never sequential RNG state — so
the same ``(source, seed, options)`` always yields byte-identical trace JSONL
on every platform, the reproducibility contract the rest of the repo's
generators follow.

The synthesis model layers three effects the FaaS-trace literature (e.g. the
Azure Functions 2019 dataset) reports for production request streams:

* **heavy-tailed interarrival gaps** — unit-mean Pareto or lognormal draws
  set the tail (``tail_alpha`` / ``sigma``);
* **bursty per-tenant streams** — an MMPP-style two-state modulator walks
  alternating burst/calm epochs in *time*; while bursting, the tenant's
  instantaneous rate is multiplied by ``burstiness``, and the calm-state rate
  is chosen so the long-run average rate still matches the request;
* **diurnal rate envelopes** — a sinusoidal multiplier with per-tenant phase
  models the day/night cycle compressed into the simulated horizon.

Tenant rates themselves are skewed (``rate_skew``): a Zipf-like weight makes
a few tenants hot and the rest cold, which is how "millions of users" behind
a handful of services actually load a shared GPU.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

from repro.loadgen.trace import TraceTenant, WorkloadTrace
from repro.registry import TRACE_SOURCES, register_trace_source
from repro.utils.determinism import hash_uniform

#: Namespace component so loadgen draws never collide with other users of
#: :func:`hash_uniform` (serving arrivals, the scenario fuzzer, ...).
_NS = "repro.loadgen.synth"

#: Hard per-tenant arrival bound — a misconfigured rate/horizon pair fails
#: loudly instead of materialising an unbounded trace in memory.
MAX_ARRIVALS_PER_TENANT = 1_000_000


def _u(seed: int, *key) -> float:
    """Deterministic uniform sample in [0, 1) for (seed, key)."""
    return hash_uniform(_NS, seed, *key)


class TraceSource:
    """Base class: a seed-deterministic workload-trace synthesizer.

    Subclasses configure the tail distribution and the modulation knobs;
    the arrival walk itself is shared.  Every parameter is recorded in the
    trace's ``params`` mapping, so a trace file alone identifies exactly how
    to regenerate it.
    """

    name = "base"

    def __init__(
        self,
        *,
        seed: int = 0,
        horizon_us: float = 100_000.0,
        num_tenants: int = 4,
        mean_interarrival_us: float = 500.0,
        rate_skew: float = 0.0,
        tail_alpha: float = 2.2,
        sigma: float = 0.8,
        burstiness: float = 1.0,
        burst_duty: float = 0.1,
        burst_epoch_us: float = 0.0,
        diurnal_depth: float = 0.0,
        diurnal_period_us: float = 0.0,
        size_sigma: float = 0.35,
        high_priority_tenants: int = 0,
        high_priority: int = 10,
    ):
        if horizon_us <= 0:
            raise ValueError("horizon_us must be positive")
        if num_tenants < 1:
            raise ValueError("num_tenants must be at least 1")
        if mean_interarrival_us <= 0:
            raise ValueError("mean_interarrival_us must be positive")
        if rate_skew < 0:
            raise ValueError("rate_skew must be non-negative")
        if tail_alpha <= 1.0:
            raise ValueError("tail_alpha must be > 1 (finite mean)")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if burstiness < 1.0:
            raise ValueError("burstiness must be >= 1")
        if not 0.0 < burst_duty < 1.0:
            raise ValueError("burst_duty must be in (0, 1)")
        if burstiness > 1.0 and burst_duty * burstiness >= 1.0:
            raise ValueError(
                "burst_duty * burstiness must stay below 1 so the calm-state "
                "rate that preserves the mean stays positive"
            )
        if not 0.0 <= diurnal_depth < 1.0:
            raise ValueError("diurnal_depth must be in [0, 1)")
        if size_sigma < 0:
            raise ValueError("size_sigma must be non-negative")
        if not 0 <= high_priority_tenants <= num_tenants:
            raise ValueError("high_priority_tenants must be in [0, num_tenants]")
        self.seed = int(seed)
        self.horizon_us = float(horizon_us)
        self.num_tenants = int(num_tenants)
        self.mean_interarrival_us = float(mean_interarrival_us)
        self.rate_skew = float(rate_skew)
        self.tail_alpha = float(tail_alpha)
        self.sigma = float(sigma)
        self.burstiness = float(burstiness)
        self.burst_duty = float(burst_duty)
        #: Mean burst/calm cycle length (µs); 0 = a tenth of the horizon.
        self.burst_epoch_us = float(burst_epoch_us) or self.horizon_us / 10.0
        self.diurnal_depth = float(diurnal_depth)
        #: Diurnal period (µs); 0 = half the horizon (two "days" per trace).
        self.diurnal_period_us = float(diurnal_period_us) or self.horizon_us / 2.0
        self.size_sigma = float(size_sigma)
        self.high_priority_tenants = int(high_priority_tenants)
        self.high_priority = int(high_priority)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _unit_gap(self, tenant: int, index: int) -> float:
        """A unit-mean interarrival draw for request ``index`` of ``tenant``."""
        raise NotImplementedError

    def _pareto_unit_gap(self, tenant: int, index: int) -> float:
        """Unit-mean Pareto draw with tail index :attr:`tail_alpha`."""
        u = _u(self.seed, "gap", tenant, index)
        xm = (self.tail_alpha - 1.0) / self.tail_alpha
        return xm / (1.0 - u) ** (1.0 / self.tail_alpha)

    def _lognormal_unit_gap(self, tenant: int, index: int) -> float:
        """Unit-mean lognormal draw with shape :attr:`sigma`."""
        u1 = max(_u(self.seed, "ln_u1", tenant, index), 1e-12)
        u2 = _u(self.seed, "ln_u2", tenant, index)
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return math.exp(self.sigma * z - self.sigma * self.sigma / 2.0)

    # ------------------------------------------------------------------
    # Rate model
    # ------------------------------------------------------------------
    def tenant_rates_per_us(self) -> List[float]:
        """Per-tenant base arrival rates (requests/µs), Zipf-skewed.

        Weights are ``(t + 1) ** -rate_skew`` normalised so the *aggregate*
        rate is ``num_tenants / mean_interarrival_us`` — skew redistributes
        load across tenants without changing the total offered load.
        """
        weights = [
            (t + 1) ** (-self.rate_skew) for t in range(self.num_tenants)
        ]
        total = sum(weights)
        aggregate = self.num_tenants / self.mean_interarrival_us
        return [aggregate * w / total for w in weights]

    def _envelope(self, tenant: int, t_us: float) -> float:
        """Diurnal rate multiplier at time ``t_us`` (mean 1 over a period)."""
        if self.diurnal_depth == 0.0:
            return 1.0
        phase = _u(self.seed, "phase", tenant)
        return 1.0 + self.diurnal_depth * math.sin(
            2.0 * math.pi * (t_us / self.diurnal_period_us + phase)
        )

    def _burst_rates(self, base_rate: float) -> Tuple[float, float]:
        """(burst-state rate, calm-state rate) preserving the mean rate."""
        if self.burstiness == 1.0:
            return base_rate, base_rate
        on = base_rate * self.burstiness
        off = base_rate * (1.0 - self.burst_duty * self.burstiness) / (
            1.0 - self.burst_duty
        )
        return on, off

    # ------------------------------------------------------------------
    # Synthesis
    # ------------------------------------------------------------------
    def _tenant_stream(
        self, tenant: int, base_rate: float
    ) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """Walk one tenant's arrival process to the horizon."""
        rate_on, rate_off = self._burst_rates(base_rate)
        # MMPP-style epoch walk: epoch ``n`` is bursting when even.  Epoch
        # lengths are exponential, keyed per epoch number, with means chosen
        # so the long-run burst-time fraction equals ``burst_duty``.
        epoch = 0
        epoch_end = 0.0
        bursting = False

        def advance_epochs(now_us: float) -> None:
            nonlocal epoch, epoch_end, bursting
            while epoch_end <= now_us:
                bursting = epoch % 2 == 0 and self.burstiness > 1.0
                mean_len = self.burst_epoch_us * (
                    self.burst_duty if bursting else (1.0 - self.burst_duty)
                )
                u = max(_u(self.seed, "epoch", tenant, epoch), 1e-12)
                epoch_end += -mean_len * math.log(u)
                epoch += 1

        arrivals: List[float] = []
        sizes: List[float] = []
        t = 0.0
        index = 0
        while True:
            advance_epochs(t)
            rate = (rate_on if bursting else rate_off) * self._envelope(tenant, t)
            gap = self._unit_gap(tenant, index) / max(rate, 1e-12)
            t += gap
            if t > self.horizon_us:
                break
            arrivals.append(t)
            sizes.append(self._size(tenant, index))
            index += 1
            if index > MAX_ARRIVALS_PER_TENANT:
                raise ValueError(
                    f"tenant {tenant} exceeded {MAX_ARRIVALS_PER_TENANT} "
                    "arrivals; lower the rate or shorten the horizon"
                )
        return tuple(arrivals), tuple(sizes)

    def _size(self, tenant: int, index: int) -> float:
        """A positive request-size sample (unit median, lognormal spread)."""
        if self.size_sigma == 0.0:
            return 1.0
        u1 = max(_u(self.seed, "size_u1", tenant, index), 1e-12)
        u2 = _u(self.seed, "size_u2", tenant, index)
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return max(0.05, math.exp(self.size_sigma * z))

    def params(self) -> Dict[str, Any]:
        """The source options, recorded into the trace for regeneration."""
        return {
            "seed": self.seed,
            "horizon_us": self.horizon_us,
            "num_tenants": self.num_tenants,
            "mean_interarrival_us": self.mean_interarrival_us,
            "rate_skew": self.rate_skew,
            "tail_alpha": self.tail_alpha,
            "sigma": self.sigma,
            "burstiness": self.burstiness,
            "burst_duty": self.burst_duty,
            "burst_epoch_us": self.burst_epoch_us,
            "diurnal_depth": self.diurnal_depth,
            "diurnal_period_us": self.diurnal_period_us,
            "size_sigma": self.size_sigma,
            "high_priority_tenants": self.high_priority_tenants,
            "high_priority": self.high_priority,
        }

    def build(self) -> WorkloadTrace:
        """Synthesize the complete trace."""
        tenants: List[TraceTenant] = []
        for tenant, rate in enumerate(self.tenant_rates_per_us()):
            arrivals, sizes = self._tenant_stream(tenant, rate)
            tenants.append(
                TraceTenant(
                    name=f"t{tenant}",
                    arrivals_us=arrivals,
                    sizes=sizes,
                    priority=(
                        self.high_priority
                        if tenant < self.high_priority_tenants
                        else 0
                    ),
                )
            )
        return WorkloadTrace(
            name=f"{self.name}-s{self.seed}",
            horizon_us=self.horizon_us,
            tenants=tuple(tenants),
            source=self.name,
            params=self.params(),
        )


@register_trace_source(
    "azure_faas",
    "faas",
    "azure",
    description="FaaS-style traffic: Zipf-skewed tenant rates, Pareto tails, "
    "diurnal envelope, MMPP burst epochs",
)
class AzureFaasSource(TraceSource):
    """The flagship source: all three production-traffic effects combined."""

    name = "azure_faas"

    def __init__(self, **options):
        options.setdefault("rate_skew", 1.0)
        options.setdefault("tail_alpha", 2.2)
        options.setdefault("burstiness", 6.0)
        options.setdefault("burst_duty", 0.1)
        options.setdefault("diurnal_depth", 0.4)
        options.setdefault("high_priority_tenants", 1)
        super().__init__(**options)

    def _unit_gap(self, tenant: int, index: int) -> float:
        return self._pareto_unit_gap(tenant, index)


@register_trace_source(
    "pareto_burst",
    description="homogeneous tenants with Pareto-tailed gaps and MMPP burst "
    "epochs (no diurnal envelope)",
)
class ParetoBurstSource(TraceSource):
    """Pure heavy-tail + burst model; the tail-index property-test target."""

    name = "pareto_burst"

    def __init__(self, **options):
        options.setdefault("tail_alpha", 2.5)
        options.setdefault("burstiness", 4.0)
        super().__init__(**options)

    def _unit_gap(self, tenant: int, index: int) -> float:
        return self._pareto_unit_gap(tenant, index)


@register_trace_source(
    "lognormal_diurnal",
    description="lognormal interarrival gaps under a diurnal rate envelope",
)
class LognormalDiurnalSource(TraceSource):
    """Lognormal gaps + day/night envelope; the CV property-test target."""

    name = "lognormal_diurnal"

    def __init__(self, **options):
        options.setdefault("sigma", 0.8)
        options.setdefault("diurnal_depth", 0.5)
        super().__init__(**options)

    def _unit_gap(self, tenant: int, index: int) -> float:
        return self._lognormal_unit_gap(tenant, index)


def synthesize_trace(source: str, **options) -> WorkloadTrace:
    """Build a trace from a registered source by name."""
    return TRACE_SOURCES.create(source, **options).build()


__all__ = [
    "MAX_ARRIVALS_PER_TENANT",
    "TraceSource",
    "AzureFaasSource",
    "ParetoBurstSource",
    "LognormalDiurnalSource",
    "synthesize_trace",
]
