"""Command-line entry point: ``python -m repro.loadgen.cli``.

The loadgen command group drives the trace pipeline end to end::

    # synthesize a trace (seed-deterministic, byte-stable JSONL)
    python -m repro.loadgen.cli generate --source azure_faas --seed 7 \
        --horizon-us 60000 --tenants 4 --out trace.jsonl

    # compare it against a reference trace (KS / mean / CV / tail index)
    python -m repro.loadgen.cli validate trace.jsonl --reference ref.jsonl

    # calibrate request sizes onto kernel-grid multipliers and emit a
    # runnable scenario (add --cluster-gpus for a fleet scenario)
    python -m repro.loadgen.cli compile trace.jsonl --out scenario.json \
        --target-utilization 0.6

    # run the compiled scenario; summary JSON goes to stdout (stderr carries
    # wall-clock chatter), so two runs can be diffed byte-for-byte
    python -m repro.loadgen.cli run scenario.json
    python -m repro.loadgen.cli run scenario.json --jobs 4          # fleet
    python -m repro.loadgen.cli run scenario.json --checkpoint-at 20000

Every step is deterministic: same seed + options ⇒ byte-identical trace
file, scenario JSON and run summary (serial, parallel and checkpoint-split
alike).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional

from repro.loadgen.calibrate import calibrate_trace
from repro.loadgen.compile import compile_serving_scenario
from repro.loadgen.trace import load_trace, save_trace
from repro.loadgen.validate import DEFAULT_THRESHOLDS, compare_traces, gap_stats
from repro.registry import TRACE_SOURCES


def _parse_option(text: str) -> Any:
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Synthesize, validate, calibrate and run trace-driven "
        "workloads ('millions of users' traffic).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a workload trace")
    gen.add_argument(
        "--source",
        default="azure_faas",
        help=f"trace source: {', '.join(TRACE_SOURCES.names())} "
        "(default: azure_faas)",
    )
    gen.add_argument("--seed", type=int, default=0, help="synthesis seed")
    gen.add_argument(
        "--horizon-us", type=float, default=60_000.0, help="trace horizon (µs)"
    )
    gen.add_argument("--tenants", type=int, default=4, help="number of tenants")
    gen.add_argument(
        "--mean-interarrival-us",
        type=float,
        default=400.0,
        help="per-tenant mean interarrival gap (µs)",
    )
    gen.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="extra source option (repeatable; VALUE parsed as JSON when "
        "possible, e.g. --option tail_alpha=2.5)",
    )
    gen.add_argument("--out", required=True, help="output trace file (JSONL)")

    val = sub.add_parser("validate", help="compare a trace against a reference")
    val.add_argument("trace", help="candidate trace file (JSONL)")
    val.add_argument("--reference", required=True, help="reference trace file")
    val.add_argument(
        "--ks-max",
        type=float,
        default=DEFAULT_THRESHOLDS["ks_max"],
        help=f"max pooled-gap KS distance (default: {DEFAULT_THRESHOLDS['ks_max']})",
    )
    val.add_argument("--json", action="store_true", help="emit the full comparison as JSON")

    comp = sub.add_parser(
        "compile", help="calibrate a trace and emit a runnable scenario"
    )
    comp.add_argument("trace", help="trace file (JSONL)")
    comp.add_argument("--out", required=True, help="output scenario file (JSON)")
    comp.add_argument(
        "--target-utilization",
        type=float,
        default=0.6,
        help="offered load / service capacity to calibrate for (default: 0.6)",
    )
    comp.add_argument("--app-seed", type=int, default=0, help="synthetic app family seed")
    comp.add_argument(
        "--num-apps", type=int, default=3, help="distinct base apps tenants cycle through"
    )
    comp.add_argument(
        "--scale",
        default="smoke",
        choices=["full", "reduced", "smoke"],
        help="workload scale the scenario (and calibration probes) run at",
    )
    comp.add_argument("--policy", default="ppq", help="scheduling policy (default: ppq)")
    comp.add_argument(
        "--mechanism",
        default="context_switch",
        help="preemption mechanism (default: context_switch)",
    )
    comp.add_argument(
        "--controller", default=None, help="preemption controller (default: none)"
    )
    comp.add_argument(
        "--cluster-gpus",
        type=int,
        default=0,
        metavar="N",
        help="emit a fleet scenario with N member GPUs (default: single GPU)",
    )

    run = sub.add_parser("run", help="run a compiled scenario, print its summary")
    run.add_argument("scenario", help="scenario file (JSON)")
    run.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="fleet worker processes (cluster scenarios only; default: serial)",
    )
    run.add_argument(
        "--checkpoint-at",
        type=float,
        nargs="*",
        default=[],
        metavar="US",
        help="quiesce/checkpoint/resume near these simulated times "
        "(serving scenarios only)",
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    options: Dict[str, Any] = {
        "seed": args.seed,
        "horizon_us": args.horizon_us,
        "num_tenants": args.tenants,
        "mean_interarrival_us": args.mean_interarrival_us,
    }
    for item in args.option:
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(f"--option expects KEY=VALUE, got {item!r}")
        options[key] = _parse_option(value)
    trace = TRACE_SOURCES.create(args.source, **options).build()
    save_trace(trace, args.out)
    stats = gap_stats(trace.pooled_gaps_us())
    print(
        f"{trace.name}: {trace.total_arrivals} arrivals, "
        f"{len(trace.tenants)} tenant(s), horizon {trace.horizon_us:.0f} µs, "
        f"mean gap {stats['mean_us']:.1f} µs, CV {stats['cv']:.2f}, "
        f"KS-to-Poisson {stats['ks_to_exponential']:.3f} -> {args.out}"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    candidate = load_trace(args.trace)
    reference = load_trace(args.reference)
    comparison = compare_traces(
        candidate, reference, thresholds={"ks_max": args.ks_max}
    )
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"KS {comparison.ks:.4f}  mean-rate err {comparison.mean_rate_rel:.4f}  "
            f"CV err {comparison.cv_rel:.4f}  tail err {comparison.tail_index_rel:.4f}"
        )
        for failure in comparison.failures():
            print(f"FAIL: {failure}")
        print("match" if comparison.ok else "no match")
    return 0 if comparison.ok else 1


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.scenario import SchemeSpec  # local: keeps import cheap

    trace = load_trace(args.trace)
    calibration = calibrate_trace(
        trace,
        app_seed=args.app_seed,
        num_apps=args.num_apps,
        scale=args.scale,
        target_utilization=args.target_utilization,
    )
    scheme = SchemeSpec(
        policy=args.policy, mechanism=args.mechanism, controller=args.controller
    )
    cluster = {"num_gpus": args.cluster_gpus} if args.cluster_gpus else None
    scenario = compile_serving_scenario(
        trace, calibration, scheme=scheme, cluster=cluster
    )
    with open(args.out, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(scenario.to_json() + "\n")
    print(
        f"{trace.name}: utilization {calibration.achieved_utilization:.3f} "
        f"(target {calibration.target_utilization}), size factor "
        f"{calibration.size_factor:.3f}, apps "
        f"{', '.join(sorted(set(calibration.apps.values())))} -> {args.out}"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.scenario import ScenarioSpec  # local: keeps import cheap

    with open(args.scenario, "r", encoding="utf-8") as handle:
        scenario = ScenarioSpec.from_json(handle.read())
    started = time.time()
    if scenario.cluster is not None:
        from repro.cluster.fleet import run_fleet
        from repro.runner import BatchRunner

        if args.checkpoint_at:
            raise SystemExit("--checkpoint-at applies to serving scenarios only")
        runner = BatchRunner(jobs=args.jobs) if args.jobs != 1 else None
        summary = run_fleet(scenario, runner=runner).summary
    else:
        from repro.serving.driver import run_serving

        summary = run_serving(scenario, checkpoint_at=args.checkpoint_at).summary
    # Summary to stdout, wall-clock to stderr: two runs of the same scenario
    # must produce byte-identical stdout regardless of --jobs/--checkpoint-at.
    print(json.dumps(summary, indent=2, sort_keys=True))
    print(f"wall-clock: {time.time() - started:.2f} s", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "validate": _cmd_validate,
        "compile": _cmd_compile,
        "run": _cmd_run,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
