"""Calibration: map trace request sizes onto kernel-grid multipliers.

A :class:`~repro.loadgen.trace.WorkloadTrace` carries *dimensionless*
request-size samples; the simulator runs *kernels*.  Calibration bridges the
two, in the spirit of the FaaS loadgen's ``calibrate.py``: it measures how
long the synthetic app family's kernels actually take on the simulated GPU
(:func:`probe_service_time_us` launches them on a fresh idle
:class:`~repro.system.GPUSystem` and reads the simulated clock — no
analytical shortcuts, the probe sees occupancy limits and launch overheads
exactly as a serving run will) and then fits a single scale factor ``c``
mapping each tenant's mean request size to a ``syn-<seed>-<index>-x<mult>``
grid multiplier:

``mult(tenant) = clamp(round(c * mean_size(tenant)), 1, max_multiplier)``

``c`` is chosen so the *offered load* — the sum over tenants of arrival rate
x probed per-request service time — tracks the simulated service capacity at
``target_utilization``.  The fitted mapping, every probed service time and
the achieved utilization are reported in a frozen, JSON-round-trippable
:class:`CalibrationResult`, which :func:`repro.loadgen.compile.compile_serving_scenario`
consumes to pick each tenant's application.

Everything is deterministic: probes are pure simulation, the scan grid is
fixed, and the result serialises to stable JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.loadgen.trace import WorkloadTrace

#: Log-spaced scan grid size for the size→multiplier factor ``c``.
_SCAN_POINTS = 48
#: Scan range of ``c`` relative to ``max_multiplier`` (lower bound fixed).
_SCAN_LO = 0.05


def probe_service_time_us(app: str, *, scale=None, config=None) -> float:
    """Mean simulated duration (µs) of one request-kernel of ``app``.

    The serving layer launches exactly one kernel per admitted request,
    cycling the app's kernels round-robin, so the mean single-kernel
    completion time on an otherwise idle GPU *is* the per-request service
    demand.  Kernels are launched strictly one at a time (the simulator runs
    to idle between launches) so the probe measures service time, not
    queueing.
    """
    from repro.system import GPUSystem  # local: avoids import cycle
    from repro.workloads.scale import WorkloadScale
    from repro.workloads.synthetic import SyntheticSuite

    if scale is None:
        scale = WorkloadScale.smoke()
    elif isinstance(scale, str):
        scale = WorkloadScale.by_name(scale)
    if config is None:
        from repro.gpu.config import SystemConfig

        config = scale.scale_config(SystemConfig())

    trace = SyntheticSuite(scale).trace(app)
    system = GPUSystem(config)
    context = system.driver.create_context(f"probe:{app}")
    durations: List[float] = []
    for name in sorted(trace.kernels):
        start = system.simulator.now
        done: List[float] = []
        command = system.driver.launch_kernel(context, trace.kernels[name])
        command.subscribe_completion(lambda t, done=done: done.append(t))
        system.simulator.run()
        if not done:
            raise RuntimeError(f"probe kernel {name!r} of {app!r} never completed")
        durations.append(done[0] - start)
    return sum(durations) / len(durations)


@dataclass(frozen=True)
class CalibrationResult:
    """The fitted size→multiplier mapping for one trace (JSON-round-trips)."""

    #: Seed of the synthetic app family the tenants were mapped onto.
    app_seed: int
    #: Number of distinct base apps tenants cycle through.
    num_apps: int
    #: Workload-scale name the probes ran at.
    scale: str
    #: Requested utilization (offered load / capacity).
    target_utilization: float
    #: The fitted size→multiplier factor ``c``.
    size_factor: float
    #: Utilization achieved by the fitted mapping.
    achieved_utilization: float
    #: Tenant name → assigned application name (``syn-…-x<mult>``).
    apps: Mapping[str, str]
    #: Application name → probed per-request service time (µs).
    service_times_us: Mapping[str, float]
    #: Tenant name → offered arrival rate (requests/µs) used in the fit.
    rates_per_us: Mapping[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        return {
            "app_seed": self.app_seed,
            "num_apps": self.num_apps,
            "scale": self.scale,
            "target_utilization": self.target_utilization,
            "size_factor": self.size_factor,
            "achieved_utilization": self.achieved_utilization,
            "apps": dict(self.apps),
            "service_times_us": dict(self.service_times_us),
            "rates_per_us": dict(self.rates_per_us),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CalibrationResult":
        """Rebuild a result from :meth:`to_dict` output."""
        unknown = set(payload) - {
            "app_seed", "num_apps", "scale", "target_utilization",
            "size_factor", "achieved_utilization", "apps",
            "service_times_us", "rates_per_us",
        }
        if unknown:
            raise ValueError(f"unknown CalibrationResult keys: {sorted(unknown)}")
        return cls(
            app_seed=int(payload["app_seed"]),
            num_apps=int(payload["num_apps"]),
            scale=str(payload["scale"]),
            target_utilization=float(payload["target_utilization"]),
            size_factor=float(payload["size_factor"]),
            achieved_utilization=float(payload["achieved_utilization"]),
            apps=dict(payload["apps"]),
            service_times_us={
                k: float(v) for k, v in dict(payload["service_times_us"]).items()
            },
            rates_per_us={
                k: float(v) for k, v in dict(payload.get("rates_per_us", {})).items()
            },
        )


def calibrate_trace(
    trace: WorkloadTrace,
    *,
    app_seed: int = 0,
    num_apps: int = 3,
    scale: Any = "smoke",
    target_utilization: float = 0.6,
    max_multiplier: int = 128,
    config=None,
) -> CalibrationResult:
    """Fit the size→multiplier mapping for ``trace`` at ``target_utilization``.

    Tenant ``t`` (in trace order) is assigned base app
    ``syn-<app_seed>-<t % num_apps>`` at multiplier
    ``clamp(round(c * mean_size(t)), 1, max_multiplier)``; the factor ``c``
    is scanned over a fixed log-spaced grid and the value whose offered load
    lands closest to ``target_utilization`` (one GPU's capacity) wins.
    Service times are probed once per distinct ``(app index, multiplier)``
    pair and cached across the scan.
    """
    from repro.workloads.scale import WorkloadScale
    from repro.workloads.synthetic import synthetic_app_name

    if not 0.0 < target_utilization <= 2.0:
        raise ValueError("target_utilization must be in (0, 2]")
    if num_apps < 1:
        raise ValueError("num_apps must be at least 1")
    if max_multiplier < 1:
        raise ValueError("max_multiplier must be at least 1")
    scale_obj = (
        WorkloadScale.by_name(scale) if isinstance(scale, str) else scale
    )

    tenants = trace.tenants
    rates = {
        t.name: len(t.arrivals_us) / trace.horizon_us for t in tenants
    }
    mean_sizes = {t.name: t.mean_size() for t in tenants}
    app_index = {
        t.name: i % num_apps for i, t in enumerate(tenants)
    }

    service_cache: Dict[Tuple[int, int], float] = {}

    def service(index: int, mult: int) -> float:
        key = (index, mult)
        if key not in service_cache:
            name = synthetic_app_name(app_seed, index, mult)
            service_cache[key] = probe_service_time_us(
                name, scale=scale_obj, config=config
            )
        return service_cache[key]

    def mult_for(c: float, tenant: str) -> int:
        return max(1, min(max_multiplier, round(c * mean_sizes[tenant])))

    def utilization(c: float) -> float:
        return sum(
            rates[t.name] * service(app_index[t.name], mult_for(c, t.name))
            for t in tenants
        )

    lo = _SCAN_LO
    hi = float(max_multiplier) / max(min(mean_sizes.values()), 1e-9)
    best_c = lo
    best_err = float("inf")
    for i in range(_SCAN_POINTS):
        c = lo * (hi / lo) ** (i / (_SCAN_POINTS - 1))
        err = abs(utilization(c) - target_utilization)
        if err < best_err - 1e-12:
            best_err = err
            best_c = c

    apps = {
        t.name: synthetic_app_name(
            app_seed, app_index[t.name], mult_for(best_c, t.name)
        )
        for t in tenants
    }
    service_times = {
        apps[t.name]: service(app_index[t.name], mult_for(best_c, t.name))
        for t in tenants
    }
    return CalibrationResult(
        app_seed=app_seed,
        num_apps=num_apps,
        scale=scale_obj.name,
        target_utilization=target_utilization,
        size_factor=round(best_c, 6),
        achieved_utilization=round(utilization(best_c), 6),
        apps=apps,
        service_times_us={k: round(v, 3) for k, v in service_times.items()},
        rates_per_us={k: round(v, 9) for k, v in rates.items()},
    )


__all__ = [
    "CalibrationResult",
    "calibrate_trace",
    "probe_service_time_us",
]
