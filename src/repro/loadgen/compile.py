"""Compile a calibrated workload trace into a runnable scenario.

The compiler is the last loadgen stage: it takes a
:class:`~repro.loadgen.trace.WorkloadTrace` plus the
:class:`~repro.loadgen.calibrate.CalibrationResult` that mapped its tenants
onto ``syn-…-x<mult>`` applications, and emits an ordinary
:class:`~repro.scenario.ScenarioSpec` whose ``arrivals=`` section carries one
``replay`` tenant per trace tenant (the tenant's interarrival-gap list,
``wrap=False`` so the trace's request count is exact).  Nothing downstream
changes: :class:`~repro.serving.driver.ServingDriver` replays the gaps
through the ordinary arrival-process machinery,
:class:`~repro.cluster.fleet.GPUFleet` routes the same streams across member
GPUs when a ``cluster=`` section is added, and serial / parallel /
checkpoint-split executions of the compiled scenario stay byte-identical
because replay streams are resumable cursors like every other process.

The compiled spec is a pure function of ``(trace, calibration, options)`` —
compiling the same trace twice yields identical scenario JSON.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.loadgen.calibrate import CalibrationResult
from repro.loadgen.trace import WorkloadTrace
from repro.scenario import ScenarioSpec, SchemeSpec

#: Scheme used when the caller does not pick one: priority preemptive
#: scheduling with context-switch preemption — the paper's headline scheme.
DEFAULT_SCHEME = SchemeSpec(policy="ppq", mechanism="context_switch")


def compile_serving_scenario(
    trace: WorkloadTrace,
    calibration: CalibrationResult,
    *,
    scheme: Optional[SchemeSpec] = None,
    admission: str = "drop",
    queue_capacity: int = 64,
    max_inflight: int = 8,
    warmup_us: float = 0.0,
    slo: Optional[Mapping[str, Any]] = None,
    cluster: Optional[Mapping[str, Any]] = None,
    metrics: Optional[Mapping[str, Any]] = None,
    validate: bool = False,
    workload_id: int = 0,
) -> ScenarioSpec:
    """Emit the :class:`ScenarioSpec` that serves ``trace`` as calibrated.

    Tenant ``i`` of the trace becomes application slot ``i`` running the app
    ``calibration.apps[tenant.name]`` behind a non-wrapping ``replay``
    arrival stream carrying the tenant's gap list; tenant priorities ride
    into the per-tenant specs.  The scenario horizon is the trace horizon
    and the workload scale is the calibration's probe scale, so offered
    load meets service capacity exactly as fitted.
    """
    if scheme is None:
        scheme = DEFAULT_SCHEME
    missing = [t.name for t in trace.tenants if t.name not in calibration.apps]
    if missing:
        raise ValueError(
            f"calibration does not cover trace tenant(s): {missing} "
            "(was it fitted against a different trace?)"
        )
    empty = [t.name for t in trace.tenants if not t.arrivals_us]
    if empty:
        raise ValueError(
            f"trace tenant(s) with no arrivals cannot be compiled: {empty} "
            "(replay needs a non-empty gap list)"
        )

    applications = [calibration.apps[t.name] for t in trace.tenants]
    tenant_specs = []
    for slot, tenant in enumerate(trace.tenants):
        tenant_specs.append(
            {
                "process": "replay",
                "seed": slot,
                "priority": tenant.priority,
                "interarrival_us": tenant.gaps_us(),
                "wrap": False,
            }
        )
    arrivals: Dict[str, Any] = {
        "horizon_us": trace.horizon_us,
        "admission": admission,
        "queue_capacity": int(queue_capacity),
        "max_inflight": int(max_inflight),
        "tenants": tenant_specs,
    }
    if warmup_us > 0.0:
        arrivals["warmup_us"] = float(warmup_us)

    return ScenarioSpec(
        scheme=scheme,
        applications=tuple(applications),
        workload_id=workload_id,
        scale=calibration.scale,
        arrivals=arrivals,
        slo=slo,
        cluster=cluster,
        metrics=metrics,
        validate=validate,
    )


__all__ = ["DEFAULT_SCHEME", "compile_serving_scenario"]
