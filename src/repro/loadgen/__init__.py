"""Trace-driven workload generation: synthesize, calibrate, validate, compile.

The loadgen subsystem turns "millions of users" into runnable scenarios:

* :mod:`repro.loadgen.trace` — the frozen :class:`WorkloadTrace` model and
  its byte-stable JSONL on-disk format;
* :mod:`repro.loadgen.synth` — seed-deterministic trace sources
  (:data:`repro.registry.TRACE_SOURCES`) with heavy tails, diurnal
  envelopes and MMPP-style burst epochs;
* :mod:`repro.loadgen.calibrate` — fit request sizes onto kernel-grid
  multipliers so offered load tracks service capacity;
* :mod:`repro.loadgen.validate` — KS / mean / CV / tail-index comparisons
  between traces;
* :mod:`repro.loadgen.compile` — emit :class:`~repro.scenario.ScenarioSpec`
  ``arrivals=`` sections (per-tenant ``replay`` gap lists) that
  :class:`~repro.serving.driver.ServingDriver` and
  :class:`~repro.cluster.fleet.GPUFleet` consume unchanged;
* :mod:`repro.loadgen.cli` — the ``generate`` / ``validate`` / ``compile`` /
  ``run`` command group.
"""

from repro.loadgen.trace import (
    TraceTenant,
    WorkloadTrace,
    load_trace,
    save_trace,
)
from repro.loadgen.synth import TraceSource, synthesize_trace

__all__ = [
    "TraceTenant",
    "WorkloadTrace",
    "load_trace",
    "save_trace",
    "TraceSource",
    "synthesize_trace",
]
