"""Statistical validation of workload traces (KS / mean / CV / tail index).

The validator answers two questions the ROADMAP's trace-tooling item poses
(in the spirit of ``compare_workload_to_azure.py``):

* *does a synthesized trace match its reference?* —
  :func:`compare_traces` computes the two-sample Kolmogorov–Smirnov
  statistic over pooled interarrival gaps plus relative mean-rate, CV and
  Hill tail-index errors, and judges them against documented thresholds
  (:data:`DEFAULT_THRESHOLDS`);
* *how far is a trace from Poisson?* — :func:`ks_to_exponential` measures
  the one-sample KS distance between the trace's gaps and the exponential
  distribution with the same mean, which is the headline "burstiness
  distance" the ``trace_serving`` experiment reports.

Everything here is pure arithmetic on gap lists — no SciPy, no sampling —
so results are exactly reproducible across platforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence

from repro.loadgen.trace import WorkloadTrace

#: Default acceptance thresholds for :func:`compare_traces`.  A synthesized
#: trace "matches" its reference when the pooled-gap KS distance stays below
#: ``ks_max`` and the relative mean-rate / CV / tail-index errors stay below
#: their bounds.  The KS bound is deliberately loose (0.15): the samples are
#: finite, the sources heavy-tailed, and we are matching a *family*, not
#: fitting a curve.  The loadgen test-suite pins these numbers.
DEFAULT_THRESHOLDS: Mapping[str, float] = {
    "ks_max": 0.15,
    "mean_rate_rel_max": 0.25,
    "cv_rel_max": 0.35,
    "tail_index_rel_max": 0.45,
}

#: Fraction of the largest gap samples fed to the Hill tail estimator.
HILL_TAIL_FRACTION = 0.1


def ks_statistic(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (sup |F_a - F_b|)."""
    if not sample_a or not sample_b:
        raise ValueError("KS statistic needs two non-empty samples")
    a = sorted(sample_a)
    b = sorted(sample_b)
    na, nb = len(a), len(b)
    i = j = 0
    d = 0.0
    while i < na and j < nb:
        # Advance past ties on both sides together, so equal values move
        # both empirical CDFs before the gap is measured.
        value = a[i] if a[i] <= b[j] else b[j]
        while i < na and a[i] == value:
            i += 1
        while j < nb and b[j] == value:
            j += 1
        d = max(d, abs(i / na - j / nb))
    return d


def ks_to_exponential(gaps: Sequence[float]) -> float:
    """One-sample KS distance between ``gaps`` and Exp(mean(gaps)).

    Zero for a perfectly Poisson stream; grows with burstiness/heavy tails.
    Zero-length gaps (coincident arrivals) are counted at CDF value 0.
    """
    values = [g for g in gaps if g >= 0]
    if not values:
        raise ValueError("ks_to_exponential needs a non-empty gap sample")
    mean = sum(values) / len(values)
    if mean <= 0:
        return 1.0
    values.sort()
    n = len(values)
    d = 0.0
    for k, g in enumerate(values):
        model = 1.0 - math.exp(-g / mean)
        d = max(d, abs((k + 1) / n - model), abs(k / n - model))
    return d


def hill_tail_index(
    sample: Sequence[float], tail_fraction: float = HILL_TAIL_FRACTION
) -> float:
    """Hill estimator of the tail index alpha over the top ``tail_fraction``.

    For Pareto(alpha) data the estimate converges to ``alpha``; larger
    values mean lighter tails.  Returns ``inf`` when the tail carries no
    spread (degenerate sample).
    """
    positives = sorted((x for x in sample if x > 0), reverse=True)
    if len(positives) < 10:
        raise ValueError("hill_tail_index needs at least 10 positive samples")
    k = max(2, int(len(positives) * tail_fraction))
    threshold = positives[k]
    if threshold <= 0:
        return math.inf
    acc = 0.0
    for x in positives[:k]:
        acc += math.log(x / threshold)
    if acc <= 0:
        return math.inf
    return k / acc


def gap_stats(gaps: Sequence[float]) -> Dict[str, float]:
    """Summary statistics of a gap sample: mean, CV, tail index, KS-to-exp."""
    if not gaps:
        raise ValueError("gap_stats needs a non-empty sample")
    n = len(gaps)
    mean = sum(gaps) / n
    var = sum((g - mean) ** 2 for g in gaps) / n
    cv = math.sqrt(var) / mean if mean > 0 else 0.0
    try:
        tail = hill_tail_index(gaps)
    except ValueError:
        tail = math.inf
    return {
        "count": float(n),
        "mean_us": mean,
        "cv": cv,
        "tail_index": tail,
        "ks_to_exponential": ks_to_exponential(gaps),
    }


def _rel_error(measured: float, reference: float) -> float:
    if reference == 0:
        return 0.0 if measured == 0 else math.inf
    if math.isinf(reference):
        return 0.0 if math.isinf(measured) else math.inf
    return abs(measured - reference) / abs(reference)


@dataclass(frozen=True)
class TraceComparison:
    """Outcome of :func:`compare_traces` (JSON-serialisable via to_dict)."""

    #: Two-sample KS statistic over pooled interarrival gaps.
    ks: float
    #: Relative error of aggregate mean arrival rate.
    mean_rate_rel: float
    #: Relative error of pooled-gap coefficient of variation.
    cv_rel: float
    #: Relative error of the Hill tail index.
    tail_index_rel: float
    #: Gap statistics of the candidate trace.
    candidate_stats: Mapping[str, float]
    #: Gap statistics of the reference trace.
    reference_stats: Mapping[str, float]
    #: Thresholds the comparison was judged against.
    thresholds: Mapping[str, float]

    @property
    def ok(self) -> bool:
        """True when every metric is within its threshold."""
        return not self.failures()

    def failures(self) -> List[str]:
        """Human-readable list of threshold violations (empty = match)."""
        t = self.thresholds
        out: List[str] = []
        if self.ks > t["ks_max"]:
            out.append(f"KS {self.ks:.4f} > {t['ks_max']}")
        if self.mean_rate_rel > t["mean_rate_rel_max"]:
            out.append(
                f"mean-rate error {self.mean_rate_rel:.4f} > {t['mean_rate_rel_max']}"
            )
        if self.cv_rel > t["cv_rel_max"]:
            out.append(f"CV error {self.cv_rel:.4f} > {t['cv_rel_max']}")
        if self.tail_index_rel > t["tail_index_rel_max"]:
            out.append(
                f"tail-index error {self.tail_index_rel:.4f} > {t['tail_index_rel_max']}"
            )
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        return {
            "ok": self.ok,
            "ks": self.ks,
            "mean_rate_rel": self.mean_rate_rel,
            "cv_rel": self.cv_rel,
            "tail_index_rel": self.tail_index_rel,
            "failures": self.failures(),
            "candidate_stats": dict(self.candidate_stats),
            "reference_stats": dict(self.reference_stats),
            "thresholds": dict(self.thresholds),
        }


def compare_traces(
    candidate: WorkloadTrace,
    reference: WorkloadTrace,
    thresholds: Mapping[str, float] = DEFAULT_THRESHOLDS,
) -> TraceComparison:
    """Compare ``candidate`` against ``reference`` over pooled gaps."""
    merged = dict(DEFAULT_THRESHOLDS)
    merged.update(thresholds)
    cand_gaps = candidate.pooled_gaps_us()
    ref_gaps = reference.pooled_gaps_us()
    cand_stats = gap_stats(cand_gaps)
    ref_stats = gap_stats(ref_gaps)
    return TraceComparison(
        ks=ks_statistic(cand_gaps, ref_gaps),
        mean_rate_rel=_rel_error(
            candidate.mean_rate_per_us(), reference.mean_rate_per_us()
        ),
        cv_rel=_rel_error(cand_stats["cv"], ref_stats["cv"]),
        tail_index_rel=_rel_error(
            cand_stats["tail_index"], ref_stats["tail_index"]
        ),
        candidate_stats=cand_stats,
        reference_stats=ref_stats,
        thresholds=merged,
    )


__all__ = [
    "DEFAULT_THRESHOLDS",
    "HILL_TAIL_FRACTION",
    "TraceComparison",
    "compare_traces",
    "gap_stats",
    "hill_tail_index",
    "ks_statistic",
    "ks_to_exponential",
]
