"""Component registries for the pluggable parts of the simulated system.

Six registries replace the old hard-coded ``make_policy`` /
``make_mechanism`` string factories:

* :data:`POLICIES` — scheduling policies (``fcfs``, ``npq``, ``ppq``,
  ``ppq_shared``, ``dss``, ...),
* :data:`MECHANISMS` — preemption mechanisms (``context_switch``,
  ``draining``),
* :data:`CONTROLLERS` — preemption controllers, consulted per preemption
  request to pick the mechanism (``static``, ``hybrid``, ``adaptive``),
* :data:`TRANSFER_POLICIES` — data-transfer engine scheduling policies
  (``fcfs``, ``npq``),
* :data:`ARRIVALS` — open-loop request arrival processes for the serving
  layer (``poisson``, ``mmpp``, ``lognormal``, ``pareto``, ``replay``),
* :data:`ROUTERS` — cluster request routers placing admitted requests on
  fleet member GPUs (``round_robin``, ``least_loaded``, ``tenant_affinity``,
  ``priority_spill``),
* :data:`TRACE_SOURCES` — workload-trace synthesizers for the trace-driven
  load generator (``azure_faas``, ``pareto_burst``, ``lognormal_diurnal``),
* :data:`EVENT_QUEUES` — simulation event-queue implementations backing the
  engine's scheduling hot path (``heap``, ``calendar``).

The built-in components register themselves with the
:func:`register_policy` / :func:`register_mechanism` /
:func:`register_controller` / :func:`register_transfer_policy` decorators in
their defining modules; the registries lazily import those modules on first
lookup, so importing :mod:`repro.registry` alone stays cheap and cycle-free.

Third-party code can plug in new components without touching the core:

>>> from repro.registry import register_policy
>>> from repro.core.policies.fcfs import FCFSPolicy
>>> @register_policy("yield_often", description="demo policy")
... class YieldOftenPolicy(FCFSPolicy):
...     name = "yield_often"

After registration, ``GPUSystem(policy="yield_often")``, scheme specs and
the experiment CLI all resolve the new name like any built-in one.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple


def normalize_name(name: str) -> str:
    """Canonicalise a component name (case, dashes and spaces)."""
    return name.strip().lower().replace("-", "_").replace(" ", "_")


class UnknownComponentError(ValueError):
    """Raised when a registry lookup fails; message suggests close matches."""

    def __init__(self, kind: str, name: str, candidates: List[str]):
        self.kind = kind
        self.name = name
        self.suggestions = difflib.get_close_matches(
            normalize_name(name), candidates, n=3, cutoff=0.5
        )
        message = f"unknown {kind}: {name!r}"
        if self.suggestions:
            message += f" (did you mean: {', '.join(self.suggestions)}?)"
        message += f"; registered: {', '.join(sorted(candidates))}"
        super().__init__(message)


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component factory."""

    #: Canonical name the component was registered under.
    name: str
    #: Class or callable invoked by :meth:`ComponentRegistry.create`.
    factory: Callable[..., Any]
    #: Alternative names accepted by lookups.
    aliases: Tuple[str, ...] = ()
    #: Keyword defaults applied unless the caller passes the key explicitly.
    defaults: Mapping[str, Any] = field(default_factory=dict)
    #: Keyword arguments forced on every instantiation (caller cannot unset).
    overrides: Mapping[str, Any] = field(default_factory=dict)
    #: One-line human-readable description (shown by ``--list``).
    description: str = ""

    def create(self, **kwargs) -> Any:
        """Instantiate the component with defaults/overrides applied."""
        merged = dict(self.defaults)
        merged.update(kwargs)
        merged.update(self.overrides)
        return self.factory(**merged)


class ComponentRegistry:
    """A name → factory registry with aliases and lazy built-in loading."""

    def __init__(self, kind: str, loader: Optional[Callable[[], None]] = None):
        #: Human-readable component kind used in error messages.
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}
        self._index: Dict[str, str] = {}  # normalized alias -> canonical name
        self._loader = loader
        self._loaded = loader is None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        *aliases: str,
        defaults: Optional[Mapping[str, Any]] = None,
        overrides: Optional[Mapping[str, Any]] = None,
        description: Optional[str] = None,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering ``factory`` under ``name`` (plus aliases)."""

        def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
            self.add(
                name,
                factory,
                *aliases,
                defaults=defaults,
                overrides=overrides,
                description=description,
            )
            return factory

        return decorator

    def add(
        self,
        name: str,
        factory: Callable[..., Any],
        *aliases: str,
        defaults: Optional[Mapping[str, Any]] = None,
        overrides: Optional[Mapping[str, Any]] = None,
        description: Optional[str] = None,
    ) -> RegistryEntry:
        """Register ``factory`` directly (non-decorator form)."""
        canonical = normalize_name(name)
        all_names = [canonical, *(normalize_name(alias) for alias in aliases)]
        for candidate in all_names:
            if candidate in self._index:
                raise ValueError(
                    f"{self.kind} {candidate!r} is already registered "
                    f"(by {self._index[candidate]!r})"
                )
        if description is None:
            doc = getattr(factory, "__doc__", None) or ""
            description = doc.strip().splitlines()[0] if doc.strip() else ""
        entry = RegistryEntry(
            name=canonical,
            factory=factory,
            aliases=tuple(all_names[1:]),
            defaults=dict(defaults or {}),
            overrides=dict(overrides or {}),
            description=description,
        )
        self._entries[canonical] = entry
        for candidate in all_names:
            self._index[candidate] = canonical
        return entry

    def unregister(self, name: str) -> None:
        """Remove a registration (used by tests and hot-reload tooling)."""
        entry = self.entry(name)
        del self._entries[entry.name]
        for alias in (entry.name, *entry.aliases):
            self._index.pop(alias, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self._loaded = True
            self._loader()  # type: ignore[misc]

    def entry(self, name: str) -> RegistryEntry:
        """Look up the entry for ``name`` (canonical name or alias)."""
        self._ensure_loaded()
        canonical = self._index.get(normalize_name(name))
        if canonical is None:
            raise UnknownComponentError(self.kind, name, list(self._index))
        return self._entries[canonical]

    def create(self, name: str, **kwargs) -> Any:
        """Instantiate the component registered under ``name``."""
        return self.entry(name).create(**kwargs)

    def canonical_name(self, name: str) -> str:
        """Resolve ``name`` (possibly an alias) to its canonical name."""
        return self.entry(name).name

    def names(self) -> List[str]:
        """Sorted canonical names of every registered component."""
        self._ensure_loaded()
        return sorted(self._entries)

    def describe(self) -> Dict[str, str]:
        """Canonical name → one-line description, for ``--list`` output."""
        self._ensure_loaded()
        return {name: self._entries[name].description for name in self.names()}

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        self._ensure_loaded()
        return normalize_name(name) in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComponentRegistry(kind={self.kind!r}, names={self.names()})"


# ----------------------------------------------------------------------
# The three registries (built-ins are imported lazily on first lookup)
# ----------------------------------------------------------------------
def _load_builtin_policies() -> None:
    import repro.core.policies  # noqa: F401  (registers on import)


def _load_builtin_mechanisms() -> None:
    import repro.core.preemption  # noqa: F401


def _load_builtin_controllers() -> None:
    import repro.core.preemption.controller  # noqa: F401


def _load_builtin_transfer_policies() -> None:
    import repro.memory.transfer_engine  # noqa: F401


def _load_builtin_arrivals() -> None:
    import repro.serving.arrivals  # noqa: F401


def _load_builtin_routers() -> None:
    import repro.cluster.routing  # noqa: F401


def _load_builtin_exporters() -> None:
    import repro.obs.exporters  # noqa: F401


def _load_builtin_trace_sources() -> None:
    import repro.loadgen.synth  # noqa: F401


def _load_builtin_event_queues() -> None:
    import repro.sim.queues  # noqa: F401


POLICIES = ComponentRegistry("scheduling policy", _load_builtin_policies)
MECHANISMS = ComponentRegistry("preemption mechanism", _load_builtin_mechanisms)
CONTROLLERS = ComponentRegistry("preemption controller", _load_builtin_controllers)
TRANSFER_POLICIES = ComponentRegistry(
    "transfer scheduling policy", _load_builtin_transfer_policies
)
ARRIVALS = ComponentRegistry("arrival process", _load_builtin_arrivals)
ROUTERS = ComponentRegistry("cluster router", _load_builtin_routers)
EXPORTERS = ComponentRegistry("metrics exporter", _load_builtin_exporters)
TRACE_SOURCES = ComponentRegistry("trace source", _load_builtin_trace_sources)
EVENT_QUEUES = ComponentRegistry("event queue", _load_builtin_event_queues)


def register_policy(name: str, *aliases: str, **kwargs):
    """Register a scheduling policy class/factory (decorator)."""
    return POLICIES.register(name, *aliases, **kwargs)


def register_mechanism(name: str, *aliases: str, **kwargs):
    """Register a preemption mechanism class/factory (decorator)."""
    return MECHANISMS.register(name, *aliases, **kwargs)


def register_controller(name: str, *aliases: str, **kwargs):
    """Register a preemption controller class/factory (decorator)."""
    return CONTROLLERS.register(name, *aliases, **kwargs)


def register_transfer_policy(name: str, *aliases: str, **kwargs):
    """Register a transfer-engine scheduling policy (decorator)."""
    return TRANSFER_POLICIES.register(name, *aliases, **kwargs)


def register_arrival(name: str, *aliases: str, **kwargs):
    """Register an open-loop arrival process (decorator)."""
    return ARRIVALS.register(name, *aliases, **kwargs)


def register_exporter(name: str, *aliases: str, **kwargs):
    """Register a metrics snapshot exporter (decorator)."""
    return EXPORTERS.register(name, *aliases, **kwargs)


def register_router(name: str, *aliases: str, **kwargs):
    """Register a cluster request router (decorator)."""
    return ROUTERS.register(name, *aliases, **kwargs)


def register_trace_source(name: str, *aliases: str, **kwargs):
    """Register a workload-trace synthesizer (decorator)."""
    return TRACE_SOURCES.register(name, *aliases, **kwargs)


def register_event_queue(name: str, *aliases: str, **kwargs):
    """Register a simulation event-queue implementation (decorator)."""
    return EVENT_QUEUES.register(name, *aliases, **kwargs)


__all__ = [
    "ComponentRegistry",
    "RegistryEntry",
    "UnknownComponentError",
    "normalize_name",
    "POLICIES",
    "MECHANISMS",
    "CONTROLLERS",
    "TRANSFER_POLICIES",
    "ARRIVALS",
    "ROUTERS",
    "EXPORTERS",
    "TRACE_SOURCES",
    "EVENT_QUEUES",
    "register_policy",
    "register_mechanism",
    "register_controller",
    "register_transfer_policy",
    "register_arrival",
    "register_router",
    "register_exporter",
    "register_trace_source",
    "register_event_queue",
]
