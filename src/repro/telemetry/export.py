"""Trace exporters: Chrome trace-event JSON, streaming JSONL, ASCII Gantt.

Three views of the same recorded stream:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (the ``traceEvents`` array form), loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  SMs appear as threads
  of a "GPU" process, host processes/CPU/DMA as threads of a "Host" process;
  matched intervals become complete ("X") slices and unmatched instants
  become instant ("i") events.
* :func:`iter_jsonl` / :func:`write_jsonl` — one JSON object per line, in
  event order; the streaming-friendly archival form.
* :func:`ascii_gantt` — a terminal timeline: one row per track, ``#`` for
  busy cells, ``P`` overlaying preemption windows.

All exporters are deterministic: same events in, bytes out.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.telemetry import events as ev
from repro.telemetry.analytics import Span, derive_spans
from repro.telemetry.events import TraceEvent

#: Event kinds exported as Chrome *instant* events (the rest pair into
#: complete slices via :func:`~repro.telemetry.analytics.derive_spans`).
_INSTANT_KINDS = {
    ev.PREEMPT_REQUEST,
    ev.PREEMPT_SAVE_START,
    ev.PREEMPT_COMPLETE,
    ev.KERNEL_ENQUEUE,
    ev.SM_CONFIGURED,
    ev.SM_RELEASED,
    ev.REQUEST_ARRIVAL,
    ev.REQUEST_ADMIT,
    ev.REQUEST_COMPLETE,
    ev.REQUEST_DROP,
}

_CATEGORY_PID = {"block": "GPU", "preemption": "GPU", "transfer": "Host", "cpu": "Host"}


def _end_time(events: Sequence[TraceEvent], end_us: Optional[float]) -> float:
    if end_us is not None:
        return end_us
    return events[-1].time_us if events else 0.0


def _span_pid_tid(span: Span) -> tuple:
    pid = _CATEGORY_PID.get(span.category, "Host")
    return pid, span.track


def to_chrome_trace(
    events: Sequence[TraceEvent], *, end_us: Optional[float] = None
) -> Dict[str, Any]:
    """Convert a trace stream to a Chrome trace-event JSON document."""
    end = _end_time(events, end_us)
    spans = derive_spans(events, end_us=end)

    # Stable integer ids for process/thread names, assigned in first-use
    # order so the document is byte-identical across runs.
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}

    def pid_of(name: str) -> int:
        if name not in pids:
            pids[name] = len(pids) + 1
        return pids[name]

    def tid_of(pid_name: str, track: str) -> int:
        key = (pid_name, track)
        if key not in tids:
            tids[key] = sum(1 for existing in tids if existing[0] == pid_name) + 1
        return tids[key]

    trace_events: List[Dict[str, Any]] = []
    for span in spans:
        pid_name, track = _span_pid_tid(span)
        trace_events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start_us,
                "dur": span.duration_us,
                "pid": pid_of(pid_name),
                "tid": tid_of(pid_name, track),
                "args": dict(span.attrs),
            }
        )
    for event in events:
        if event.kind not in _INSTANT_KINDS:
            continue
        sm = event.attrs.get("sm")
        pid_name = "GPU" if sm is not None else "Host"
        track = f"SM{sm:02d}" if sm is not None else "host"
        trace_events.append(
            {
                "name": event.kind,
                "cat": "instant",
                "ph": "i",
                "s": "t",
                "ts": event.time_us,
                "pid": pid_of(pid_name),
                "tid": tid_of(pid_name, track),
                "args": dict(event.attrs),
            }
        )
    # Metadata records give the numeric ids their human names in the UI.
    metadata: List[Dict[str, Any]] = []
    for name, pid in sorted(pids.items(), key=lambda item: item[1]):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": name},
            }
        )
    for (pid_name, track), tid in sorted(tids.items(), key=lambda item: item[1]):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pids[pid_name],
                "tid": tid,
                "args": {"name": track},
            }
        )
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.telemetry",
            "events_recorded": len(events),
            "simulated_time_us": end,
        },
    }


def write_chrome_trace(
    events: Sequence[TraceEvent],
    destination: Union[str, IO[str]],
    *,
    end_us: Optional[float] = None,
) -> None:
    """Write :func:`to_chrome_trace` output as JSON to a path or file object."""
    document = to_chrome_trace(events, end_us=end_us)
    if hasattr(destination, "write"):
        json.dump(document, destination, sort_keys=True)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="utf-8") as handle:  # type: ignore[arg-type]
        json.dump(document, handle, sort_keys=True)


def iter_jsonl(events: Iterable[TraceEvent]) -> Iterator[str]:
    """Yield one JSON line per event (no trailing newline on the lines)."""
    for event in events:
        yield event.to_json()


def write_jsonl(
    events: Iterable[TraceEvent], destination: Union[str, IO[str]]
) -> None:
    """Stream events as JSON Lines to a path or file object."""
    if hasattr(destination, "write"):
        for line in iter_jsonl(events):
            destination.write(line + "\n")  # type: ignore[union-attr]
        return
    with open(destination, "w", encoding="utf-8") as handle:  # type: ignore[arg-type]
        for line in iter_jsonl(events):
            handle.write(line + "\n")


# ----------------------------------------------------------------------
# ASCII Gantt
# ----------------------------------------------------------------------
def ascii_gantt(
    events: Sequence[TraceEvent],
    *,
    width: int = 72,
    end_us: Optional[float] = None,
    categories: Sequence[str] = ("block", "transfer", "cpu"),
) -> str:
    """Render the trace as a fixed-width terminal timeline.

    One row per track (SMs first, then DMA/CPU), ``#`` where the track has
    at least one active span in the column's time bucket, ``.`` where idle,
    and ``P`` overlaid where a preemption window covers the bucket.
    """
    if width < 10:
        raise ValueError("width must be at least 10 columns")
    end = _end_time(events, end_us)
    spans = derive_spans(events, end_us=end)
    if end <= 0.0 or not spans:
        return "(empty trace)"

    tracks: Dict[str, List[str]] = {}
    preemption_spans: List[Span] = []
    for span in spans:
        if span.category == "preemption":
            preemption_spans.append(span)
        if span.category not in categories:
            continue
        tracks.setdefault(span.track, ["."] * width)

    def columns(span: Span) -> range:
        # A span always paints at least one column, so short blocks stay visible.
        first = min(width - 1, int(span.start_us / end * width))
        last = min(width - 1, int(span.end_us / end * width))
        return range(first, max(first, last) + 1)

    for span in spans:
        if span.category not in categories or span.track not in tracks:
            continue
        row = tracks[span.track]
        for column in columns(span):
            row[column] = "#"
    for span in preemption_spans:
        row = tracks.get(span.track)
        if row is None:
            continue
        for column in columns(span):
            row[column] = "P"

    label_width = max(len(track) for track in tracks) if tracks else 4
    lines = [
        f"{'time':>{label_width}} |0{'':{width - 2}}{end:.0f}us",
        f"{'':>{label_width}} +{'-' * width}",
    ]
    for track in sorted(tracks):
        lines.append(f"{track:>{label_width}} |{''.join(tracks[track])}|")
    lines.append(
        f"{'':>{label_width}}  ('#' busy, 'P' preemption window, '.' idle; "
        f"{width} cols x {end / width:.1f}us)"
    )
    return "\n".join(lines)


__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "iter_jsonl",
    "write_jsonl",
    "ascii_gantt",
]
