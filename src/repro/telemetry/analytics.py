"""Derived analytics over a recorded trace-event stream.

The raw stream (:mod:`repro.telemetry.collector`) is a flat list of instants;
this module derives the quantities the paper argues about:

* **preemption-latency distributions** per mechanism — the time from the
  scheduling policy reserving an SM to the mechanism handing it back free
  (the paper's headline context-switch vs. draining comparison), summarised
  as count/mean/p50/p95/max;
* **per-SM occupancy timelines** — resident-block step functions and the
  busy fraction each SM spent with at least one resident block;
* **queueing-delay breakdowns** — how long kernel and transfer commands
  waited in their hardware queue before the dispatcher issued them;
* **spans** — matched start/end intervals (blocks, kernels, preemptions,
  transfers, CPU phases) that the exporters turn into timelines.

Everything here is pure and deterministic: plain functions over the event
list, no simulator access, nearest-rank percentiles (no interpolation), so
summaries are byte-stable across runs and platforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.telemetry import events as ev
from repro.telemetry.events import TraceEvent


# ----------------------------------------------------------------------
# Distribution helpers
# ----------------------------------------------------------------------
def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (q in [0, 1]).

    Deterministic and interpolation-free: the returned value is always an
    observed sample, which keeps golden fixtures byte-stable.
    """
    if not samples:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be within [0, 1]")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def latency_stats(samples: Sequence[float]) -> Dict[str, float]:
    """count/mean/p50/p95/max summary of a latency sample list."""
    if not samples:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "count": len(samples),
        "mean": sum(samples) / len(samples),
        "p50": percentile(samples, 0.50),
        "p95": percentile(samples, 0.95),
        "max": max(samples),
    }


# ----------------------------------------------------------------------
# Preemption latency (the paper's headline metric)
# ----------------------------------------------------------------------
def preemption_latencies(events: Sequence[TraceEvent]) -> Dict[str, List[float]]:
    """Observed preemption latencies per mechanism, in completion order.

    The latency of one preemption is the time from ``preempt_request`` (the
    policy reserving the SM) to ``preempt_complete`` (the mechanism handing
    the SM back); the collector stamps it onto the completion event.
    """
    samples: Dict[str, List[float]] = {}
    for event in events:
        if event.kind != ev.PREEMPT_COMPLETE:
            continue
        latency = event.attrs.get("latency_us")
        if latency is None:
            continue
        samples.setdefault(event.attrs["mechanism"], []).append(latency)
    return samples


# ----------------------------------------------------------------------
# Occupancy timelines
# ----------------------------------------------------------------------
def occupancy_timeline(events: Sequence[TraceEvent]) -> Dict[int, List[Tuple[float, int]]]:
    """Per-SM resident-block step function: sm -> [(time_us, resident), ...].

    Built from the residency counts the collector stamps on block events; an
    eviction drops the SM to zero residency (the context-switch mechanism
    always evicts every resident block).
    """
    timeline: Dict[int, List[Tuple[float, int]]] = {}
    for event in events:
        if event.kind in (ev.BLOCK_START, ev.BLOCK_RESTORE, ev.BLOCK_FINISH):
            sm = event.attrs["sm"]
            timeline.setdefault(sm, []).append((event.time_us, event.attrs["resident"]))
        elif event.kind == ev.PREEMPT_SAVE_START:
            sm = event.attrs["sm"]
            timeline.setdefault(sm, []).append((event.time_us, 0))
    return timeline


def sm_busy_fractions(
    timeline: Mapping[int, Sequence[Tuple[float, int]]], end_us: float
) -> Dict[int, float]:
    """Fraction of [0, end_us] each SM spent with >= 1 resident block."""
    fractions: Dict[int, float] = {}
    for sm, points in timeline.items():
        if end_us <= 0.0:
            fractions[sm] = 0.0
            continue
        busy = 0.0
        previous_time = 0.0
        previous_resident = 0
        for time_us, resident in points:
            if previous_resident > 0:
                busy += time_us - previous_time
            previous_time, previous_resident = time_us, resident
        if previous_resident > 0:
            busy += end_us - previous_time
        fractions[sm] = busy / end_us
    return fractions


# ----------------------------------------------------------------------
# Queueing delays
# ----------------------------------------------------------------------
def queueing_delays(events: Sequence[TraceEvent]) -> Dict[str, List[float]]:
    """Hardware-queue wait per engine: enqueue -> dispatcher issue.

    Returns ``{"kernel": [...], "transfer": [...]}`` in issue order.
    """
    enqueued: Dict[Tuple[str, int], float] = {}
    waits: Dict[str, List[float]] = {"kernel": [], "transfer": []}
    starts = {ev.KERNEL_ISSUE: "kernel", ev.TRANSFER_START: "transfer"}
    for event in events:
        if event.kind == ev.KERNEL_ENQUEUE:
            enqueued[("kernel", event.attrs["cmd"])] = event.time_us
        elif event.kind == ev.TRANSFER_ENQUEUE:
            enqueued[("transfer", event.attrs["cmd"])] = event.time_us
        elif event.kind in starts:
            engine = starts[event.kind]
            start = enqueued.pop((engine, event.attrs["cmd"]), None)
            if start is not None:
                waits[engine].append(event.time_us - start)
    return waits


# ----------------------------------------------------------------------
# Spans (for the exporters)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Span:
    """One matched interval on a display track."""

    name: str
    category: str  # "block" | "kernel" | "preemption" | "transfer" | "cpu" | "queue"
    start_us: float
    end_us: float
    track: str  # e.g. "SM03", "lbm#0", "DMA", "CPU"
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        """Length of the span (µs)."""
        return self.end_us - self.start_us


def _sm_track(sm: int) -> str:
    return f"SM{sm:02d}"


def derive_spans(events: Sequence[TraceEvent], *, end_us: float) -> List[Span]:
    """Match start/end events into :class:`Span` intervals.

    Unfinished intervals (e.g. a block still resident when the run stopped)
    are closed at ``end_us``.  Spans are returned sorted by start time, then
    track, then name, which makes export output deterministic.
    """
    spans: List[Span] = []
    open_blocks: Dict[Tuple[int, int], TraceEvent] = {}
    open_kernels: Dict[int, TraceEvent] = {}
    open_kernel_queue: Dict[int, TraceEvent] = {}
    open_preemptions: Dict[int, TraceEvent] = {}
    open_transfers: Dict[int, TraceEvent] = {}
    open_cpu: Dict[str, List[TraceEvent]] = {}

    def close_block(key: Tuple[int, int], start_event: TraceEvent, end_time: float) -> None:
        launch, block = key
        spans.append(
            Span(
                name=f"L{launch}.b{block}",
                category="block",
                start_us=start_event.time_us,
                end_us=end_time,
                track=_sm_track(start_event.attrs["sm"]),
                attrs={
                    "launch": launch,
                    "block": block,
                    "restored": start_event.kind == ev.BLOCK_RESTORE,
                },
            )
        )

    for event in events:
        kind = event.kind
        if kind in (ev.BLOCK_START, ev.BLOCK_RESTORE):
            open_blocks[(event.attrs["launch"], event.attrs["block"])] = event
        elif kind == ev.BLOCK_FINISH:
            key = (event.attrs["launch"], event.attrs["block"])
            start_event = open_blocks.pop(key, None)
            if start_event is not None:
                close_block(key, start_event, event.time_us)
        elif kind == ev.PREEMPT_SAVE_START:
            # Eviction interrupts every open block on this SM.
            sm = event.attrs["sm"]
            for key, start_event in sorted(open_blocks.items()):
                if start_event.attrs["sm"] == sm:
                    close_block(key, start_event, event.time_us)
                    del open_blocks[key]
        elif kind == ev.KERNEL_ENQUEUE:
            open_kernel_queue[event.attrs["cmd"]] = event
        elif kind == ev.KERNEL_LAUNCH:
            open_kernels[event.attrs["launch"]] = event
        elif kind == ev.KERNEL_COMPLETE:
            start_event = open_kernels.pop(event.attrs["launch"], None)
            if start_event is not None:
                spans.append(
                    Span(
                        name=start_event.attrs["kernel"],
                        category="kernel",
                        start_us=start_event.time_us,
                        end_us=event.time_us,
                        track=start_event.attrs["process"] or "kernels",
                        attrs={
                            "launch": event.attrs["launch"],
                            "blocks": start_event.attrs["blocks"],
                        },
                    )
                )
        elif kind == ev.KERNEL_ISSUE:
            start_event = open_kernel_queue.pop(event.attrs["cmd"], None)
            if start_event is not None and event.time_us > start_event.time_us:
                spans.append(
                    Span(
                        name=f"queue:{event.attrs['kernel']}",
                        category="queue",
                        start_us=start_event.time_us,
                        end_us=event.time_us,
                        track=event.attrs["process"] or "kernels",
                        attrs={"cmd": event.attrs["cmd"]},
                    )
                )
        elif kind == ev.PREEMPT_REQUEST:
            open_preemptions[event.attrs["sm"]] = event
        elif kind == ev.PREEMPT_COMPLETE:
            start_event = open_preemptions.pop(event.attrs["sm"], None)
            if start_event is not None:
                spans.append(
                    Span(
                        name=f"preempt:{event.attrs['mechanism']}",
                        category="preemption",
                        start_us=start_event.time_us,
                        end_us=event.time_us,
                        track=_sm_track(event.attrs["sm"]),
                        attrs={
                            "mechanism": event.attrs["mechanism"],
                            "evicted": event.attrs["evicted"],
                        },
                    )
                )
        elif kind == ev.TRANSFER_START:
            open_transfers[event.attrs["cmd"]] = event
        elif kind == ev.TRANSFER_COMPLETE:
            start_event = open_transfers.pop(event.attrs["cmd"], None)
            if start_event is not None:
                spans.append(
                    Span(
                        name=f"{start_event.attrs['direction']}:{start_event.attrs['bytes']}B",
                        category="transfer",
                        start_us=start_event.time_us,
                        end_us=event.time_us,
                        track="DMA",
                        attrs={
                            "bytes": start_event.attrs["bytes"],
                            "direction": start_event.attrs["direction"],
                            "process": start_event.attrs["process"],
                        },
                    )
                )
        elif kind == ev.CPU_PHASE_START:
            open_cpu.setdefault(event.attrs["label"], []).append(event)
        elif kind == ev.CPU_PHASE_END:
            pending = open_cpu.get(event.attrs["label"])
            if pending:
                start_event = pending.pop(0)  # FIFO: phases of one label are ordered
                spans.append(
                    Span(
                        name=event.attrs["label"],
                        category="cpu",
                        start_us=start_event.time_us,
                        end_us=event.time_us,
                        track="CPU",
                        attrs={"duration_us": start_event.attrs["duration_us"]},
                    )
                )

    # Close whatever is still open at the end of the observed window (a run
    # truncated mid-flight — e.g. by max_events — must still show its
    # in-flight transfers, preemptions and phases).
    for key, start_event in sorted(open_blocks.items()):
        close_block(key, start_event, end_us)
    for launch, start_event in sorted(open_kernels.items()):
        spans.append(
            Span(
                name=start_event.attrs["kernel"],
                category="kernel",
                start_us=start_event.time_us,
                end_us=end_us,
                track=start_event.attrs["process"] or "kernels",
                attrs={"launch": launch, "blocks": start_event.attrs["blocks"]},
            )
        )
    for sm, start_event in sorted(open_preemptions.items()):
        spans.append(
            Span(
                name=f"preempt:{start_event.attrs['mechanism']}",
                category="preemption",
                start_us=start_event.time_us,
                end_us=end_us,
                track=_sm_track(sm),
                attrs={"mechanism": start_event.attrs["mechanism"], "evicted": 0},
            )
        )
    for cmd, start_event in sorted(open_transfers.items()):
        spans.append(
            Span(
                name=f"{start_event.attrs['direction']}:{start_event.attrs['bytes']}B",
                category="transfer",
                start_us=start_event.time_us,
                end_us=end_us,
                track="DMA",
                attrs={
                    "bytes": start_event.attrs["bytes"],
                    "direction": start_event.attrs["direction"],
                    "process": start_event.attrs["process"],
                },
            )
        )
    for label, pending in sorted(open_cpu.items()):
        for start_event in pending:
            spans.append(
                Span(
                    name=label,
                    category="cpu",
                    start_us=start_event.time_us,
                    end_us=end_us,
                    track="CPU",
                    attrs={"duration_us": start_event.attrs["duration_us"]},
                )
            )
    for cmd, start_event in sorted(open_kernel_queue.items()):
        if end_us > start_event.time_us:
            spans.append(
                Span(
                    name=f"queue:{start_event.attrs['kernel']}",
                    category="queue",
                    start_us=start_event.time_us,
                    end_us=end_us,
                    track=start_event.attrs["process"] or "kernels",
                    attrs={"cmd": cmd},
                )
            )
    spans.sort(key=lambda span: (span.start_us, span.track, span.category, span.name))
    return spans


# ----------------------------------------------------------------------
# The run summary (rides through RunRecord)
# ----------------------------------------------------------------------
def summarize(
    events: Sequence[TraceEvent],
    *,
    now_us: float,
    artifacts: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """JSON-serialisable summary of a trace stream.

    This is what :class:`repro.workloads.multiprogram.WorkloadResult` (and
    therefore :class:`repro.runner.RunRecord`) carries back from batch
    workers: aggregate counts, per-mechanism preemption-latency samples and
    stats, queueing stats, per-SM busy fractions, and the paths of any
    exported artifacts.  Raw events stay behind in the worker.
    """
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    latencies = preemption_latencies(events)
    waits = queueing_delays(events)
    busy = sm_busy_fractions(occupancy_timeline(events), now_us)
    mean_busy = sum(busy.values()) / len(busy) if busy else 0.0
    return {
        "events_total": len(events),
        "counts": dict(sorted(counts.items())),
        "simulated_time_us": now_us,
        "preemption": {
            mechanism: latency_stats(samples)
            for mechanism, samples in sorted(latencies.items())
        },
        "preemption_latencies_us": {
            mechanism: list(samples) for mechanism, samples in sorted(latencies.items())
        },
        "queueing_us": {
            engine: latency_stats(samples) for engine, samples in sorted(waits.items())
        },
        "mean_sm_busy_fraction": mean_busy,
        "artifacts": list(artifacts) if artifacts else [],
    }


__all__ = [
    "Span",
    "percentile",
    "latency_stats",
    "preemption_latencies",
    "occupancy_timeline",
    "sm_busy_fractions",
    "queueing_delays",
    "derive_spans",
    "summarize",
]
