"""The trace collector: an observer turning instrumentation hooks into events.

:class:`TraceCollector` attaches to a :class:`~repro.system.GPUSystem`
through the same observer points the validation layer uses
(:meth:`~repro.system.GPUSystem.install_observer`) and records a typed
:class:`~repro.telemetry.events.TraceEvent` stream: kernel lifecycle, block
dispatch/finish (with per-SM residency), the full preemption lifecycle
(request → save → restore / drain-complete) with the observed latency, DMA
transfers and host CPU phases.

The collector is a pure observer — a traced run is byte-identical to an
untraced one — and it skips the simulator's high-rate per-event hooks
entirely (``wants_simulator_events = False``), so its cost is one method
call plus one dataclass append per *model-level* event.

Identifiers are normalised to run-local dense indices (see
:meth:`TraceCollector._command_ref`), so the trace of a scenario does not
depend on what else ran earlier in the same process; serial and parallel
batch runs export byte-identical artifacts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.sim.observers import BaseObserver
from repro.telemetry import events as ev
from repro.telemetry.events import TraceEvent


class TraceCollector(BaseObserver):
    """Records structured trace events from a running system."""

    wants_simulator_events = False

    def __init__(self, *, gpu_id: Optional[int] = None) -> None:
        #: Fleet member id stamped on every event (``None`` = single-GPU run,
        #: events stay untagged).  Set by the cluster layer so merged fleet
        #: traces remain attributable to their originating GPU.
        self.gpu_id = gpu_id
        #: The recorded events, in emission (= simulation) order.
        self.events: List[TraceEvent] = []
        self._seq = 0
        self._system = None
        self._sim = None
        #: Global command id -> (run-local id, engine, static attrs).
        self._commands: Dict[int, Tuple[int, str, Dict[str, Any]]] = {}
        #: SM id -> (request time, mechanism name) of the in-flight preemption.
        self._preempt_requests: Dict[int, Tuple[float, str]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, system) -> None:
        """Install the collector on every instrumented component of ``system``."""
        if self._system is not None:
            raise RuntimeError("the TraceCollector is already attached")
        self._system = system
        self._sim = system.simulator
        system.install_observer(self)
        if getattr(system, "telemetry", None) is None:
            system.telemetry = self

    def detach(self) -> None:
        """Remove the collector's hooks; recorded events stay readable.

        A detached collector can be attached again (to the same system or a
        fresh one); events keep accumulating in the same stream.  ``_sim`` is
        kept so :meth:`summary` stays usable after detaching.
        """
        if self._system is None:
            raise RuntimeError("cannot detach an unattached TraceCollector")
        self._system.uninstall_observer(self)
        if getattr(self._system, "telemetry", None) is self:
            self._system.telemetry = None
        self._system = None

    @property
    def attached(self) -> bool:
        """Whether the collector has been attached to a system."""
        return self._system is not None

    @property
    def num_events(self) -> int:
        """Number of recorded events."""
        return len(self.events)

    def _emit(self, kind: str, **attrs: Any) -> None:
        if self.gpu_id is not None:
            attrs["gpu"] = self.gpu_id
        self.events.append(
            TraceEvent(seq=self._seq, time_us=self._sim.now, kind=kind, attrs=attrs)
        )
        self._seq += 1

    # ------------------------------------------------------------------
    # Run-local identifier normalisation
    # ------------------------------------------------------------------
    def _command_ref(self, command) -> Tuple[int, str, Dict[str, Any]]:
        """Run-local id + engine + static attrs for a command (dense, stable)."""
        ref = self._commands.get(command.command_id)
        if ref is None:
            local_id = len(self._commands)
            if command.engine == "transfer":
                attrs: Dict[str, Any] = {
                    "bytes": command.size_bytes,
                    "direction": command.direction.value,
                }
            else:
                launch = command.launch
                attrs = {
                    "kernel": launch.spec.qualified_name,
                    "launch": launch.launch_id,
                    "blocks": launch.spec.num_thread_blocks,
                }
            attrs["process"] = command.process_name
            attrs["stream"] = command.stream_id
            ref = (local_id, command.engine, attrs)
            self._commands[command.command_id] = ref
        return ref

    # ------------------------------------------------------------------
    # Dispatcher hooks (kernel/transfer queueing)
    # ------------------------------------------------------------------
    def on_command_enqueued(self, queue_id, command) -> None:
        local_id, engine, attrs = self._command_ref(command)
        kind = ev.KERNEL_ENQUEUE if engine == "execution" else ev.TRANSFER_ENQUEUE
        self._emit(kind, cmd=local_id, queue=queue_id, **attrs)

    def on_command_issued(self, queue_id, command) -> None:
        local_id, engine, attrs = self._command_ref(command)
        kind = ev.KERNEL_ISSUE if engine == "execution" else ev.TRANSFER_START
        self._emit(kind, cmd=local_id, queue=queue_id, **attrs)

    def on_command_completed(self, queue_id, command_id) -> None:
        ref = self._commands.get(command_id)
        if ref is None:  # pragma: no cover - command enqueued before attach
            return
        local_id, engine, attrs = ref
        # Kernel completion is reported by on_kernel_finished (with richer
        # context); only transfers complete through the dispatcher hook.
        if engine == "transfer":
            self._emit(ev.TRANSFER_COMPLETE, cmd=local_id, queue=queue_id, **attrs)

    # ------------------------------------------------------------------
    # Execution-engine hooks (kernel lifecycle, preemption)
    # ------------------------------------------------------------------
    def on_kernel_activated(self, entry) -> None:
        launch = entry.launch
        self._emit(
            ev.KERNEL_LAUNCH,
            launch=launch.launch_id,
            kernel=launch.spec.qualified_name,
            process=launch.process_name,
            blocks=launch.spec.num_thread_blocks,
            blocks_per_sm=entry.blocks_per_sm,
        )

    def on_kernel_finished(self, launch) -> None:
        self._emit(
            ev.KERNEL_COMPLETE,
            launch=launch.launch_id,
            kernel=launch.spec.qualified_name,
            process=launch.process_name,
        )

    def on_sm_reserved(self, sm, next_ksr_index, mechanism) -> None:
        # The mechanism is chosen per request by the engine's preemption
        # controller; the span is tagged with that choice, not a system-wide
        # mechanism.
        name = mechanism.name
        self._preempt_requests[sm.sm_id] = (self._sim.now, name)
        self._emit(
            ev.PREEMPT_REQUEST,
            sm=sm.sm_id,
            mechanism=name,
            resident=sm.resident_blocks,
        )

    def on_blocks_evicted(self, sm, blocks) -> None:
        self._emit(ev.PREEMPT_SAVE_START, sm=sm.sm_id, evicted=len(blocks))

    def on_preemption_complete(self, sm, evicted_blocks, mechanism) -> None:
        request = self._preempt_requests.pop(sm.sm_id, None)
        attrs: Dict[str, Any] = {
            "sm": sm.sm_id,
            "mechanism": mechanism.name,
            "evicted": len(evicted_blocks),
        }
        if request is not None:
            attrs["latency_us"] = self._sim.now - request[0]
        self._emit(ev.PREEMPT_COMPLETE, **attrs)

    # ------------------------------------------------------------------
    # SM hooks (block residency, occupancy deltas)
    # ------------------------------------------------------------------
    def on_block_started(self, sm, block) -> None:
        kind = ev.BLOCK_RESTORE if block.preemption_count > 0 else ev.BLOCK_START
        self._emit(
            kind,
            sm=sm.sm_id,
            launch=block.kernel_launch_id,
            block=block.block_index,
            resident=sm.resident_blocks,
        )

    def on_block_completed(self, sm, block) -> None:
        self._emit(
            ev.BLOCK_FINISH,
            sm=sm.sm_id,
            launch=block.kernel_launch_id,
            block=block.block_index,
            resident=sm.resident_blocks,
        )

    def on_sm_configured(self, sm) -> None:
        self._emit(ev.SM_CONFIGURED, sm=sm.sm_id, ksr=sm.ksr_index)

    def on_sm_released(self, sm) -> None:
        self._emit(ev.SM_RELEASED, sm=sm.sm_id)

    # ------------------------------------------------------------------
    # Host CPU hooks
    # ------------------------------------------------------------------
    def on_cpu_phase_started(self, duration_us, label) -> None:
        self._emit(ev.CPU_PHASE_START, label=label, duration_us=duration_us)

    def on_cpu_phase_finished(self, label) -> None:
        self._emit(ev.CPU_PHASE_END, label=label)

    # ------------------------------------------------------------------
    # Open-loop serving hooks (request lifecycle)
    # ------------------------------------------------------------------
    def on_request_arrived(self, request, now) -> None:
        self._emit(
            ev.REQUEST_ARRIVAL,
            request=request.request_id,
            tenant=request.tenant,
            kernel=request.kernel,
            priority=request.priority,
            arrival_us=request.arrival_us,
        )

    def on_request_admitted(self, request, now) -> None:
        self._emit(
            ev.REQUEST_ADMIT,
            request=request.request_id,
            tenant=request.tenant,
            queue_delay_us=now - request.arrival_us,
        )

    def on_request_completed(self, request, now) -> None:
        self._emit(
            ev.REQUEST_COMPLETE,
            request=request.request_id,
            tenant=request.tenant,
            latency_us=now - request.arrival_us,
            service_us=now - request.admit_us,
        )

    def on_request_dropped(self, request, now) -> None:
        self._emit(
            ev.REQUEST_DROP,
            request=request.request_id,
            tenant=request.tenant,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """JSON-serialisable summary of the recorded stream.

        Thin wrapper over :func:`repro.telemetry.analytics.summarize`, bound
        to this collector's events and current simulation time.
        """
        from repro.telemetry.analytics import summarize  # local: avoids cycle

        now = self._sim.now if self._sim is not None else 0.0
        return summarize(self.events, now_us=now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "attached" if self.attached else "detached"
        return f"TraceCollector({state}, events={len(self.events)})"


__all__ = ["TraceCollector"]
