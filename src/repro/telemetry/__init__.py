"""Simulation telemetry: structured tracing, analytics and timeline exports.

The paper this repository reproduces is an argument about *time* — how long a
context-switch vs. draining preemption takes and what that latency costs.
This subsystem turns every simulated run into an analyzable, exportable
timeline:

* :class:`TraceCollector` — an observer recording typed, timestamped
  :class:`TraceEvent` values (kernel lifecycle, block dispatch/finish,
  preemption request → save → restore / drain, transfers, CPU phases, SM
  occupancy deltas).  Enable per run with ``GPUSystem(trace=True)`` /
  ``ScenarioSpec(trace=True)`` or the CLI's ``--trace``.
* :mod:`repro.telemetry.analytics` — derived quantities: per-mechanism
  preemption-latency distributions (p50/p95/max), per-SM occupancy
  timelines and busy fractions, queueing-delay breakdowns, matched spans.
* :mod:`repro.telemetry.export` — Chrome trace-event JSON (Perfetto),
  streaming JSONL, and an ASCII Gantt for terminals.

Collectors are pure observers: a traced run is byte-identical to the same
run without tracing, and tracing disabled costs one ``is None`` check per
instrumentation point.

>>> from repro import GPUSystem
>>> from repro.trace import TraceGenerator
>>> system = GPUSystem(policy="ppq", mechanism="draining", trace=True)
>>> trace = TraceGenerator().uniform_kernel("demo", num_blocks=16, tb_time_us=4.0)
>>> _ = system.add_process("demo", trace, max_iterations=1)
>>> system.run()
>>> system.telemetry.num_events > 0
True
"""

from repro.telemetry.analytics import (
    Span,
    derive_spans,
    latency_stats,
    occupancy_timeline,
    percentile,
    preemption_latencies,
    queueing_delays,
    sm_busy_fractions,
    summarize,
)
from repro.telemetry.collector import TraceCollector
from repro.telemetry.events import KINDS, TraceEvent
from repro.telemetry.export import (
    ascii_gantt,
    iter_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "TraceCollector",
    "TraceEvent",
    "KINDS",
    "Span",
    "derive_spans",
    "latency_stats",
    "occupancy_timeline",
    "percentile",
    "preemption_latencies",
    "queueing_delays",
    "sm_busy_fractions",
    "summarize",
    "ascii_gantt",
    "iter_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
