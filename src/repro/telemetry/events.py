"""Typed, timestamped trace events recorded by the telemetry subsystem.

A :class:`TraceEvent` is one instant in a simulation's life: a kernel being
enqueued, a thread block starting, a preemption completing.  Events carry a
``kind`` (one of the :data:`KINDS` constants), the simulation time, a
monotonically increasing per-collector sequence number (to give a total
order to events at the same timestamp) and a flat, JSON-serialisable
``attrs`` payload.

Identifiers inside ``attrs`` are *run-local*: the collector densely renumbers
global counters (e.g. command ids, which are process-wide) so that the trace
of a scenario is byte-identical whether it runs first or last in a batch,
serially or inside a worker process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping


# ----------------------------------------------------------------------
# Event kinds
# ----------------------------------------------------------------------
#: Kernel lifecycle: command entered a hardware queue / was issued to the
#: execution engine / was admitted into the KSRT / completed all its blocks.
KERNEL_ENQUEUE = "kernel_enqueue"
KERNEL_ISSUE = "kernel_issue"
KERNEL_LAUNCH = "kernel_launch"
KERNEL_COMPLETE = "kernel_complete"

#: Thread-block residency: dispatched to an SM (``block_restore`` when the
#: block had been preempted and its context is being restored) / finished.
BLOCK_START = "block_start"
BLOCK_RESTORE = "block_restore"
BLOCK_FINISH = "block_finish"

#: Preemption lifecycle: policy reserved the SM (request) / context-switch
#: save began (doubles as drain-complete for the draining mechanism, which
#: never saves) / the SM was handed back free.
PREEMPT_REQUEST = "preempt_request"
PREEMPT_SAVE_START = "preempt_save_start"
PREEMPT_COMPLETE = "preempt_complete"

#: DMA transfers across the PCIe bus.
TRANSFER_ENQUEUE = "transfer_enqueue"
TRANSFER_START = "transfer_start"
TRANSFER_COMPLETE = "transfer_complete"

#: Host CPU phases.
CPU_PHASE_START = "cpu_phase_start"
CPU_PHASE_END = "cpu_phase_end"

#: SM occupancy bookkeeping (configure for a kernel / release to idle pool).
SM_CONFIGURED = "sm_configured"
SM_RELEASED = "sm_released"

#: Open-loop serving request lifecycle (arrival → admission → completion,
#: or drop at admission).
REQUEST_ARRIVAL = "request_arrival"
REQUEST_ADMIT = "request_admit"
REQUEST_COMPLETE = "request_complete"
REQUEST_DROP = "request_drop"

#: Every kind, in a stable documentation order.
KINDS = (
    KERNEL_ENQUEUE,
    KERNEL_ISSUE,
    KERNEL_LAUNCH,
    KERNEL_COMPLETE,
    BLOCK_START,
    BLOCK_RESTORE,
    BLOCK_FINISH,
    PREEMPT_REQUEST,
    PREEMPT_SAVE_START,
    PREEMPT_COMPLETE,
    TRANSFER_ENQUEUE,
    TRANSFER_START,
    TRANSFER_COMPLETE,
    CPU_PHASE_START,
    CPU_PHASE_END,
    SM_CONFIGURED,
    SM_RELEASED,
    REQUEST_ARRIVAL,
    REQUEST_ADMIT,
    REQUEST_COMPLETE,
    REQUEST_DROP,
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured, timestamped simulation event."""

    #: Per-collector sequence number; totally orders same-time events.
    seq: int
    #: Simulation time of the event (µs).
    time_us: float
    #: Event kind (one of :data:`KINDS`).
    kind: str
    #: Flat, JSON-serialisable payload (run-local identifiers only).
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        return {
            "seq": self.seq,
            "time_us": self.time_us,
            "kind": self.kind,
            "attrs": dict(self.attrs),
        }

    def to_json(self) -> str:
        """One-line JSON form (the JSONL exporter emits exactly this)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def __str__(self) -> str:
        attrs = " ".join(f"{key}={value}" for key, value in sorted(self.attrs.items()))
        return f"[{self.time_us:.3f}us] {self.kind} {attrs}".rstrip()


__all__ = [
    "TraceEvent",
    "KINDS",
    "KERNEL_ENQUEUE",
    "KERNEL_ISSUE",
    "KERNEL_LAUNCH",
    "KERNEL_COMPLETE",
    "BLOCK_START",
    "BLOCK_RESTORE",
    "BLOCK_FINISH",
    "PREEMPT_REQUEST",
    "PREEMPT_SAVE_START",
    "PREEMPT_COMPLETE",
    "TRANSFER_ENQUEUE",
    "TRANSFER_START",
    "TRANSFER_COMPLETE",
    "CPU_PHASE_START",
    "CPU_PHASE_END",
    "SM_CONFIGURED",
    "SM_RELEASED",
    "REQUEST_ARRIVAL",
    "REQUEST_ADMIT",
    "REQUEST_COMPLETE",
    "REQUEST_DROP",
]
