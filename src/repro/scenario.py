"""Declarative, JSON-round-trippable scenario specifications.

A *scenario* is one independent, deterministic simulation of the paper's
evaluation grid: a multiprogrammed workload (which applications, which one is
high-priority) run under a *scheme* (scheduling policy + preemption mechanism
+ transfer policy) at a workload scale, with optional hardware-configuration
overrides and run bounds.  Scenarios are frozen dataclasses that round-trip
through plain dictionaries / JSON, which makes them trivial to generate in
bulk, ship to worker processes (:class:`repro.runner.BatchRunner`) and
archive next to results.

>>> from repro.scenario import SchemeSpec, ScenarioSpec
>>> scheme = SchemeSpec(name="ppq_cs", policy="ppq", mechanism="context_switch",
...                     transfer_policy="npq")
>>> spec = ScenarioSpec(scheme=scheme, applications=("mri-q", "lbm"),
...                     high_priority_index=0, scale="smoke")
>>> ScenarioSpec.from_dict(spec.to_dict()) == spec
True

:meth:`repro.system.GPUSystem.from_scenario` is the canonical constructor
that turns a scenario into a runnable system.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.gpu.config import SystemConfig
from repro.registry import CONTROLLERS, MECHANISMS, POLICIES, TRANSFER_POLICIES

#: Priority assigned to the high-priority process of priority workloads.
HIGH_PRIORITY = 10
#: Priority of every other process.
NORMAL_PRIORITY = 0
#: Start-time stagger between consecutive processes (µs) — avoids every
#: process hitting the driver at the exact same instant.
DEFAULT_START_STAGGER_US = 0.1
#: Safety bound on events per simulated scenario (livelock guard).
DEFAULT_MAX_EVENTS = 50_000_000


# ----------------------------------------------------------------------
# Configuration overrides
# ----------------------------------------------------------------------
def apply_config_overrides(config: SystemConfig, overrides: Mapping[str, Any]) -> SystemConfig:
    """Apply a (possibly nested) override mapping to a :class:`SystemConfig`.

    Top-level keys name ``SystemConfig`` fields; mappings assigned to
    dataclass-valued fields (``gpu``, ``pcie``, ``cpu``, ``scheduler``) are
    applied field-by-field.  Lists are coerced to tuples so overrides survive
    a JSON round-trip.
    """
    if not overrides:
        return config
    updates: Dict[str, Any] = {}
    for key, value in overrides.items():
        if not any(f.name == key for f in dataclasses.fields(config)):
            raise ValueError(f"unknown SystemConfig field in overrides: {key!r}")
        current = getattr(config, key)
        if dataclasses.is_dataclass(current) and isinstance(value, Mapping):
            sub_updates = {
                sub_key: tuple(sub_value) if isinstance(sub_value, list) else sub_value
                for sub_key, sub_value in value.items()
            }
            try:
                updates[key] = dataclasses.replace(current, **sub_updates)
            except TypeError as exc:
                raise ValueError(f"invalid override for {key!r}: {exc}") from exc
        else:
            updates[key] = tuple(value) if isinstance(value, list) else value
    return dataclasses.replace(config, **updates)


def config_to_overrides(
    config: SystemConfig, base: Optional[SystemConfig] = None
) -> Dict[str, Any]:
    """Compute the override mapping turning ``base`` into ``config``.

    The inverse of :func:`apply_config_overrides`; used to serialise a custom
    :class:`SystemConfig` into a :class:`ScenarioSpec`.
    """
    base = base if base is not None else SystemConfig()
    overrides: Dict[str, Any] = {}
    for top in dataclasses.fields(SystemConfig):
        value, base_value = getattr(config, top.name), getattr(base, top.name)
        if value == base_value:
            continue
        if dataclasses.is_dataclass(value):
            overrides[top.name] = {
                sub.name: getattr(value, sub.name)
                for sub in dataclasses.fields(value)
                if getattr(value, sub.name) != getattr(base_value, sub.name)
            }
        else:
            overrides[top.name] = value
    return overrides


def _canonicalize(value: Any) -> Any:
    """Deep-convert mappings/sequences to plain dicts/lists (JSON shape).

    Specs store options and overrides in their JSON-canonical form so that
    equality survives a serialisation round-trip (tuples would otherwise
    come back as lists and compare unequal).
    """
    if isinstance(value, Mapping):
        return {key: _canonicalize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonicalize(item) for item in value]
    return value


def _freeze_options(options: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    return _canonicalize(options or {})


def _reject_unknown_keys(cls, payload: Mapping[str, Any]) -> None:
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown {cls.__name__} keys: {sorted(unknown)}")


# ----------------------------------------------------------------------
# SchemeSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=True)
class SchemeSpec:
    """One scheduling scheme: policy + mechanism + controller + options.

    Component names are registry names (aliases accepted); they are resolved
    lazily at build time so specs can be created before custom components are
    registered.  Instances are frozen but not hashable (``policy_options`` is
    a dict); key schemes by :attr:`name`.

    ``controller`` selects the preemption controller consulted per preemption
    request (:data:`repro.registry.CONTROLLERS`); ``None`` — the default and
    the backward-compatible path — resolves to the ``static`` controller
    wrapping :attr:`mechanism`, reproducing the legacy one-mechanism
    behaviour byte-identically.  For dynamic controllers (``hybrid``,
    ``adaptive``) the :attr:`mechanism` still names the default/fallback
    mechanism (e.g. for restores of blocks whose evictor is unknown).
    """

    policy: str
    mechanism: str = "context_switch"
    transfer_policy: str = "fcfs"
    policy_options: Mapping[str, Any] = field(default_factory=dict)
    #: Preemption-controller registry name (``None`` = static/:attr:`mechanism`).
    controller: Optional[str] = None
    #: Keyword options for the controller factory (e.g. ``drain_budget_us``).
    controller_options: Mapping[str, Any] = field(default_factory=dict)
    #: Display / lookup name (defaults to ``policy`` + ``mechanism`` or,
    #: with a controller, ``policy`` + ``controller``).
    name: Optional[str] = None

    __hash__ = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.policy or not isinstance(self.policy, str):
            raise ValueError("policy must be a non-empty string")
        if not self.mechanism or not isinstance(self.mechanism, str):
            raise ValueError("mechanism must be a non-empty string")
        if self.controller is not None and (
            not self.controller or not isinstance(self.controller, str)
        ):
            raise ValueError("controller must be None or a non-empty string")
        transfer = self.transfer_policy
        if isinstance(transfer, enum.Enum):  # accept TransferSchedulingPolicy
            object.__setattr__(self, "transfer_policy", transfer.value)
        elif not transfer or not isinstance(transfer, str):
            raise ValueError("transfer_policy must be a non-empty string")
        object.__setattr__(self, "policy_options", _freeze_options(self.policy_options))
        object.__setattr__(
            self, "controller_options", _freeze_options(self.controller_options)
        )
        if self.controller is None and self.controller_options:
            raise ValueError("controller_options are only valid with a controller name")

    @property
    def label(self) -> str:
        """The scheme's display name."""
        if self.name is not None:
            return self.name
        if self.controller is not None:
            return f"{self.policy}_{self.controller}"
        return f"{self.policy}_{self.mechanism}"

    # ------------------------------------------------------------------
    # Component construction (via the registries)
    # ------------------------------------------------------------------
    def validate(self) -> "SchemeSpec":
        """Check every component name against the registries; return self."""
        POLICIES.entry(self.policy)
        MECHANISMS.entry(self.mechanism)
        if self.controller is not None:
            CONTROLLERS.entry(self.controller)
        TRANSFER_POLICIES.entry(self.transfer_policy)
        return self

    def build_policy(self, **extra_options):
        """Instantiate the scheduling policy (``extra_options`` win)."""
        options = dict(self.policy_options)
        options.update(extra_options)
        return POLICIES.create(self.policy, **options)

    def build_mechanism(self):
        """Instantiate the (default/fallback) preemption mechanism."""
        return MECHANISMS.create(self.mechanism)

    def build_controller(self):
        """Instantiate the preemption controller (``None`` = static default)."""
        if self.controller is None:
            return None
        return CONTROLLERS.create(self.controller, **dict(self.controller_options))

    def build_transfer_policy(self):
        """Resolve the transfer-engine scheduling policy."""
        return TRANSFER_POLICIES.create(self.transfer_policy)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        return {
            "policy": self.policy,
            "mechanism": self.mechanism,
            "transfer_policy": self.transfer_policy,
            "policy_options": dict(self.policy_options),
            "controller": self.controller,
            "controller_options": dict(self.controller_options),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SchemeSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        _reject_unknown_keys(cls, payload)
        return cls(**payload)

    def to_json(self) -> str:
        """JSON form."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SchemeSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# ScenarioSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=True)
class ScenarioSpec:
    """One complete simulation scenario (workload × scheme × configuration)."""

    #: The scheduling scheme to simulate under.
    scheme: SchemeSpec
    #: Benchmark names, one per process, in start order.
    applications: Tuple[str, ...]
    #: Index into ``applications`` of the high-priority process (or ``None``).
    high_priority_index: Optional[int] = None
    #: Identifier used in reports (workload number within its generation).
    workload_id: int = 0
    #: Workload scale preset name (``full``, ``reduced`` or ``smoke``).
    scale: str = "reduced"
    #: Nested overrides applied to the default :class:`SystemConfig`.
    config_overrides: Mapping[str, Any] = field(default_factory=dict)
    #: Completed iterations per process before the run stops
    #: (``None`` = the scale preset's default).
    min_iterations: Optional[int] = None
    #: Event bound for the run (``None`` = :data:`DEFAULT_MAX_EVENTS`).
    max_events: Optional[int] = None
    #: Start-time stagger between consecutive processes, µs.
    start_stagger_us: float = DEFAULT_START_STAGGER_US
    #: Priority values given to the high-priority / remaining processes.
    high_priority: int = HIGH_PRIORITY
    normal_priority: int = NORMAL_PRIORITY
    #: Attach the runtime invariant-validation layer (:mod:`repro.validation`)
    #: to the run.  Checkers observe, never perturb: results are byte-identical
    #: with and without validation; detected violations are surfaced through
    #: :class:`repro.runner.RunRecord`.
    validate: bool = False
    #: Attach the telemetry subsystem (:mod:`repro.telemetry`) to the run.
    #: The collector observes, never perturbs: results are byte-identical with
    #: and without tracing; the trace summary (and exported artifact paths)
    #: are surfaced through :class:`repro.runner.RunRecord`.
    trace: bool = False
    #: Open-loop serving configuration (``None`` = classic closed-loop run).
    #: A mapping with ``horizon_us`` plus optional admission/tenant settings;
    #: see :class:`repro.serving.ServingSpec` for the accepted keys.  When
    #: set, the scenario runs through :func:`repro.serving.run_serving`
    #: instead of replaying processes to a minimum iteration count.
    arrivals: Optional[Mapping[str, Any]] = None
    #: Per-tenant latency budgets (µs) for SLO-violation counting: keys are
    #: process names (``app#slot``), application names or ``"default"``.
    slo: Optional[Mapping[str, Any]] = None
    #: Multi-GPU fleet configuration (``None`` = single-GPU run).  A mapping
    #: with ``num_gpus`` plus optional ``router``/``router_options``/
    #: ``epoch_us``; see :class:`repro.cluster.ClusterSpec` for the accepted
    #: keys.  Requires an ``arrivals=`` section: the fleet serves the same
    #: open-loop request streams, routed across member GPUs.
    cluster: Optional[Mapping[str, Any]] = None
    #: Runtime-observability configuration (``None`` = metrics off).  A
    #: mapping with optional ``interval_us`` (snapshot cadence in simulated
    #: µs), ``heartbeat`` and ``histogram_growth`` keys; see
    #: :func:`repro.obs.resolve_metrics_spec`.  The metrics layer observes,
    #: never perturbs: run results are byte-identical with metrics on or
    #: off; snapshot series are exported as separate JSONL artifacts.
    metrics: Optional[Mapping[str, Any]] = None
    #: Event-queue implementation for the simulation engine (``None`` = the
    #: engine default).  A :data:`repro.registry.EVENT_QUEUES` name —
    #: ``heap`` forces the classic binary-heap oracle, ``calendar`` the
    #: tick-bucketed default.  Every registered queue produces byte-identical
    #: results; the choice only affects wall-clock speed.
    queue: Optional[str] = None

    __hash__ = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        object.__setattr__(self, "applications", tuple(self.applications))
        if not self.applications:
            raise ValueError("a scenario needs at least one application")
        if self.high_priority_index is not None and not (
            0 <= self.high_priority_index < len(self.applications)
        ):
            raise ValueError("high_priority_index out of range")
        if self.min_iterations is not None and self.min_iterations < 1:
            raise ValueError("min_iterations must be at least 1")
        if self.max_events is not None and self.max_events < 1:
            raise ValueError("max_events must be at least 1")
        if self.start_stagger_us < 0:
            raise ValueError("start_stagger_us must be non-negative")
        object.__setattr__(
            self, "config_overrides", _canonicalize(dict(self.config_overrides))
        )
        if self.arrivals is not None:
            object.__setattr__(self, "arrivals", _canonicalize(dict(self.arrivals)))
        if self.slo is not None:
            object.__setattr__(self, "slo", _canonicalize(dict(self.slo)))
        if self.slo is not None and self.arrivals is None:
            raise ValueError("slo= budgets require an arrivals= section")
        if self.cluster is not None:
            object.__setattr__(self, "cluster", _canonicalize(dict(self.cluster)))
            if self.arrivals is None:
                raise ValueError("cluster= fleets require an arrivals= section")
        if self.metrics is not None:
            if self.metrics is True:  # accept the CLI's bare-flag shorthand
                object.__setattr__(self, "metrics", {})
            else:
                object.__setattr__(self, "metrics", _canonicalize(dict(self.metrics)))
        if self.queue is not None and (
            not self.queue or not isinstance(self.queue, str)
        ):
            raise ValueError("queue must be None or a non-empty string")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_workload(cls, workload, scheme: SchemeSpec, **kwargs) -> "ScenarioSpec":
        """Build a scenario from a workload object.

        ``workload`` is anything exposing ``applications``,
        ``high_priority_index`` and ``workload_id`` (e.g.
        :class:`repro.workloads.multiprogram.WorkloadSpec`).
        """
        return cls(
            scheme=scheme,
            applications=tuple(workload.applications),
            high_priority_index=workload.high_priority_index,
            workload_id=workload.workload_id,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_processes(self) -> int:
        """Number of processes in the scenario."""
        return len(self.applications)

    def process_names(self) -> List[str]:
        """Unique process names (``app#slot``) for the scenario."""
        return [f"{app}#{slot}" for slot, app in enumerate(self.applications)]

    def workload_scale(self):
        """The resolved :class:`~repro.workloads.scale.WorkloadScale` preset."""
        from repro.workloads.scale import WorkloadScale  # local: avoids cycle

        return WorkloadScale.by_name(self.scale)

    def system_config(self) -> SystemConfig:
        """The (unscaled) hardware configuration with overrides applied."""
        return apply_config_overrides(SystemConfig(), self.config_overrides)

    def resolved_min_iterations(self) -> int:
        """Iteration bound: explicit value or the scale preset's default."""
        if self.min_iterations is not None:
            return self.min_iterations
        return self.workload_scale().min_iterations

    def resolved_max_events(self) -> int:
        """Event bound: explicit value or :data:`DEFAULT_MAX_EVENTS`."""
        return self.max_events if self.max_events is not None else DEFAULT_MAX_EVENTS

    def describe(self) -> str:
        """Short human-readable description used in reports and logs."""
        parts = []
        for slot, app in enumerate(self.applications):
            marker = "*" if slot == self.high_priority_index else ""
            parts.append(f"{app}{marker}")
        return f"W{self.workload_id}[{', '.join(parts)}] @ {self.scheme.label}/{self.scale}"

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        payload = {
            "scheme": self.scheme.to_dict(),
            "applications": list(self.applications),
            "high_priority_index": self.high_priority_index,
            "workload_id": self.workload_id,
            "scale": self.scale,
            "config_overrides": dict(self.config_overrides),
            "min_iterations": self.min_iterations,
            "max_events": self.max_events,
            "start_stagger_us": self.start_stagger_us,
            "high_priority": self.high_priority,
            "normal_priority": self.normal_priority,
            "validate": self.validate,
            "trace": self.trace,
            "arrivals": None if self.arrivals is None else dict(self.arrivals),
            "slo": None if self.slo is None else dict(self.slo),
            "cluster": None if self.cluster is None else dict(self.cluster),
        }
        # Omitted when disabled so pre-observability scenario dicts (golden
        # fixtures, archived payloads) stay byte-identical.
        if self.metrics is not None:
            payload["metrics"] = dict(self.metrics)
        # Same contract for the event-queue override: omitted when the
        # engine default is used, so archived payloads stay frozen.
        if self.queue is not None:
            payload["queue"] = self.queue
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a scenario from :meth:`to_dict` output."""
        _reject_unknown_keys(cls, payload)
        data = dict(payload)
        scheme = data.pop("scheme")
        if isinstance(scheme, Mapping):
            scheme = SchemeSpec.from_dict(scheme)
        return cls(scheme=scheme, **data)

    def to_json(self) -> str:
        """JSON form."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a scenario from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


__all__ = [
    "SchemeSpec",
    "ScenarioSpec",
    "apply_config_overrides",
    "config_to_overrides",
    "HIGH_PRIORITY",
    "NORMAL_PRIORITY",
    "DEFAULT_START_STAGGER_US",
    "DEFAULT_MAX_EVENTS",
]
