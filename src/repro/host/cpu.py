"""The host CPU model.

The paper's simulator performs coarse-grained modelling of the CPU: each
benchmark's CPU phases are replayed from timestamps.  The simulated Intel
i7-930 has 4 cores x 2-way SMT = 8 hardware threads, and the evaluated
workloads never exceed 8 processes, so CPU phases of different processes do
not contend in the paper's setup.  :class:`HostCPU` still models a bounded
pool of hardware threads so that over-subscribed configurations (more
processes than hardware threads) queue CPU phases instead of executing an
unbounded number of them in parallel.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.gpu.config import CPUConfig
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry


class HostCPU:
    """A pool of hardware threads executing timed CPU phases."""

    def __init__(self, config: CPUConfig, simulator: Simulator):
        self._config = config
        self._sim = simulator
        self._busy_threads = 0
        self._waiting: Deque[Tuple[float, Callable[[], None], str]] = deque()
        self.stats = StatRegistry()
        #: Optional instrumentation sink (see :mod:`repro.sim.observers`),
        #: notified of phase start/finish; it must never mutate state.
        self.observer: Optional[object] = None

    @property
    def hardware_threads(self) -> int:
        """Number of phases that can execute concurrently."""
        return self._config.hardware_threads

    @property
    def busy_threads(self) -> int:
        """Hardware threads currently running a CPU phase."""
        return self._busy_threads

    @property
    def queued_phases(self) -> int:
        """CPU phases waiting for a free hardware thread."""
        return len(self._waiting)

    def run_phase(self, duration_us: float, on_complete: Callable[[], None], *, label: str = "") -> None:
        """Execute a CPU phase of ``duration_us``; call ``on_complete`` after.

        If all hardware threads are busy, the phase waits in FIFO order.
        Zero-length phases complete via the event queue (never re-entrantly).
        """
        if duration_us < 0:
            raise ValueError("CPU phase duration must be non-negative")
        if self._busy_threads >= self.hardware_threads:
            self._waiting.append((duration_us, on_complete, label))
            self.stats.counter("phases_queued").add()
            return
        self._start(duration_us, on_complete, label)

    def _start(self, duration_us: float, on_complete: Callable[[], None], label: str) -> None:
        self._busy_threads += 1
        self.stats.counter("phases_started").add()
        self.stats.counter("cpu_time_us", unit="us").add(duration_us)
        if self.observer is not None:
            self.observer.on_cpu_phase_started(duration_us, label)

        def _finish() -> None:
            self._busy_threads -= 1
            if self.observer is not None:
                self.observer.on_cpu_phase_finished(label)
            try:
                on_complete()
            finally:
                self._drain_queue()

        self._sim.schedule(duration_us, _finish, label=label or "cpu.phase")

    def _drain_queue(self) -> None:
        while self._waiting and self._busy_threads < self.hardware_threads:
            duration, callback, label = self._waiting.popleft()
            self._start(duration, callback, label)
