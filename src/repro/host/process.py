"""Host processes: trace replay state machines.

A :class:`HostProcess` owns one GPU context and replays an
:class:`~repro.trace.schema.ApplicationTrace`: CPU phases execute on the host
CPU, kernel launches and memory copies become GPU commands issued through the
device driver, and synchronisation operations block the process until the
relevant commands complete.

For multiprogrammed workloads the process replays its trace repeatedly
("replaying them once they complete until all benchmarks have been executed
at least 3 times", paper Sec. 4.1); every completed replay is recorded as an
:class:`IterationRecord`, and only completed iterations enter the metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.gpu.command_queue import Command
from repro.gpu.context import GPUContext
from repro.host.cpu import HostCPU
from repro.host.driver import DeviceDriver
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry
from repro.trace.schema import (
    ApplicationTrace,
    CpuPhaseOp,
    DeviceSyncOp,
    FreeOp,
    KernelLaunchOp,
    MallocOp,
    MemcpyOp,
    StreamSyncOp,
)


@dataclass(frozen=True)
class IterationRecord:
    """Timing of one completed replay of the application trace."""

    index: int
    start_time_us: float
    end_time_us: float

    @property
    def duration_us(self) -> float:
        """Turnaround time of the iteration."""
        return self.end_time_us - self.start_time_us


class HostProcess:
    """One application process in the (multiprogrammed) workload."""

    def __init__(
        self,
        name: str,
        trace: ApplicationTrace,
        *,
        simulator: Simulator,
        driver: DeviceDriver,
        cpu: HostCPU,
        priority: int = 0,
        tokens: int = 0,
        start_delay_us: float = 0.0,
        max_iterations: Optional[int] = None,
        on_iteration_complete: Optional[Callable[["HostProcess", IterationRecord], None]] = None,
    ):
        if start_delay_us < 0:
            raise ValueError("start_delay_us must be non-negative")
        if max_iterations is not None and max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.name = name
        self.trace = trace
        self.priority = priority
        self.tokens = tokens
        self._sim = simulator
        self._driver = driver
        self._cpu = cpu
        self._start_delay = start_delay_us
        self._max_iterations = max_iterations
        self._on_iteration_complete = on_iteration_complete

        self.context: Optional[GPUContext] = None
        self.iterations: List[IterationRecord] = []
        self.stats = StatRegistry()

        self._started = False
        self._stopped = False
        self._op_index = 0
        self._iteration_start: Optional[float] = None
        self._allocations: Dict[str, int] = {}
        self._anonymous_allocations: List[int] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Create the process's GPU context and begin replaying the trace."""
        if self._started:
            raise RuntimeError(f"process {self.name} was already started")
        self._started = True
        self.context = self._driver.create_context(
            self.name, priority=self.priority, tokens=self.tokens
        )
        for kernel_name in self.trace.kernels:
            self.context.register_kernel(kernel_name)
        self._sim.schedule(self._start_delay, self._begin_iteration, label=f"{self.name}.start")

    def stop(self) -> None:
        """Stop replaying after the current operation (used at teardown)."""
        self._stopped = True

    @property
    def completed_iterations(self) -> int:
        """Number of fully completed replays of the trace."""
        return len(self.iterations)

    @property
    def is_running(self) -> bool:
        """Whether the process is still replaying its trace."""
        return self._started and not self._stopped

    def mean_iteration_time_us(self) -> float:
        """Average turnaround time over completed iterations."""
        if not self.iterations:
            raise ValueError(f"process {self.name} completed no iterations")
        return sum(record.duration_us for record in self.iterations) / len(self.iterations)

    # ------------------------------------------------------------------
    # Trace replay
    # ------------------------------------------------------------------
    def _begin_iteration(self) -> None:
        if self._stopped:
            return
        self._iteration_start = self._sim.now
        self._op_index = 0
        self._next_op()

    def _advance(self, latency_us: float = 0.0) -> None:
        """Schedule the next operation after ``latency_us``."""
        self._op_index += 1
        self._sim.schedule(latency_us, self._next_op, label=f"{self.name}.op{self._op_index}")

    def _next_op(self) -> None:
        if self._stopped:
            return
        if self._op_index >= len(self.trace.operations):
            self._finish_iteration()
            return
        op = self.trace.operations[self._op_index]
        issue_latency = self._driver.command_issue_latency_us
        assert self.context is not None

        if isinstance(op, CpuPhaseOp):
            self._cpu.run_phase(
                op.duration_us,
                lambda: self._advance(0.0),
                label=f"{self.name}.cpu",
            )
            return
        if isinstance(op, MallocOp):
            allocation = self._driver.malloc(self.context.context_id, op.size_bytes)
            if op.label:
                self._allocations[op.label] = allocation.virtual_address
            else:
                self._anonymous_allocations.append(allocation.virtual_address)
            self._advance(issue_latency)
            return
        if isinstance(op, FreeOp):
            address = self._allocations.pop(op.label, None)
            if address is not None:
                self._driver.free(self.context.context_id, address)
            self._advance(issue_latency)
            return
        if isinstance(op, MemcpyOp):
            command = self._driver.memcpy(
                self.context,
                op.size_bytes,
                op.direction,
                stream_id=op.stream,
                priority=self.priority,
            )
            self.stats.counter("transfer_bytes", unit="B").add(op.size_bytes)
            if op.synchronous:
                command.subscribe_completion(lambda now: self._advance(0.0))
            else:
                self._advance(issue_latency)
            return
        if isinstance(op, KernelLaunchOp):
            spec = self.trace.kernels[op.kernel_name]
            self._driver.launch_kernel(
                self.context, spec, stream_id=op.stream, priority=self.priority
            )
            self.stats.counter("kernel_launches").add()
            self._advance(issue_latency)
            return
        if isinstance(op, StreamSyncOp):
            stream = self._driver.stream(self.context.context_id, op.stream)
            if stream.when_idle(lambda now: self._advance(0.0)):
                self._advance(0.0)
            return
        if isinstance(op, DeviceSyncOp):
            self._device_synchronize()
            return
        raise TypeError(f"unknown trace operation: {op!r}")  # pragma: no cover

    def _device_synchronize(self) -> None:
        """Block until every outstanding command of the process completes."""
        assert self.context is not None
        streams = self._driver.streams_of(self.context.context_id)
        pending = [s for s in streams if not s.idle]
        if not pending:
            self._advance(0.0)
            return
        remaining = {"count": len(pending)}

        def _one_done(now: float) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                self._advance(0.0)

        for stream in pending:
            stream.when_idle(_one_done)

    # ------------------------------------------------------------------
    # Iteration bookkeeping
    # ------------------------------------------------------------------
    def _finish_iteration(self) -> None:
        assert self._iteration_start is not None
        record = IterationRecord(
            index=len(self.iterations),
            start_time_us=self._iteration_start,
            end_time_us=self._sim.now,
        )
        self.iterations.append(record)
        self.stats.counter("iterations_completed").add()
        self._release_iteration_memory()
        if self._on_iteration_complete is not None:
            self._on_iteration_complete(self, record)
        if self._stopped:
            return
        if self._max_iterations is not None and len(self.iterations) >= self._max_iterations:
            self._stopped = True
            return
        # Replay the trace again (paper Sec. 4.1 replay methodology).
        self._sim.schedule(0.0, self._begin_iteration, label=f"{self.name}.replay")

    def _release_iteration_memory(self) -> None:
        """Free the device allocations made during the finished iteration.

        A real application exits at the end of its run and the driver frees
        its memory; replaying without releasing would leak device memory
        across iterations.
        """
        assert self.context is not None
        for address in self._allocations.values():
            self._driver.free(self.context.context_id, address)
        for address in self._anonymous_allocations:
            self._driver.free(self.context.context_id, address)
        self._allocations.clear()
        self._anonymous_allocations.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HostProcess({self.name}, priority={self.priority}, "
            f"iterations={self.completed_iterations})"
        )
