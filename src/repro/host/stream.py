"""CUDA-like software streams.

Streams are FIFO work queues: commands in the same stream execute in order,
commands in different streams are independent and may overlap (paper
Sec. 2.1).  The in-order guarantee is physically enforced by mapping each
stream to its own hardware command queue; the :class:`Stream` object tracks
the outstanding commands so the host can implement ``StreamSynchronize``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.gpu.command_queue import Command


class Stream:
    """One software stream of a process."""

    def __init__(self, stream_id: int, hw_queue_id: int):
        self.stream_id = stream_id
        #: The hardware command queue the driver mapped this stream to.
        self.hw_queue_id = hw_queue_id
        self._outstanding: List[Command] = []
        self.total_commands = 0

    # ------------------------------------------------------------------
    # Command tracking
    # ------------------------------------------------------------------
    def track(self, command: Command) -> None:
        """Record a command issued to this stream."""
        self._outstanding.append(command)
        self.total_commands += 1
        command.subscribe_completion(lambda now, cmd=command: self._forget(cmd))

    def _forget(self, command: Command) -> None:
        try:
            self._outstanding.remove(command)
        except ValueError:  # pragma: no cover - defensive
            pass

    @property
    def outstanding(self) -> int:
        """Number of issued-but-incomplete commands in the stream."""
        return len(self._outstanding)

    @property
    def idle(self) -> bool:
        """Whether every command issued to the stream has completed."""
        return not self._outstanding

    def last_outstanding(self) -> Optional[Command]:
        """The most recently issued incomplete command (if any)."""
        return self._outstanding[-1] if self._outstanding else None

    def when_idle(self, callback: Callable[[float], None]) -> bool:
        """Invoke ``callback`` when the stream drains.

        Returns ``True`` if the stream is already idle (callback NOT called);
        otherwise subscribes the callback to the completion of the last
        outstanding command and returns ``False``.

        Because the stream is in-order, the last outstanding command is
        always the last one to complete.
        """
        last = self.last_outstanding()
        if last is None:
            return True
        last.subscribe_completion(callback)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Stream(id={self.stream_id}, hwq={self.hw_queue_id}, "
            f"outstanding={self.outstanding})"
        )
