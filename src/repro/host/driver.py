"""The GPU device driver.

The device driver performs the bookkeeping the OS performs for CPUs (paper
Sec. 2.1): it creates a GPU context per process, manages GPU memory
allocations, maps software streams onto hardware command queues, and builds
the kernel-launch and data-transfer commands the process's API calls turn
into.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from repro.gpu.command_queue import KernelCommand, TransferCommand, TransferDirection
from repro.gpu.config import SystemConfig
from repro.gpu.context import ContextTable, GPUContext
from repro.gpu.dispatcher import CommandDispatcher
from repro.gpu.kernel import KernelLaunch, KernelSpec
from repro.host.stream import Stream
from repro.memory.allocator import GPUMemoryAllocator
from repro.memory.address_space import Allocation
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry
from repro.utils.determinism import DeterministicJitter


class DeviceDriver:
    """Creates contexts, allocates memory and issues commands to the GPU."""

    def __init__(
        self,
        simulator: Simulator,
        config: SystemConfig,
        *,
        context_table: ContextTable,
        allocator: GPUMemoryAllocator,
        dispatcher: CommandDispatcher,
    ):
        self._sim = simulator
        self._config = config
        self._context_table = context_table
        self._allocator = allocator
        self._dispatcher = dispatcher
        self._launch_ids = itertools.count(1)
        self._next_hw_queue = 0
        #: (context_id, stream_id) -> Stream
        self._streams: Dict[Tuple[int, int], Stream] = {}
        self._jitter = DeterministicJitter(config.seed, config.tb_time_cv)
        self.stats = StatRegistry()

    # ------------------------------------------------------------------
    # Context and stream management
    # ------------------------------------------------------------------
    def create_context(self, process_name: str, *, priority: int = 0, tokens: int = 0) -> GPUContext:
        """Create the GPU context of a process (first CUDA call)."""
        context = self._context_table.create(process_name, priority=priority, tokens=tokens)
        self.stats.counter("contexts_created").add()
        # Stream 0 (the default stream) always exists.
        self._create_stream(context.context_id, 0)
        return context

    def destroy_context(self, context_id: int) -> None:
        """Tear down a process's context and free its memory."""
        self._allocator.destroy_address_space(context_id)
        self._context_table.destroy(context_id)
        for key in [key for key in self._streams if key[0] == context_id]:
            del self._streams[key]

    def _create_stream(self, context_id: int, stream_id: int) -> Stream:
        hw_queue = self._next_hw_queue % self._dispatcher.num_queues
        self._next_hw_queue += 1
        stream = Stream(stream_id, hw_queue)
        self._streams[(context_id, stream_id)] = stream
        self.stats.counter("streams_created").add()
        return stream

    def stream(self, context_id: int, stream_id: int) -> Stream:
        """The stream object for ``(context, stream_id)``, creating it lazily."""
        key = (context_id, stream_id)
        if key not in self._streams:
            return self._create_stream(context_id, stream_id)
        return self._streams[key]

    def streams_of(self, context_id: int) -> list[Stream]:
        """All streams created by a context."""
        return [s for (ctx, _), s in self._streams.items() if ctx == context_id]

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    def malloc(self, context_id: int, size_bytes: int) -> Allocation:
        """Allocate device memory on behalf of a process."""
        self.stats.counter("mallocs").add()
        return self._allocator.malloc(context_id, size_bytes)

    def free(self, context_id: int, virtual_address: int) -> None:
        """Free device memory on behalf of a process."""
        self.stats.counter("frees").add()
        self._allocator.free(context_id, virtual_address)

    # ------------------------------------------------------------------
    # Command construction and issue
    # ------------------------------------------------------------------
    def launch_kernel(
        self,
        context: GPUContext,
        spec: KernelSpec,
        *,
        stream_id: int = 0,
        priority: Optional[int] = None,
    ) -> KernelCommand:
        """Build a kernel launch and enqueue it on the stream's HW queue."""
        stream = self.stream(context.context_id, stream_id)
        launch = KernelLaunch(
            spec=spec,
            launch_id=next(self._launch_ids),
            context_id=context.context_id,
            process_name=context.process_name,
            stream_id=stream_id,
            priority=priority if priority is not None else context.priority,
            tokens=context.tokens,
            jitter=self._jitter if self._config.tb_time_cv > 0 else None,
        )
        launch.issue_time_us = self._sim.now
        command = KernelCommand(
            context_id=context.context_id,
            stream_id=stream_id,
            process_name=context.process_name,
            priority=launch.priority,
            launch=launch,
        )
        stream.track(command)
        self._dispatcher.enqueue(stream.hw_queue_id, command)
        self.stats.counter("kernel_launches").add()
        return command

    def memcpy(
        self,
        context: GPUContext,
        size_bytes: int,
        direction: TransferDirection,
        *,
        stream_id: int = 0,
        priority: Optional[int] = None,
    ) -> TransferCommand:
        """Build a DMA transfer and enqueue it on the stream's HW queue."""
        stream = self.stream(context.context_id, stream_id)
        command = TransferCommand(
            context_id=context.context_id,
            stream_id=stream_id,
            process_name=context.process_name,
            priority=priority if priority is not None else context.priority,
            size_bytes=size_bytes,
            direction=direction,
        )
        stream.track(command)
        self._dispatcher.enqueue(stream.hw_queue_id, command)
        self.stats.counter("memcpys").add()
        return command

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def command_issue_latency_us(self) -> float:
        """Host-side latency of issuing one command to the GPU."""
        return self._config.cpu.command_issue_latency_us
