"""Host-side (CPU) model.

The paper models the CPU coarsely: each benchmark's host code is a sequence
of timed CPU phases and CUDA API calls.  This package provides:

* :mod:`repro.host.cpu` — the host CPU (a pool of hardware threads in which
  CPU phases execute).
* :mod:`repro.host.stream` — CUDA-like software streams.
* :mod:`repro.host.driver` — the GPU device driver: context creation, memory
  allocation, mapping streams to hardware queues and building GPU commands.
* :mod:`repro.host.process` — a host process that replays an application
  trace, issuing commands through the driver and blocking on synchronisation
  points.
"""

from repro.host.cpu import HostCPU
from repro.host.driver import DeviceDriver
from repro.host.process import HostProcess, IterationRecord
from repro.host.stream import Stream

__all__ = ["HostCPU", "DeviceDriver", "HostProcess", "IterationRecord", "Stream"]
