"""Batch execution of declarative scenarios, serial or parallel.

The paper's evaluation is a large grid of *independent, deterministic*
simulations (workload × scheme × process count).  :class:`BatchRunner` runs a
list of :class:`~repro.scenario.ScenarioSpec` through that grid — serially in
this process, or fanned out over a :class:`~concurrent.futures.ProcessPoolExecutor`
(the simulations are CPU-bound, so process-level parallelism scales with
cores) — and returns structured, JSON-serialisable :class:`RunRecord` values
in the input order.

Because every simulation is deterministic (seeded RNG, discrete-event
engine), serial and parallel execution produce identical records; the
experiment harness relies on this to cache and share results.

>>> from repro.runner import BatchRunner
>>> from repro.scenario import ScenarioSpec, SchemeSpec
>>> scenarios = [
...     ScenarioSpec(scheme=SchemeSpec(policy="fcfs"), applications=("lbm", "spmv"),
...                  scale="smoke"),
... ]
>>> records = BatchRunner(jobs=2).run(scenarios)
>>> records[0].result.metrics.stp > 0
True
"""

from __future__ import annotations

import json
import os
import re
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.scenario import ScenarioSpec
from repro.workloads.multiprogram import WorkloadResult, WorkloadRunner

#: Per-process cache of workload runners, keyed by (scale, config overrides).
#: A runner caches the benchmark suite and the isolated baselines, which are
#: the expensive shared state of a batch; reusing it across scenarios in the
#: same (worker) process is what makes large grids tractable.
_RUNNER_CACHE: Dict[Tuple[str, str], WorkloadRunner] = {}


def _context_key(scenario: ScenarioSpec) -> Tuple[str, str]:
    return (
        scenario.scale,
        json.dumps(dict(scenario.config_overrides), sort_keys=True, default=str),
    )


def runner_for(scenario: ScenarioSpec) -> WorkloadRunner:
    """The (cached) :class:`WorkloadRunner` matching a scenario's context."""
    key = _context_key(scenario)
    runner = _RUNNER_CACHE.get(key)
    if runner is None:
        config = scenario.system_config() if scenario.config_overrides else None
        runner = WorkloadRunner(scale=scenario.workload_scale(), config=config)
        _RUNNER_CACHE[key] = runner
    return runner


@dataclass
class RunRecord:
    """Structured outcome of one scenario: the spec plus its results."""

    scenario: ScenarioSpec
    result: WorkloadResult

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (spec, timings, metrics, engine stats)."""
        metrics = self.result.metrics
        return {
            "scenario": self.scenario.to_dict(),
            "scheme": self.scenario.scheme.label,
            "trace": self.result.trace_summary,
            "serving": self.result.serving_summary,
            "process_times_us": dict(self.result.process_times_us),
            "process_applications": dict(self.result.process_applications),
            "metrics": {
                "ntt": dict(metrics.ntt),
                "antt": metrics.antt,
                "stp": metrics.stp,
                "fairness": metrics.fairness,
            },
            "engine_stats": dict(self.result.engine_stats),
            "simulated_time_us": self.result.simulated_time_us,
            "events_processed": self.result.events_processed,
            "validated": self.result.validated,
            "violations": [dict(violation) for violation in self.result.violations],
        }

    @property
    def violations(self) -> List[Dict[str, Any]]:
        """Invariant violations detected during the run (see :mod:`repro.validation`)."""
        return list(self.result.violations)

    @property
    def ok(self) -> bool:
        """Whether the run recorded no invariant violations."""
        return not self.result.violations

    @property
    def trace_summary(self) -> Optional[Dict[str, Any]]:
        """Telemetry summary of the run (``None`` unless the scenario traced)."""
        return self.result.trace_summary

    @property
    def trace_artifacts(self) -> List[str]:
        """Paths of trace artifacts exported by the (worker) run."""
        summary = self.result.trace_summary
        return list(summary.get("artifacts", [])) if summary else []

    def to_json(self) -> str:
        """JSON form."""
        return json.dumps(self.to_dict(), sort_keys=True)


def execute_scenario(
    scenario: ScenarioSpec,
    *,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
) -> RunRecord:
    """Run one scenario in this process (the unit of work of a batch)."""
    result = runner_for(scenario).run_scenario(
        scenario, trace_path=trace_path, metrics_path=metrics_path
    )
    return RunRecord(scenario=scenario, result=result)


def _execute_payload(
    payload: Tuple[Dict[str, Any], Optional[str], Optional[str]]
) -> RunRecord:
    """Worker-side entry point: rebuild the spec from its dict form and run."""
    scenario_dict, trace_path, metrics_path = payload
    return execute_scenario(
        ScenarioSpec.from_dict(scenario_dict),
        trace_path=trace_path,
        metrics_path=metrics_path,
    )


def _scenario_slug(scenario: ScenarioSpec) -> str:
    return re.sub(r"[^a-zA-Z0-9_.-]+", "-", scenario.describe()).strip("-").lower()


def trace_artifact_path(trace_dir: str, index: int, scenario: ScenarioSpec) -> str:
    """Deterministic per-scenario trace file path inside ``trace_dir``.

    Derived from the batch position and the scenario description only, so
    serial and parallel runs of the same batch export identical artifact
    sets.
    """
    return os.path.join(trace_dir, f"{index:04d}-{_scenario_slug(scenario)}.trace.json")


def metrics_artifact_path(metrics_dir: str, index: int, scenario: ScenarioSpec) -> str:
    """Deterministic per-scenario metrics JSONL path inside ``metrics_dir``.

    Same construction as :func:`trace_artifact_path`: batch position plus the
    scenario description, so serial and parallel runs export identical
    snapshot series files.
    """
    return os.path.join(
        metrics_dir, f"{index:04d}-{_scenario_slug(scenario)}.metrics.jsonl"
    )


class BatchRunner:
    """Executes lists of scenarios, optionally over a process pool.

    Parameters
    ----------
    jobs:
        Number of worker processes.  ``1`` (the default) runs everything
        serially in this process; ``0`` or ``None`` uses every CPU.
    chunksize:
        Scenarios handed to a worker at a time (parallel mode only);
        defaults to a heuristic that balances load and baseline-cache reuse.
    trace_dir:
        Directory for per-scenario trace artifacts.  Traced scenarios
        (``ScenarioSpec(trace=True)``) export a Chrome trace-event JSON file
        there (written by the worker that ran the scenario; the path is
        deterministic, see :func:`trace_artifact_path`, so serial and
        parallel runs produce the same artifact set).  ``None`` keeps traced
        runs summary-only.
    """

    def __init__(
        self,
        *,
        jobs: Optional[int] = 1,
        chunksize: Optional[int] = None,
        trace_dir: Optional[str] = None,
        metrics_dir: Optional[str] = None,
    ):
        if jobs is None or jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = jobs
        self.chunksize = chunksize
        self.trace_dir = trace_dir
        self.metrics_dir = metrics_dir
        #: Persistent pool behind :meth:`map_tasks` (lazily created/probed).
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_failed = False

    def _trace_paths(self, scenarios: List[ScenarioSpec]) -> List[Optional[str]]:
        if self.trace_dir is None:
            return [None] * len(scenarios)
        paths = [
            trace_artifact_path(self.trace_dir, index, scenario)
            if scenario.trace
            else None
            for index, scenario in enumerate(scenarios)
        ]
        if any(path is not None for path in paths):
            os.makedirs(self.trace_dir, exist_ok=True)
        return paths

    def _metrics_paths(self, scenarios: List[ScenarioSpec]) -> List[Optional[str]]:
        if self.metrics_dir is None:
            return [None] * len(scenarios)
        paths = [
            metrics_artifact_path(self.metrics_dir, index, scenario)
            if scenario.metrics is not None
            else None
            for index, scenario in enumerate(scenarios)
        ]
        if any(path is not None for path in paths):
            os.makedirs(self.metrics_dir, exist_ok=True)
        return paths

    def run(self, scenarios: Iterable[ScenarioSpec]) -> List[RunRecord]:
        """Run every scenario and return records in the input order."""
        scenarios = list(scenarios)
        trace_paths = self._trace_paths(scenarios)
        metrics_paths = self._metrics_paths(scenarios)
        if self.jobs == 1 or len(scenarios) < 2:
            return [
                execute_scenario(scenario, trace_path=path, metrics_path=mpath)
                for scenario, path, mpath in zip(scenarios, trace_paths, metrics_paths)
            ]
        return self._run_parallel(scenarios, trace_paths, metrics_paths)

    def _run_parallel(
        self,
        scenarios: List[ScenarioSpec],
        trace_paths: List[Optional[str]],
        metrics_paths: List[Optional[str]],
    ) -> List[RunRecord]:
        workers = min(self.jobs, len(scenarios))
        payloads = [
            (scenario.to_dict(), path, mpath)
            for scenario, path, mpath in zip(scenarios, trace_paths, metrics_paths)
        ]
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(1, len(scenarios) // (workers * 4))
        try:
            executor = ProcessPoolExecutor(max_workers=workers)
        except OSError as exc:  # pragma: no cover - sandboxed hosts
            return self._serial_fallback(scenarios, trace_paths, metrics_paths, exc)
        with executor:
            try:
                # Probe that workers can actually spawn (sandboxes may allow
                # creating the pool but forbid forking processes) before
                # committing the real grid to it.
                executor.submit(int).result()
            except OSError as exc:  # pragma: no cover - sandboxed hosts
                return self._serial_fallback(scenarios, trace_paths, metrics_paths, exc)
            # Worker errors (including OSError raised *by a scenario*) now
            # propagate: discarding completed work to re-run a long grid
            # serially would be far costlier than failing fast.
            return list(executor.map(_execute_payload, payloads, chunksize=chunksize))

    # ------------------------------------------------------------------
    # Generic sharding (used by the cluster fleet layer)
    # ------------------------------------------------------------------
    def map_tasks(self, fn, payloads) -> List[Any]:
        """Map a top-level function over payloads on this runner's pool.

        The generic sharding primitive behind :mod:`repro.cluster`: ``fn``
        must be a module-level (picklable) pure function and every payload
        plain data, so the result list is identical to
        ``[fn(p) for p in payloads]`` — the pool only buys wall-clock time,
        never changes results.  Order is preserved.  With ``jobs=1``, fewer
        than two payloads, or on hosts where worker processes cannot spawn,
        the map runs serially in this process.

        Unlike :meth:`run` (which builds a fresh pool per batch), the pool
        here persists across calls — epoch-sharded fleet simulations map
        many small batches, and respawning workers per epoch would swamp
        the work.  Call :meth:`close` (or use the runner as a context
        manager) to shut it down.
        """
        payloads = list(payloads)
        if self.jobs == 1 or len(payloads) < 2:
            return [fn(payload) for payload in payloads]
        executor = self._ensure_executor()
        if executor is None:  # pragma: no cover - sandboxed hosts
            return [fn(payload) for payload in payloads]
        return list(executor.map(fn, payloads))

    def _ensure_executor(self) -> Optional[ProcessPoolExecutor]:
        """The persistent pool, created and probed on first use.

        Returns ``None`` (serial mode) when worker processes cannot spawn;
        the failure is remembered so every later call skips the probe.
        """
        if self._executor_failed:  # pragma: no cover - sandboxed hosts
            return None
        if self._executor is None:
            try:
                executor = ProcessPoolExecutor(max_workers=self.jobs)
                executor.submit(int).result()
            except OSError as exc:  # pragma: no cover - sandboxed hosts
                self._executor_failed = True
                warnings.warn(
                    f"process pool unavailable ({exc}); map_tasks runs serially",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return None
            self._executor = executor
        return self._executor

    def close(self) -> None:
        """Shut down the persistent :meth:`map_tasks` pool (if any)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _serial_fallback(
        scenarios: List[ScenarioSpec],
        trace_paths: List[Optional[str]],
        metrics_paths: List[Optional[str]],
        exc: BaseException,
    ) -> List[RunRecord]:  # pragma: no cover - sandboxed hosts
        warnings.warn(
            f"process pool unavailable ({exc}); falling back to serial execution",
            RuntimeWarning,
            stacklevel=3,
        )
        return [
            execute_scenario(scenario, trace_path=path, metrics_path=mpath)
            for scenario, path, mpath in zip(scenarios, trace_paths, metrics_paths)
        ]


__all__ = [
    "BatchRunner",
    "RunRecord",
    "execute_scenario",
    "runner_for",
    "trace_artifact_path",
    "metrics_artifact_path",
]
