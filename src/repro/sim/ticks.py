"""Integer-tick timestamps for the event core.

The engine's public contract is float **microseconds** (``Simulator.now``,
observer hooks, metrics, checkpoints all speak float µs), but the event queue
additionally carries an integer **nanosecond tick** per event:
``ticks = round(time_us * TICKS_PER_US)``.

Why both?  Floats stay *authoritative* — model code accumulates times as
float sums (``0.1 + 0.2`` is not ``300 / 1000``) and e.g. the serving layer
draws exponential inter-arrival gaps that are not tick-exact, so collapsing
the timeline onto ticks would shift results.  Rounding to ticks, however, is
*monotone*: ``t1 < t2`` implies ``ticks(t1) <= ticks(t2)``, so integer ticks
are a correct coarse key for bucketing — the calendar queue
(:class:`repro.sim.queues.CalendarEventQueue`) groups events by tick and
breaks ties inside a bucket with the exact ``(time, priority, seq)`` tuple,
preserving the heap's total order unconditionally.  Integer comparisons are
also cheaper than float comparisons on the scheduling hot path.

:func:`is_tick_exact` and :func:`audit_exactness` back the test-suite audit
that every latency/duration a workload feeds the engine survives the
float → tick → float round-trip at 1 ns resolution (so tick collisions only
merge events that genuinely fire at the same modelled instant).
"""

from __future__ import annotations

from typing import Iterable, List

#: Integer ticks per simulated microsecond (1 tick = 1 nanosecond).
TICKS_PER_US = 1000


def us_to_ticks(time_us: float) -> int:
    """Convert float microseconds to the nearest integer nanosecond tick.

    Monotone non-decreasing, which is the only property bucketing needs.
    """
    return round(time_us * TICKS_PER_US)


def ticks_to_us(ticks: int) -> float:
    """Convert integer nanosecond ticks back to float microseconds."""
    return ticks / TICKS_PER_US


def is_tick_exact(time_us: float) -> bool:
    """Whether ``time_us`` survives the float → tick → float round-trip."""
    return ticks_to_us(us_to_ticks(time_us)) == time_us


def audit_exactness(values_us: Iterable[float]) -> List[float]:
    """Return the values that do *not* survive the tick round-trip.

    Used by the exactness audit in ``tests/sim/test_ticks.py``: workload
    latencies and configuration durations must all come back empty, which
    justifies the 1 ns tick resolution (events at distinct modelled times
    land in distinct buckets).
    """
    return [value for value in values_us if not is_tick_exact(value)]


__all__ = [
    "TICKS_PER_US",
    "us_to_ticks",
    "ticks_to_us",
    "is_tick_exact",
    "audit_exactness",
]
