"""Event primitives for the discrete-event simulation engine.

An :class:`Event` couples a firing time with a callback.  Events are ordered
by ``(time, priority, sequence)`` so that simultaneous events fire in a
deterministic order: first by explicit priority (lower fires earlier), then by
scheduling order.  Determinism matters because the whole reproduction relies
on seeded, repeatable runs (see DESIGN.md section 5).

Performance notes
-----------------
Events sit on the simulator's hottest path: large-GPU scenarios create one
event per thread-block *wave* (see :mod:`repro.gpu.sm`) and still push
hundreds of thousands of them through the heap.  :class:`Event` is therefore
a plain ``__slots__`` class (no per-instance ``__dict__``, no dataclass
machinery in ``__init__``), and the :class:`~repro.sim.engine.Simulator`
stores ``(time, priority, seq, event)`` tuples on its heap so ordering uses
C-level tuple comparison instead of Python ``__lt__`` calls.  ``seq`` is
unique per simulator, so comparisons never reach the event object itself.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.sim.ticks import TICKS_PER_US

#: Monotonically increasing sequence shared by every event created through
#: :func:`make_event`.  The :class:`~repro.sim.engine.Simulator` keeps its own
#: per-instance counter (cheaper, and ordering only matters within one
#: simulator); the global sequence exists for events built directly by tests
#: and tools.
_EVENT_SEQUENCE = itertools.count()


class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (microseconds) at which the event fires.
    priority:
        Tie-breaker for events scheduled at the same time.  Lower values fire
        first.  The engines in :mod:`repro.gpu` use priorities to guarantee,
        e.g., that a thread-block completion is processed before the kernel
        completion check scheduled at the same instant.
    seq:
        Monotonic sequence number assigned at scheduling time; the final
        tie-breaker, which makes event ordering fully deterministic.
    ticks:
        ``time`` rounded to integer nanosecond ticks
        (:data:`repro.sim.ticks.TICKS_PER_US`).  A derived, monotone coarse
        key used by bucketing event queues; :attr:`time` stays the
        authoritative float-µs timestamp at every API boundary.
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    on_cancelled:
        Invoked exactly once when a still-pending event is cancelled.  The
        owning simulator uses it to keep its live-event count exact even when
        handles are cancelled directly (without going through
        :meth:`repro.sim.engine.Simulator.cancel`).
    """

    __slots__ = (
        "time",
        "ticks",
        "priority",
        "seq",
        "callback",
        "cancelled",
        "fired",
        "label",
        "on_cancelled",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        label: str = "",
        cancelled: bool = False,
        on_cancelled: Optional[Callable[[], None]] = None,
    ):
        self.time = time
        self.ticks = round(time * TICKS_PER_US)
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = cancelled
        #: Set by the simulator the moment the event is popped for execution
        #: (before its callback runs); used to tell pending events apart.
        self.fired = False
        self.on_cancelled = on_cancelled

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancelled is not None:
            notify, self.on_cancelled = self.on_cancelled, None
            notify()

    # Ordering is kept for direct users (the simulator compares heap tuples,
    # never events).
    def _key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Event") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "Event") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "Event") -> bool:
        return self._key() >= other._key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, prio={self.priority}, seq={self.seq}, {state})"


class EventHandle:
    """Opaque handle returned by :meth:`repro.sim.engine.Simulator.schedule`.

    The handle allows the owner to cancel a pending event without exposing the
    mutable :class:`Event` object itself.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> float:
        """Absolute time the event is scheduled to fire at."""
        return self._event.time

    @property
    def label(self) -> str:
        """Human-readable label given at scheduling time (may be empty)."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this handle."""
        return self._event.cancelled

    @property
    def seq(self) -> int:
        """Sequence number assigned at scheduling time."""
        return self._event.seq

    @property
    def pending(self) -> bool:
        """Whether the event still sits un-fired and un-cancelled in the heap."""
        event = self._event
        return not event.fired and not event.cancelled

    def cancel(self) -> None:
        """Cancel the pending event; a no-op if it already fired."""
        self._event.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, {state}, label={self.label!r})"


def next_sequence() -> int:
    """Return the next global event sequence number."""
    return next(_EVENT_SEQUENCE)


def make_event(
    time: float,
    callback: Callable[[], None],
    *,
    priority: int = 0,
    label: str = "",
) -> Event:
    """Create an :class:`Event` with the next global sequence number."""
    return Event(time, priority, next_sequence(), callback, label)


def callback_with_args(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Callable[[], None]:
    """Bind ``fn(*args, **kwargs)`` into a zero-argument event callback."""

    def _bound() -> None:
        fn(*args, **kwargs)

    return _bound
