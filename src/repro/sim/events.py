"""Event primitives for the discrete-event simulation engine.

An :class:`Event` couples a firing time with a callback.  Events are ordered
by ``(time, priority, sequence)`` so that simultaneous events fire in a
deterministic order: first by explicit priority (lower fires earlier), then by
scheduling order.  Determinism matters because the whole reproduction relies
on seeded, repeatable runs (see DESIGN.md section 5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

#: Monotonically increasing sequence shared by every event ever created.  The
#: sequence only breaks ties between events scheduled for the same time and
#: priority, so sharing it across simulator instances is harmless.
_EVENT_SEQUENCE = itertools.count()


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (microseconds) at which the event fires.
    priority:
        Tie-breaker for events scheduled at the same time.  Lower values fire
        first.  The engines in :mod:`repro.gpu` use priorities to guarantee,
        e.g., that a thread-block completion is processed before the kernel
        completion check scheduled at the same instant.
    seq:
        Monotonic sequence number assigned at scheduling time; the final
        tie-breaker, which makes event ordering fully deterministic.
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    time: float
    priority: int
    seq: int = field(compare=True)
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    #: Invoked exactly once when a still-pending event is cancelled.  The
    #: owning simulator uses it to keep its live-event count exact even when
    #: handles are cancelled directly (without going through
    #: :meth:`repro.sim.engine.Simulator.cancel`).
    on_cancelled: Callable[[], None] | None = field(default=None, compare=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancelled is not None:
            notify, self.on_cancelled = self.on_cancelled, None
            notify()


class EventHandle:
    """Opaque handle returned by :meth:`repro.sim.engine.Simulator.schedule`.

    The handle allows the owner to cancel a pending event without exposing the
    mutable :class:`Event` object itself.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> float:
        """Absolute time the event is scheduled to fire at."""
        return self._event.time

    @property
    def label(self) -> str:
        """Human-readable label given at scheduling time (may be empty)."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this handle."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the pending event; a no-op if it already fired."""
        self._event.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, {state}, label={self.label!r})"


def next_sequence() -> int:
    """Return the next global event sequence number."""
    return next(_EVENT_SEQUENCE)


def make_event(
    time: float,
    callback: Callable[[], None],
    *,
    priority: int = 0,
    label: str = "",
) -> Event:
    """Create an :class:`Event` with the next global sequence number."""
    return Event(
        time=time,
        priority=priority,
        seq=next_sequence(),
        callback=callback,
        label=label,
    )


def callback_with_args(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Callable[[], None]:
    """Bind ``fn(*args, **kwargs)`` into a zero-argument event callback."""

    def _bound() -> None:
        fn(*args, **kwargs)

    return _bound
