"""The discrete-event simulation engine.

The engine is intentionally small: a time-ordered heap of events, a current
simulation time, and helpers to schedule, cancel and run.  Every hardware
model in :mod:`repro.gpu`, :mod:`repro.memory` and :mod:`repro.host` is built
as a set of callbacks scheduled on one shared :class:`Simulator` instance.

Times are floats in **microseconds**.  The engine never rounds times; the
models themselves decide their own granularity.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

from repro.sim.events import Event, EventHandle, make_event


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (scheduling in the past, etc.)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 5.0]
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._running = False
        self._stopped = False
        #: Exact number of non-cancelled events in the heap; kept so that
        #: :attr:`pending_events` is O(1) (it is queried inside the validation
        #: layer's assertion loops).
        self._live_events = 0
        self._observers: list = []
        self.events_processed = 0
        self.events_scheduled = 0
        self.events_cancelled = 0

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` microseconds from now.

        ``delay`` must be non-negative; a zero delay schedules the callback at
        the current time (it will run after the currently-executing event
        finishes, ordered by priority and scheduling order).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} us in the past")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before current time t={self._now}"
            )
        event = make_event(time, callback, priority=priority, label=label)
        event.on_cancelled = self._note_cancellation
        heapq.heappush(self._heap, event)
        self._live_events += 1
        self.events_scheduled += 1
        if self._observers:
            for observer in self._observers:
                observer.on_event_scheduled(event, self._now)
        return EventHandle(event)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        handle.cancel()

    def _note_cancellation(self) -> None:
        """Cancellation bookkeeping (fires once per cancelled live event)."""
        self._live_events -= 1
        self.events_cancelled += 1

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def add_observer(self, observer) -> None:
        """Attach an observer notified of event scheduling and firing.

        Observers expose ``on_event_scheduled(event, now)`` and
        ``on_event_fired(event, previous_now)``.  They must only *observe*:
        the validation layer relies on observers never perturbing simulation
        state, so that runs are byte-identical with and without them.
        """
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Detach a previously attached observer (idempotent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next pending event.

        Returns ``True`` if an event was processed, ``False`` if the event
        queue is empty (cancelled events are discarded transparently).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event heap yielded an event from the past")
            previous_now = self._now
            # The event left the heap: late cancels must not touch the count.
            event.on_cancelled = None
            self._live_events -= 1
            self._now = event.time
            self.events_processed += 1
            if self._observers:
                for observer in self._observers:
                    observer.on_event_fired(event, previous_now)
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains, ``until`` is reached, or stopped.

        Parameters
        ----------
        until:
            Optional absolute time bound.  Events scheduled strictly after
            ``until`` are left in the queue and the clock is advanced to
            ``until`` — on every exit path, including :meth:`stop`.  If a
            stopped run leaves events scheduled *before* ``until`` pending,
            the clock only advances to the earliest of them, so the run can
            be resumed without firing events in the past.
        max_events:
            Optional safety bound on the number of events to process; mostly
            useful in tests to catch livelocks.
        """
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._heap:
                if self._stopped:
                    break
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    break
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}; possible livelock"
                    )
                if self.step():
                    processed += 1
            # One consistent clamp for every exit path (drained, reached
            # ``until``, or stopped): the clock advances to ``until``, but
            # never past a still-pending event (a stopped run may leave
            # events before ``until`` in the queue, and jumping over them
            # would break the no-events-in-the-past invariant on resume).
            if until is not None:
                bound = until
                next_event = self._peek()
                if next_event is not None and next_event.time < bound:
                    bound = next_event.time
                self._now = max(self._now, bound)
        finally:
            self._running = False

    def stop(self) -> None:
        """Request that :meth:`run` returns after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return self._live_events

    def pending_labels(self) -> Iterable[str]:
        """Labels of pending events (debugging aid for tests)."""
        return [event.label for event in sorted(self._heap) if not event.cancelled]

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        event = self._peek()
        return event.time if event is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}us, pending={self.pending_events}, "
            f"processed={self.events_processed})"
        )
