"""The discrete-event simulation engine.

The engine is intentionally small: a time-ordered queue of events, a current
simulation time, and helpers to schedule, cancel and run.  Every hardware
model in :mod:`repro.gpu`, :mod:`repro.memory` and :mod:`repro.host` is built
as a set of callbacks scheduled on one shared :class:`Simulator` instance.

Times are floats in **microseconds** at every public boundary
(:attr:`Simulator.now`, observer hooks, metrics, checkpoints).  Internally
each event also carries an integer nanosecond tick (:mod:`repro.sim.ticks`)
— a derived, monotone coarse key that bucketing queues exploit; the float
time stays authoritative, so the engine never rounds observable times.

Hot-path design
---------------
Large-GPU scenarios (see :mod:`repro.workloads.large_gpu`) push hundreds of
thousands of events through one simulator, so the schedule/run loop is built
for throughput while keeping the observable contract bit-for-bit stable:

* Event storage is a pluggable :class:`~repro.sim.queues.EventQueue`
  (``Simulator(queue=...)``, resolved through
  :data:`repro.registry.EVENT_QUEUES`).  Entries are ``(time, priority,
  seq, event)`` tuples: ordering is C-level tuple comparison, and the unique
  per-simulator ``seq`` guarantees comparisons never reach the
  :class:`~repro.sim.events.Event` object (a plain ``__slots__`` class).
  The default is the tick-bucketed calendar queue; ``queue="heap"`` forces
  the classic binary heap, the byte-identity oracle.
* :meth:`schedule_at` and the :meth:`run` loop take a no-observer fast path:
  the per-event observer fan-out costs one attribute check unless an
  observer (validation, telemetry) is actually attached.
* Cancelled events are reclaimed lazily by the queue; when too many dead
  entries accumulate (cancellation-heavy preemption scenarios) the queue
  compacts in place so memory and pop cost stay bounded.
* :attr:`pending_events` is an exact O(1) live counter and
  :attr:`peak_heap_entries` records the high-water mark of stored entries
  (``benchmarks/bench_scale.py`` reports it as the peak queue size).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Union

from repro.sim.events import Event, EventHandle
from repro.sim.queues import EventQueue, resolve_queue


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (scheduling in the past, etc.)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial simulation clock in microseconds (resumed serving segments
        continue the clock of the segment they were checkpointed from).
    queue:
        Event-queue implementation: a :data:`repro.registry.EVENT_QUEUES`
        name, a ready :class:`~repro.sim.queues.EventQueue` instance, or
        ``None`` for the default (``calendar``).  Every registered queue
        yields the exact same event order; the choice only affects speed.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 5.0]
    """

    def __init__(
        self,
        start_time: float = 0.0,
        queue: Union[str, EventQueue, None] = None,
    ):
        self._now = float(start_time)
        #: The pluggable event store (see :mod:`repro.sim.queues`).
        self.queue = resolve_queue(queue)
        self._running = False
        self._stopped = False
        #: Per-simulator event sequence (tie-breaker; see events.py).
        self._seq = 0
        #: Exact number of non-cancelled events in the queue; kept so that
        #: :attr:`pending_events` is O(1) (it is queried inside the validation
        #: layer's assertion loops).
        self._live_events = 0
        self._observers: list = []
        self.events_processed = 0
        self.events_scheduled = 0
        self.events_cancelled = 0
        #: High-water mark of stored entries (live + dead), for benchmarks.
        self.peak_heap_entries = 0
        #: Optional :class:`repro.obs.MetricsHub` probe called once per fired
        #: event.  None-gated raw attribute (not an observer): with metrics
        #: off the hot loop pays one attribute load, and unlike observers it
        #: does not disable the SM wave-batching fast path.
        self.metrics = None
        #: Optional :class:`repro.obs.EventLoopProfiler` wrapping event
        #: callbacks with wall-clock timing; same None-gated contract.
        self.profiler = None

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def queue_name(self) -> str:
        """Registry name of the active event-queue implementation."""
        return self.queue.name

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` microseconds from now.

        ``delay`` must be non-negative; a zero delay schedules the callback at
        the current time (it will run after the currently-executing event
        finishes, ordered by priority and scheduling order).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} us in the past")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before current time t={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, label)
        event.on_cancelled = self._note_cancellation
        queue = self.queue
        queue.push((time, priority, seq, event))
        self._live_events += 1
        self.events_scheduled += 1
        entries = len(queue)
        if entries > self.peak_heap_entries:
            self.peak_heap_entries = entries
        if self._observers:
            for observer in self._observers:
                observer.on_event_scheduled(event, self._now)
        return EventHandle(event)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        handle.cancel()

    def _note_cancellation(self) -> None:
        """Cancellation bookkeeping (fires once per cancelled live event)."""
        self._live_events -= 1
        self.events_cancelled += 1
        self.queue.note_cancelled()

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def add_observer(self, observer) -> None:
        """Attach an observer notified of event scheduling and firing.

        Observers expose ``on_event_scheduled(event, now)`` and
        ``on_event_fired(event, previous_now)``.  They must only *observe*:
        the validation layer relies on observers never perturbing simulation
        state, so that runs are byte-identical with and without them.
        """
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Detach a previously attached observer (idempotent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _fire(self, entry) -> None:
        """Advance the clock to ``entry`` and run its callback."""
        event = entry[3]
        previous_now = self._now
        # The event left the queue: late cancels must not touch the count,
        # and ``fired`` must flip *before* the callback runs (wave joining
        # relies on a firing event no longer reading as pending).
        event.fired = True
        event.on_cancelled = None
        self._live_events -= 1
        self._now = entry[0]
        self.events_processed += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.on_event(entry[0], event.label)
        if self._observers:
            for observer in self._observers:
                observer.on_event_fired(event, previous_now)
        profiler = self.profiler
        if profiler is None:
            event.callback()
        else:
            profiler.record(event.label, event.callback)

    def step(self) -> bool:
        """Process the next pending event.

        Returns ``True`` if an event was processed, ``False`` if the event
        queue is empty (cancelled events are discarded transparently).
        """
        entry = self.queue.pop()
        if entry is None:
            return False
        if entry[0] < self._now:  # pragma: no cover - defensive
            raise SimulationError("event queue yielded an event from the past")
        self._fire(entry)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains, ``until`` is reached, or stopped.

        Parameters
        ----------
        until:
            Optional absolute time bound.  Events scheduled strictly after
            ``until`` are left in the queue and the clock is advanced to
            ``until`` — on every exit path, including :meth:`stop`.  If a
            stopped run leaves events scheduled *before* ``until`` pending,
            the clock only advances to the earliest of them, so the run can
            be resumed without firing events in the past.
        max_events:
            Optional safety bound on the number of events to process; mostly
            useful in tests to catch livelocks.  Raises while the offending
            event is still queued.
        """
        self._running = True
        self._stopped = False
        processed = 0
        pop = self.queue.pop
        try:
            while not self._stopped:
                if max_events is not None and processed >= max_events:
                    # Only a live event at/before ``until`` counts as the
                    # bound being exceeded; an empty (or out-of-bound) queue
                    # is a normal exit.
                    next_time = self.peek_time()
                    if next_time is None or (until is not None and next_time > until):
                        break
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}; possible livelock"
                    )
                entry = pop(until)
                if entry is None:
                    break
                if entry[0] < self._now:  # pragma: no cover - defensive
                    raise SimulationError("event queue yielded an event from the past")
                self._fire(entry)
                processed += 1
            # One consistent clamp for every exit path (drained, reached
            # ``until``, or stopped): the clock advances to ``until``, but
            # never past a still-pending event (a stopped run may leave
            # events before ``until`` in the queue, and jumping over them
            # would break the no-events-in-the-past invariant on resume).
            if until is not None:
                bound = until
                next_time = self.peek_time()
                if next_time is not None and next_time < bound:
                    bound = next_time
                self._now = max(self._now, bound)
        finally:
            self._running = False

    def stop(self) -> None:
        """Request that :meth:`run` returns after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without popping it."""
        entry = self.queue.peek()
        return entry[3] if entry is not None else None

    @property
    def _heap(self) -> list:
        """Snapshot of stored queue entries (tests/debugging compatibility).

        The engine no longer owns a literal heap; this materialises the
        active queue's entries (including dead ones awaiting reclaim) in
        whatever internal order the queue keeps them.  Hot paths use
        ``len(self.queue)`` instead.
        """
        return self.queue.entries()

    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return self._live_events

    @property
    def compactions(self) -> int:
        """Dead-entry compactions performed by the active queue."""
        return self.queue.compactions

    @property
    def last_sequence(self) -> int:
        """Sequence number of the most recently scheduled event (-1 if none).

        Introspection form of the sequence-contiguity signal the SM's wave
        joining relies on ("nothing was scheduled since event X") — the join
        hot path itself reads ``sim._seq`` directly
        (:meth:`repro.gpu.sm.StreamingMultiprocessor._schedule_completion`),
        so keep this definition in sync with :attr:`_seq`.
        """
        return self._seq - 1

    def pending_labels(self) -> Iterable[str]:
        """Labels of pending events (debugging aid for tests)."""
        return [entry[3].label for entry in self.queue.sorted_entries()]

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        entry = self.queue.peek()
        return entry[0] if entry is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}us, pending={self.pending_events}, "
            f"processed={self.events_processed})"
        )
