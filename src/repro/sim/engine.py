"""The discrete-event simulation engine.

The engine is intentionally small: a time-ordered heap of events, a current
simulation time, and helpers to schedule, cancel and run.  Every hardware
model in :mod:`repro.gpu`, :mod:`repro.memory` and :mod:`repro.host` is built
as a set of callbacks scheduled on one shared :class:`Simulator` instance.

Times are floats in **microseconds**.  The engine never rounds times; the
models themselves decide their own granularity.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

from repro.sim.events import Event, EventHandle, make_event


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (scheduling in the past, etc.)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 5.0]
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._running = False
        self._stopped = False
        self.events_processed = 0
        self.events_scheduled = 0
        self.events_cancelled = 0

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` microseconds from now.

        ``delay`` must be non-negative; a zero delay schedules the callback at
        the current time (it will run after the currently-executing event
        finishes, ordered by priority and scheduling order).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} us in the past")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before current time t={self._now}"
            )
        event = make_event(time, callback, priority=priority, label=label)
        heapq.heappush(self._heap, event)
        self.events_scheduled += 1
        return EventHandle(event)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        if not handle.cancelled:
            handle.cancel()
            self.events_cancelled += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next pending event.

        Returns ``True`` if an event was processed, ``False`` if the event
        queue is empty (cancelled events are discarded transparently).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event heap yielded an event from the past")
            self._now = event.time
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains, ``until`` is reached, or stopped.

        Parameters
        ----------
        until:
            Optional absolute time bound.  Events scheduled strictly after
            ``until`` are left in the queue and the clock is advanced to
            ``until``.
        max_events:
            Optional safety bound on the number of events to process; mostly
            useful in tests to catch livelocks.
        """
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._heap:
                if self._stopped:
                    return
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    self._now = max(self._now, until)
                    return
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}; possible livelock"
                    )
                if self.step():
                    processed += 1
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False

    def stop(self) -> None:
        """Request that :meth:`run` returns after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    def pending_labels(self) -> Iterable[str]:
        """Labels of pending events (debugging aid for tests)."""
        return [event.label for event in sorted(self._heap) if not event.cancelled]

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        event = self._peek()
        return event.time if event is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}us, pending={self.pending_events}, "
            f"processed={self.events_processed})"
        )
