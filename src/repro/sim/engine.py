"""The discrete-event simulation engine.

The engine is intentionally small: a time-ordered heap of events, a current
simulation time, and helpers to schedule, cancel and run.  Every hardware
model in :mod:`repro.gpu`, :mod:`repro.memory` and :mod:`repro.host` is built
as a set of callbacks scheduled on one shared :class:`Simulator` instance.

Times are floats in **microseconds**.  The engine never rounds times; the
models themselves decide their own granularity.

Hot-path design
---------------
Large-GPU scenarios (see :mod:`repro.workloads.large_gpu`) push hundreds of
thousands of events through one simulator, so the schedule/run loop is built
for throughput while keeping the observable contract bit-for-bit stable:

* The heap stores ``(time, priority, seq, event)`` tuples: ordering is
  C-level tuple comparison, and the unique per-simulator ``seq`` guarantees
  comparisons never reach the :class:`~repro.sim.events.Event` object (a
  plain ``__slots__`` class).
* :meth:`schedule_at` and the :meth:`run` loop take a no-observer fast path:
  the per-event observer fan-out costs one attribute check unless an
  observer (validation, telemetry) is actually attached.
* Cancelled events are skipped lazily when popped; when too many dead
  entries accumulate (cancellation-heavy preemption scenarios), the heap is
  compacted in place so memory and pop cost stay bounded.
* :attr:`pending_events` is an exact O(1) live counter and
  :attr:`peak_heap_entries` records the high-water mark of the heap
  (``benchmarks/bench_scale.py`` reports it as the peak heap size).
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

from repro.sim.events import Event, EventHandle

#: Compact the heap when it holds more than this many dead (cancelled)
#: entries *and* they outnumber the live ones (see :meth:`Simulator._maybe_compact`).
_COMPACTION_MIN_DEAD = 64


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (scheduling in the past, etc.)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 5.0]
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        #: Heap of ``(time, priority, seq, event)`` tuples.
        self._heap: list = []
        self._running = False
        self._stopped = False
        #: Per-simulator event sequence (tie-breaker; see events.py).
        self._seq = 0
        #: Exact number of non-cancelled events in the heap; kept so that
        #: :attr:`pending_events` is O(1) (it is queried inside the validation
        #: layer's assertion loops).
        self._live_events = 0
        #: Cancelled events still sitting in the heap (compaction trigger).
        self._dead_entries = 0
        self._observers: list = []
        self.events_processed = 0
        self.events_scheduled = 0
        self.events_cancelled = 0
        #: High-water mark of heap entries (live + dead), for benchmarks.
        self.peak_heap_entries = 0
        #: Number of in-place heap compactions performed (see
        #: :meth:`_maybe_compact`); surfaced by the metrics layer.
        self.compactions = 0
        #: Optional :class:`repro.obs.MetricsHub` probe called once per fired
        #: event.  None-gated raw attribute (not an observer): with metrics
        #: off the hot loop pays one attribute load, and unlike observers it
        #: does not disable the SM wave-batching fast path.
        self.metrics = None
        #: Optional :class:`repro.obs.EventLoopProfiler` wrapping event
        #: callbacks with wall-clock timing; same None-gated contract.
        self.profiler = None

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` microseconds from now.

        ``delay`` must be non-negative; a zero delay schedules the callback at
        the current time (it will run after the currently-executing event
        finishes, ordered by priority and scheduling order).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} us in the past")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before current time t={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, label)
        event.on_cancelled = self._note_cancellation
        heap = self._heap
        heapq.heappush(heap, (time, priority, seq, event))
        self._live_events += 1
        self.events_scheduled += 1
        if len(heap) > self.peak_heap_entries:
            self.peak_heap_entries = len(heap)
        if self._observers:
            for observer in self._observers:
                observer.on_event_scheduled(event, self._now)
        return EventHandle(event)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        handle.cancel()

    def _note_cancellation(self) -> None:
        """Cancellation bookkeeping (fires once per cancelled live event)."""
        self._live_events -= 1
        self.events_cancelled += 1
        self._dead_entries += 1
        if self._dead_entries > _COMPACTION_MIN_DEAD:
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Drop dead heap entries once they outnumber the live ones.

        Cancellation-heavy scenarios (context-switch preemption cancels one
        completion event per evicted wave) would otherwise grow the heap with
        entries that are only discarded when popped.  Compaction rewrites the
        heap *in place* (slice assignment) so aliases held by a running
        :meth:`run` loop stay valid.
        """
        heap = self._heap
        if self._dead_entries * 2 <= len(heap):
            return
        heap[:] = [entry for entry in heap if not entry[3].cancelled]
        heapq.heapify(heap)
        self._dead_entries = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def add_observer(self, observer) -> None:
        """Attach an observer notified of event scheduling and firing.

        Observers expose ``on_event_scheduled(event, now)`` and
        ``on_event_fired(event, previous_now)``.  They must only *observe*:
        the validation layer relies on observers never perturbing simulation
        state, so that runs are byte-identical with and without them.
        """
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Detach a previously attached observer (idempotent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _fire(self, entry) -> None:
        """Advance the clock to ``entry`` and run its callback."""
        event = entry[3]
        previous_now = self._now
        # The event left the heap: late cancels must not touch the count, and
        # ``fired`` must flip *before* the callback runs (wave joining relies
        # on a firing event no longer reading as pending).
        event.fired = True
        event.on_cancelled = None
        self._live_events -= 1
        self._now = entry[0]
        self.events_processed += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.on_event(entry[0], event.label)
        if self._observers:
            for observer in self._observers:
                observer.on_event_fired(event, previous_now)
        profiler = self.profiler
        if profiler is None:
            event.callback()
        else:
            profiler.record(event.label, event.callback)

    def step(self) -> bool:
        """Process the next pending event.

        Returns ``True`` if an event was processed, ``False`` if the event
        queue is empty (cancelled events are discarded transparently).
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[3].cancelled:
                self._dead_entries -= 1
                continue
            if entry[0] < self._now:  # pragma: no cover - defensive
                raise SimulationError("event heap yielded an event from the past")
            self._fire(entry)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains, ``until`` is reached, or stopped.

        Parameters
        ----------
        until:
            Optional absolute time bound.  Events scheduled strictly after
            ``until`` are left in the queue and the clock is advanced to
            ``until`` — on every exit path, including :meth:`stop`.  If a
            stopped run leaves events scheduled *before* ``until`` pending,
            the clock only advances to the earliest of them, so the run can
            be resumed without firing events in the past.
        max_events:
            Optional safety bound on the number of events to process; mostly
            useful in tests to catch livelocks.
        """
        self._running = True
        self._stopped = False
        processed = 0
        heap = self._heap  # stable alias: compaction rewrites in place
        heappop = heapq.heappop
        try:
            while heap and not self._stopped:
                entry = heap[0]
                if entry[3].cancelled:
                    heappop(heap)
                    self._dead_entries -= 1
                    continue
                if until is not None and entry[0] > until:
                    break
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}; possible livelock"
                    )
                heappop(heap)
                if entry[0] < self._now:  # pragma: no cover - defensive
                    raise SimulationError("event heap yielded an event from the past")
                self._fire(entry)
                processed += 1
            # One consistent clamp for every exit path (drained, reached
            # ``until``, or stopped): the clock advances to ``until``, but
            # never past a still-pending event (a stopped run may leave
            # events before ``until`` in the queue, and jumping over them
            # would break the no-events-in-the-past invariant on resume).
            if until is not None:
                bound = until
                next_time = self.peek_time()
                if next_time is not None and next_time < bound:
                    bound = next_time
                self._now = max(self._now, bound)
        finally:
            self._running = False

    def stop(self) -> None:
        """Request that :meth:`run` returns after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without popping it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._dead_entries -= 1
        return heap[0][3] if heap else None

    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return self._live_events

    @property
    def last_sequence(self) -> int:
        """Sequence number of the most recently scheduled event (-1 if none).

        Introspection form of the sequence-contiguity signal the SM's wave
        joining relies on ("nothing was scheduled since event X") — the join
        hot path itself reads ``sim._seq`` directly
        (:meth:`repro.gpu.sm.StreamingMultiprocessor._schedule_completion`),
        so keep this definition in sync with :attr:`_seq`.
        """
        return self._seq - 1

    def pending_labels(self) -> Iterable[str]:
        """Labels of pending events (debugging aid for tests)."""
        return [
            entry[3].label for entry in sorted(self._heap) if not entry[3].cancelled
        ]

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        event = self._peek()
        return event.time if event is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}us, pending={self.pending_events}, "
            f"processed={self.events_processed})"
        )
