"""Instrumentation-observer vocabulary shared by validation and telemetry.

The simulator and the hardware models (SMs, execution engine, command
dispatcher, host CPU) each expose a single optional ``observer`` attribute
that is notified at instrumentation points.  Observers must only *observe*:
both the validation layer (:mod:`repro.validation`) and the telemetry
subsystem (:mod:`repro.telemetry`) rely on a run with observers attached
being byte-identical to the same run without them.

Two helpers live here:

* :class:`BaseObserver` — the full hook vocabulary as no-ops, so an observer
  implements only the hooks it cares about and keeps working when new hooks
  are added.
* :class:`CompositeObserver` — fans every hook out to several observers, so
  the validation hub and a trace collector can be attached to the same run
  (``--validate --trace``) while the hot paths keep their cheap single
  ``observer`` attribute.
"""

from __future__ import annotations

from typing import Iterable, List


class BaseObserver:
    """No-op implementation of every instrumentation hook.

    Subclass and override the hooks you need.  ``wants_simulator_events``
    lets high-rate simulator hooks (one call per scheduled/fired event) be
    skipped entirely for observers that only consume component hooks.
    """

    #: Whether :meth:`repro.system.GPUSystem.install_observer` should also
    #: register the observer on the simulator's per-event hooks.
    wants_simulator_events: bool = True

    # -- simulator ------------------------------------------------------
    def on_event_scheduled(self, event, now) -> None:
        """An event was pushed onto the simulator heap."""

    def on_event_fired(self, event, previous_now) -> None:
        """An event is about to execute (the clock just advanced to it)."""

    # -- SMs ------------------------------------------------------------
    def on_sm_configured(self, sm) -> None:
        """An SM finished setup for a kernel."""

    def on_sm_released(self, sm) -> None:
        """An SM was released back to the idle pool."""

    def on_block_started(self, sm, block) -> None:
        """A thread block became resident on ``sm``."""

    def on_block_completed(self, sm, block) -> None:
        """A resident thread block finished execution."""

    def on_blocks_evicted(self, sm, blocks) -> None:
        """Resident blocks were evicted by the context-switch mechanism."""

    # -- execution engine -----------------------------------------------
    def on_sm_reserved(self, sm, next_ksr_index, mechanism) -> None:
        """The scheduling policy reserved ``sm`` (preemption request).

        ``mechanism`` is the preemption mechanism the engine's controller
        chose for this request (mechanisms are selected per preemption).
        """

    def on_kernel_activated(self, entry) -> None:
        """A buffered kernel command was admitted into the KSRT."""

    def on_preemption_complete(self, sm, evicted_blocks, mechanism) -> None:
        """A preemption mechanism finished freeing ``sm``."""

    def on_kernel_finished(self, launch) -> None:
        """Every thread block of an active kernel completed."""

    # -- command dispatcher ---------------------------------------------
    def on_command_enqueued(self, queue_id, command) -> None:
        """A command entered a hardware queue."""

    def on_command_issued(self, queue_id, command) -> None:
        """The dispatcher issued a command to an engine."""

    def on_command_completed(self, queue_id, command_id) -> None:
        """An in-flight command completed and re-enabled its queue."""

    # -- host CPU -------------------------------------------------------
    def on_cpu_phase_started(self, duration_us, label) -> None:
        """A CPU phase started executing on a hardware thread."""

    def on_cpu_phase_finished(self, label) -> None:
        """A CPU phase finished and freed its hardware thread."""

    # -- open-loop serving ----------------------------------------------
    def on_request_arrived(self, request, now) -> None:
        """An open-loop request arrived at the ingress queue."""

    def on_request_admitted(self, request, now) -> None:
        """A queued request was admitted and its kernel launched."""

    def on_request_completed(self, request, now) -> None:
        """An admitted request's kernel completed."""

    def on_request_dropped(self, request, now) -> None:
        """A request was dropped by the admission policy."""


class CompositeObserver(BaseObserver):
    """Forwards every hook to each of its child observers, in order."""

    def __init__(self, observers: Iterable[object]):
        self._observers: List[object] = list(observers)

    @property
    def observers(self) -> List[object]:
        """The child observers (in notification order)."""
        return list(self._observers)

    # The forwarding methods are written out (instead of a __getattr__
    # trampoline) because they sit on simulation hot paths.
    def on_sm_configured(self, sm) -> None:
        for observer in self._observers:
            observer.on_sm_configured(sm)

    def on_sm_released(self, sm) -> None:
        for observer in self._observers:
            observer.on_sm_released(sm)

    def on_block_started(self, sm, block) -> None:
        for observer in self._observers:
            observer.on_block_started(sm, block)

    def on_block_completed(self, sm, block) -> None:
        for observer in self._observers:
            observer.on_block_completed(sm, block)

    def on_blocks_evicted(self, sm, blocks) -> None:
        for observer in self._observers:
            observer.on_blocks_evicted(sm, blocks)

    def on_sm_reserved(self, sm, next_ksr_index, mechanism) -> None:
        for observer in self._observers:
            observer.on_sm_reserved(sm, next_ksr_index, mechanism)

    def on_kernel_activated(self, entry) -> None:
        for observer in self._observers:
            observer.on_kernel_activated(entry)

    def on_preemption_complete(self, sm, evicted_blocks, mechanism) -> None:
        for observer in self._observers:
            observer.on_preemption_complete(sm, evicted_blocks, mechanism)

    def on_kernel_finished(self, launch) -> None:
        for observer in self._observers:
            observer.on_kernel_finished(launch)

    def on_command_enqueued(self, queue_id, command) -> None:
        for observer in self._observers:
            observer.on_command_enqueued(queue_id, command)

    def on_command_issued(self, queue_id, command) -> None:
        for observer in self._observers:
            observer.on_command_issued(queue_id, command)

    def on_command_completed(self, queue_id, command_id) -> None:
        for observer in self._observers:
            observer.on_command_completed(queue_id, command_id)

    def on_cpu_phase_started(self, duration_us, label) -> None:
        for observer in self._observers:
            observer.on_cpu_phase_started(duration_us, label)

    def on_cpu_phase_finished(self, label) -> None:
        for observer in self._observers:
            observer.on_cpu_phase_finished(label)

    def on_request_arrived(self, request, now) -> None:
        for observer in self._observers:
            observer.on_request_arrived(request, now)

    def on_request_admitted(self, request, now) -> None:
        for observer in self._observers:
            observer.on_request_admitted(request, now)

    def on_request_completed(self, request, now) -> None:
        for observer in self._observers:
            observer.on_request_completed(request, now)

    def on_request_dropped(self, request, now) -> None:
        for observer in self._observers:
            observer.on_request_dropped(request, now)


__all__ = ["BaseObserver", "CompositeObserver"]
