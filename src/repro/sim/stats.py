"""Statistics primitives used across the simulator.

The experiment harness (``repro.experiments``) reports ratios of aggregate
measurements (turnaround times, throughput, fairness).  The models themselves
collect lower-level statistics — SM busy time, preemption counts, transfer
byte counts — with the primitives in this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional


class Counter:
    """A plain named counter with an optional unit."""

    def __init__(self, name: str, unit: str = ""):
        self.name = name
        self.unit = unit
        self.value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increment the counter by ``amount`` (default 1)."""
        self.value += amount

    def reset(self) -> None:
        """Reset the counter to zero."""
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value}{self.unit})"


class RunningStats:
    """Streaming mean/variance/min/max (Welford's algorithm)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the observations (0.0 for < 2 samples)."""
        return self._m2 / self.count if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunningStats({self.name}: n={self.count}, mean={self.mean:.3f})"


class TimeWeightedAverage:
    """Average of a piecewise-constant signal weighted by time.

    Used, e.g., to track the average number of resident thread blocks on an SM
    or the average queue depth of the execution queue.
    """

    def __init__(self, start_time: float = 0.0, initial_value: float = 0.0):
        self._last_time = start_time
        self._value = initial_value
        self._weighted_sum = 0.0
        self._total_time = 0.0

    def update(self, now: float, new_value: float) -> None:
        """Record that the signal changes to ``new_value`` at time ``now``."""
        if now < self._last_time:
            raise ValueError("time went backwards in TimeWeightedAverage.update")
        span = now - self._last_time
        self._weighted_sum += self._value * span
        self._total_time += span
        self._value = new_value
        self._last_time = now

    def finalize(self, now: float) -> None:
        """Close the last interval at ``now`` without changing the value."""
        self.update(now, self._value)

    @property
    def current(self) -> float:
        """The most recently recorded value of the signal."""
        return self._value

    @property
    def average(self) -> float:
        """Time-weighted average over all closed intervals."""
        return self._weighted_sum / self._total_time if self._total_time > 0 else 0.0


class UtilizationTracker:
    """Tracks the fraction of time a resource spends busy.

    The resource reports ``set_busy``/``set_idle`` transitions; the tracker
    accumulates busy time between them.
    """

    def __init__(self, start_time: float = 0.0):
        self._busy_since: Optional[float] = None
        self._busy_time = 0.0
        self._start_time = start_time
        self.transitions = 0

    def set_busy(self, now: float) -> None:
        """Mark the resource busy starting at ``now`` (idempotent)."""
        if self._busy_since is None:
            self._busy_since = now
            self.transitions += 1

    def set_idle(self, now: float) -> None:
        """Mark the resource idle at ``now`` (idempotent)."""
        if self._busy_since is not None:
            self._busy_time += now - self._busy_since
            self._busy_since = None
            self.transitions += 1

    def busy_time(self, now: float) -> float:
        """Total busy time observed up to ``now``."""
        extra = (now - self._busy_since) if self._busy_since is not None else 0.0
        return self._busy_time + extra

    def utilization(self, now: float) -> float:
        """Busy fraction in ``[0, 1]`` over the window ``[start_time, now]``."""
        span = now - self._start_time
        if span <= 0:
            return 0.0
        return min(1.0, self.busy_time(now) / span)


@dataclass
class StatRegistry:
    """A flat namespace of named statistics owned by one simulated component.

    Components create their counters and stats through the registry so that
    the experiment harness can dump everything with one call.
    """

    counters: Dict[str, Counter] = field(default_factory=dict)
    running: Dict[str, RunningStats] = field(default_factory=dict)

    def counter(self, name: str, unit: str = "") -> Counter:
        """Return (creating if needed) the counter called ``name``."""
        if name not in self.counters:
            self.counters[name] = Counter(name, unit)
        return self.counters[name]

    def stats(self, name: str) -> RunningStats:
        """Return (creating if needed) the running-stats entry ``name``."""
        if name not in self.running:
            self.running[name] = RunningStats(name)
        return self.running[name]

    def snapshot(self) -> Dict[str, float]:
        """Flatten all statistics into a ``{name: value}`` dictionary."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[name] = counter.value
        for name, rstats in self.running.items():
            out[f"{name}.mean"] = rstats.mean
            out[f"{name}.count"] = float(rstats.count)
            if rstats.count:
                out[f"{name}.min"] = rstats.minimum
                out[f"{name}.max"] = rstats.maximum
        return out
