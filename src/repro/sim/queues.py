"""Pluggable event queues for the discrete-event engine.

The :class:`~repro.sim.engine.Simulator` delegates event storage to an
:class:`EventQueue`.  Entries are the engine's ``(time, priority, seq, event)``
tuples — ordering is C-level tuple comparison and the unique per-simulator
``seq`` guarantees comparisons never reach the event object.  Two built-in
implementations are registered with :data:`repro.registry.EVENT_QUEUES`:

``heap``
    The classic binary heap (``heapq``) over full entry tuples.  Extracted
    unchanged from the pre-queue-layer engine; kept as the equivalence
    oracle for every other implementation.

``calendar`` (default)
    A self-resizing calendar/bucket queue over the integer nanosecond ticks
    events carry (:mod:`repro.sim.ticks`): a dict of tick → bucket plus a
    small heap of *distinct* ticks.  Wave batching makes large runs schedule
    dense same-instant bursts; the calendar queue appends those in O(1) to
    the current tick's bucket instead of paying a heap sift per event, and
    only sorts a bucket's remaining region lazily (and only when an append
    actually broke its order).  Within a bucket, ties are broken by the
    exact ``(time, priority, seq)`` tuple, and tick rounding is monotone in
    time, so the pop order is *identical* to the heap's total order — the
    queue-equivalence fuzz (``tests/sim/test_queue_equivalence.py``) proves
    this byte-for-byte on whole scenario artifacts.

Both queues reclaim cancelled ("dead") entries lazily: dead entries at the
head are discarded during pop/peek, and when dead entries outnumber live
ones (cancellation-heavy preemption scenarios) the queue compacts in place
(the ``compactions`` counter is surfaced through the engine's metrics).

Select an implementation with ``Simulator(queue="heap")``,
``ScenarioSpec(queue=...)`` or the experiment CLI's ``--queue`` flag; plug in
a custom one with :func:`repro.registry.register_event_queue`.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple, Union

from repro.registry import EVENT_QUEUES, register_event_queue
from repro.sim.events import Event

#: One queue entry: ``(time, priority, seq, event)``.
Entry = Tuple[float, int, int, Event]

#: Compact when a queue holds more than this many dead (cancelled) entries
#: *and* they outnumber the live ones.
_COMPACTION_MIN_DEAD = 64

#: Registry name of the engine's default event queue.
DEFAULT_EVENT_QUEUE = "calendar"


class EventQueue:
    """Interface between the :class:`~repro.sim.engine.Simulator` and storage.

    Implementations must yield live entries in exact ``(time, priority,
    seq)`` order and may discard cancelled entries whenever convenient; the
    engine keeps the live-event count itself and reports each cancellation
    through :meth:`note_cancelled`.
    """

    #: Registry name (shown by ``--list`` and ``Simulator.queue_name``).
    name = "abstract"

    def push(self, entry: Entry) -> None:
        """Insert a new entry (its event is pending by construction)."""
        raise NotImplementedError

    def pop(self, until: Optional[float] = None) -> Optional[Entry]:
        """Remove and return the next live entry.

        Cancelled entries reaching the head are discarded unconditionally —
        even when they lie beyond ``until``.  Returns ``None`` when the
        queue is empty or the next live entry fires after ``until``.
        """
        raise NotImplementedError

    def peek(self) -> Optional[Entry]:
        """The next live entry without removing it (prunes dead heads)."""
        raise NotImplementedError

    def note_cancelled(self) -> None:
        """Record that one queued entry was cancelled (compaction trigger)."""
        raise NotImplementedError

    def sorted_entries(self) -> List[Entry]:
        """Every live entry in fire order (introspection; not a hot path)."""
        raise NotImplementedError

    def entries(self) -> List[Entry]:
        """Snapshot of every stored entry, dead ones included (debugging)."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Number of stored entries, including dead ones awaiting reclaim."""
        raise NotImplementedError


@register_event_queue(
    "heap",
    description="binary heap over (time, priority, seq) tuples (the oracle)",
)
class HeapEventQueue(EventQueue):
    """The pre-queue-layer engine heap, extracted with unchanged semantics."""

    name = "heap"
    __slots__ = ("_heap", "_dead", "compactions")

    def __init__(self):
        self._heap: List[Entry] = []
        self._dead = 0
        #: In-place compactions performed (surfaced via engine metrics).
        self.compactions = 0

    def push(self, entry: Entry) -> None:
        heapq.heappush(self._heap, entry)

    def pop(self, until: Optional[float] = None) -> Optional[Entry]:
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heappop(heap)
                self._dead -= 1
                continue
            if until is not None and entry[0] > until:
                return None
            return heappop(heap)
        return None

    def peek(self) -> Optional[Entry]:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        return heap[0] if heap else None

    def note_cancelled(self) -> None:
        self._dead += 1
        if self._dead > _COMPACTION_MIN_DEAD:
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Drop dead heap entries once they outnumber the live ones.

        Compaction rewrites the heap *in place* (slice assignment) so
        aliases held by a running loop stay valid.
        """
        heap = self._heap
        if self._dead * 2 <= len(heap):
            return
        heap[:] = [entry for entry in heap if not entry[3].cancelled]
        heapq.heapify(heap)
        self._dead = 0
        self.compactions += 1

    def sorted_entries(self) -> List[Entry]:
        return sorted(entry for entry in self._heap if not entry[3].cancelled)

    def entries(self) -> List[Entry]:
        return list(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


class _Bucket:
    """Entries of one integer tick, consumed through a moving cursor.

    ``entries[cursor:]`` is the remaining region; it is kept in ascending
    entry order except when an out-of-order append flagged it ``dirty`` (the
    next pop/peek then sorts just that region).  Consumed entries stay in
    the list until compaction reclaims them — popping is cursor advance, not
    ``list.pop(0)``.
    """

    __slots__ = ("entries", "cursor", "dirty")

    def __init__(self):
        self.entries: List[Entry] = []
        self.cursor = 0
        self.dirty = False


@register_event_queue(
    "calendar",
    description="tick-bucketed calendar queue, O(1) same-instant bursts (default)",
)
class CalendarEventQueue(EventQueue):
    """Calendar/bucket queue keyed by integer nanosecond ticks.

    A dict maps each distinct tick to a :class:`_Bucket`; a ``heapq`` of the
    distinct ticks orders the buckets.  Invariant: the tick heap holds
    exactly the dict's keys (buckets are only removed when they reach the
    head, so no stale-tick bookkeeping is needed).  Tick rounding is
    monotone in event time and ties within a bucket fall back to the exact
    entry tuple, so pop order matches :class:`HeapEventQueue` exactly.
    """

    name = "calendar"
    __slots__ = ("_buckets", "_ticks", "_size", "_dead", "compactions")

    def __init__(self):
        self._buckets: dict = {}
        self._ticks: List[int] = []
        self._size = 0
        self._dead = 0
        #: Whole-queue dead-entry reclaims performed (see engine metrics).
        self.compactions = 0

    def push(self, entry: Entry) -> None:
        bucket = self._buckets.get(entry[3].ticks)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[entry[3].ticks] = bucket
            heapq.heappush(self._ticks, entry[3].ticks)
            bucket.entries.append(entry)
        else:
            entries = bucket.entries
            # Appends arrive in seq order, so a non-empty remaining region
            # only loses its order when priorities (or sub-tick float times)
            # interleave — flag it and sort lazily at pop time.
            if len(entries) > bucket.cursor and entry < entries[-1]:
                bucket.dirty = True
            entries.append(entry)
        self._size += 1

    def _head_bucket(self) -> Optional[_Bucket]:
        """The bucket holding the next live entry, cursor parked on it.

        Discards exhausted buckets and dead head entries along the way;
        returns ``None`` when the queue is empty.
        """
        ticks = self._ticks
        buckets = self._buckets
        while ticks:
            bucket = buckets[ticks[0]]
            entries = bucket.entries
            cursor = bucket.cursor
            if bucket.dirty:
                entries[cursor:] = sorted(entries[cursor:])
                bucket.dirty = False
            n = len(entries)
            while cursor < n and entries[cursor][3].cancelled:
                cursor += 1
                self._dead -= 1
                self._size -= 1
            if cursor >= n:
                del buckets[ticks[0]]
                heapq.heappop(ticks)
                continue
            bucket.cursor = cursor
            return bucket
        return None

    def pop(self, until: Optional[float] = None) -> Optional[Entry]:
        bucket = self._head_bucket()
        if bucket is None:
            return None
        entry = bucket.entries[bucket.cursor]
        if until is not None and entry[0] > until:
            return None
        bucket.cursor += 1
        self._size -= 1
        return entry

    def peek(self) -> Optional[Entry]:
        bucket = self._head_bucket()
        return bucket.entries[bucket.cursor] if bucket is not None else None

    def note_cancelled(self) -> None:
        self._dead += 1
        if self._dead > _COMPACTION_MIN_DEAD and self._dead * 2 > self._size:
            self._compact()

    def _compact(self) -> None:
        """Reclaim every dead entry (and consumed prefixes) in one pass.

        Emptied buckets stay in the dict — the tick-heap invariant only
        allows removing a bucket at the head, and :meth:`_head_bucket`
        discards them there.
        """
        for bucket in self._buckets.values():
            bucket.entries = [
                entry
                for entry in bucket.entries[bucket.cursor :]
                if not entry[3].cancelled
            ]
            bucket.cursor = 0
        self._size -= self._dead
        self._dead = 0
        self.compactions += 1

    def sorted_entries(self) -> List[Entry]:
        live: List[Entry] = []
        for bucket in self._buckets.values():
            live.extend(
                entry
                for entry in bucket.entries[bucket.cursor :]
                if not entry[3].cancelled
            )
        live.sort()
        return live

    def entries(self) -> List[Entry]:
        out: List[Entry] = []
        for bucket in self._buckets.values():
            out.extend(bucket.entries[bucket.cursor :])
        return out

    def __len__(self) -> int:
        return self._size


def resolve_queue(queue: Union[str, EventQueue, None]) -> EventQueue:
    """Turn a queue name / instance / ``None`` into an :class:`EventQueue`.

    ``None`` selects :data:`DEFAULT_EVENT_QUEUE`; strings resolve through
    :data:`repro.registry.EVENT_QUEUES` (aliases accepted); instances pass
    through unchanged (they must be empty and unshared).
    """
    if queue is None:
        queue = DEFAULT_EVENT_QUEUE
    if isinstance(queue, str):
        return EVENT_QUEUES.create(queue)
    return queue


__all__ = [
    "EventQueue",
    "HeapEventQueue",
    "CalendarEventQueue",
    "resolve_queue",
    "DEFAULT_EVENT_QUEUE",
    "Entry",
]
