"""Discrete-event simulation kernel used by every substrate in :mod:`repro`.

The paper evaluates its proposals with an in-house *trace-driven* simulator.
This package provides the equivalent foundation: a deterministic
discrete-event engine (:class:`~repro.sim.engine.Simulator`), event and
process helpers (:mod:`repro.sim.events`), and statistics collection
primitives (:mod:`repro.sim.stats`).

All timestamps in the simulator are expressed in **microseconds** as floats,
matching the units the paper reports kernel and preemption latencies in.
Internally every event also carries an integer nanosecond tick
(:mod:`repro.sim.ticks`) exploited by the bucketing event queues
(:mod:`repro.sim.queues`); floats stay authoritative at every API boundary.
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.events import Event, EventHandle
from repro.sim.queues import CalendarEventQueue, EventQueue, HeapEventQueue
from repro.sim.ticks import TICKS_PER_US
from repro.sim.stats import (
    Counter,
    RunningStats,
    StatRegistry,
    TimeWeightedAverage,
    UtilizationTracker,
)

__all__ = [
    "Simulator",
    "SimulationError",
    "Event",
    "EventHandle",
    "EventQueue",
    "HeapEventQueue",
    "CalendarEventQueue",
    "TICKS_PER_US",
    "Counter",
    "RunningStats",
    "StatRegistry",
    "TimeWeightedAverage",
    "UtilizationTracker",
]
