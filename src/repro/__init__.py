"""repro — a reproduction of "Enabling Preemptive Multiprogramming on GPUs"
(Tanasic et al., ISCA 2014).

The package provides a trace-driven simulator of a GK110-class GPU system
extended with the paper's multiprogramming support: two preemption mechanisms
(context switch and SM draining), a hardware scheduling framework, and
scheduling policies including the Dynamic Spatial Sharing (DSS) policy.

Typical entry points:

* :class:`repro.GPUSystem` — build and run a simulated system with a chosen
  scheduling policy and preemption mechanism.
* :mod:`repro.workloads` — the Parboil benchmark models of the paper's
  Table 1 and the multiprogrammed-workload generator.
* :mod:`repro.metrics` — the multiprogram metrics (NTT, ANTT, STP, fairness).
* :mod:`repro.experiments` — runners that regenerate every table and figure
  of the paper's evaluation.
"""

from repro.gpu.config import GPUConfig, PCIeConfig, SchedulerConfig, SystemConfig
from repro.system import GPUSystem, run_isolated

__version__ = "1.0.0"

__all__ = [
    "GPUSystem",
    "run_isolated",
    "SystemConfig",
    "GPUConfig",
    "PCIeConfig",
    "SchedulerConfig",
    "__version__",
]
