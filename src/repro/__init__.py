"""repro — a reproduction of "Enabling Preemptive Multiprogramming on GPUs"
(Tanasic et al., ISCA 2014).

The package provides a trace-driven simulator of a GK110-class GPU system
extended with the paper's multiprogramming support: two preemption mechanisms
(context switch and SM draining), a hardware scheduling framework, and
scheduling policies including the Dynamic Spatial Sharing (DSS) policy.

Typical entry points:

* :class:`repro.GPUSystem` — build and run a simulated system with a chosen
  scheduling policy and preemption mechanism.
* :class:`repro.ScenarioSpec` / :class:`repro.SchemeSpec` — declarative,
  JSON-round-trippable simulation specifications;
  ``GPUSystem.from_scenario`` is the canonical constructor.
* :class:`repro.BatchRunner` — run lists of scenarios serially or across a
  process pool, returning structured :class:`repro.RunRecord` values.
* :mod:`repro.registry` — pluggable component registries; register new
  policies/mechanisms with :func:`repro.register_policy` /
  :func:`repro.register_mechanism` without touching the core.
* :mod:`repro.workloads` — the Parboil benchmark models of the paper's
  Table 1 and the multiprogrammed-workload generator.
* :mod:`repro.metrics` — the multiprogram metrics (NTT, ANTT, STP, fairness).
* :mod:`repro.telemetry` — structured simulation tracing
  (``GPUSystem(trace=True)``), preemption-latency analytics, and timeline
  exports (Perfetto/Chrome trace JSON, JSONL, ASCII Gantt).
* :mod:`repro.experiments` — runners that regenerate every table and figure
  of the paper's evaluation (CLI: ``repro-experiments``).
"""

from repro.gpu.config import GPUConfig, PCIeConfig, SchedulerConfig, SystemConfig
from repro.registry import (
    CONTROLLERS,
    MECHANISMS,
    POLICIES,
    TRANSFER_POLICIES,
    register_controller,
    register_mechanism,
    register_policy,
    register_transfer_policy,
)
from repro.scenario import ScenarioSpec, SchemeSpec
from repro.system import GPUSystem, run_isolated
from repro.runner import BatchRunner, RunRecord
from repro.telemetry import TraceCollector

__version__ = "1.1.0"

__all__ = [
    "GPUSystem",
    "run_isolated",
    "SystemConfig",
    "GPUConfig",
    "PCIeConfig",
    "SchedulerConfig",
    "ScenarioSpec",
    "SchemeSpec",
    "BatchRunner",
    "RunRecord",
    "TraceCollector",
    "POLICIES",
    "MECHANISMS",
    "CONTROLLERS",
    "TRANSFER_POLICIES",
    "register_policy",
    "register_mechanism",
    "register_controller",
    "register_transfer_policy",
    "__version__",
]
