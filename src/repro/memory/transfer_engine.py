"""The data-transfer (DMA) engine (paper Fig. 1, block 5).

The transfer engine receives transfer commands from the command dispatcher
and executes them, one at a time per direction, over the PCIe bus.  Like the
execution engine, it is scheduled by a policy; the paper uses non-preemptive
priority queues (NPQ) for the priority experiments and FCFS for the DSS
experiments.  Transfers are never preempted.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

from repro.gpu.command_queue import Command, TransferCommand, TransferDirection
from repro.memory.pcie import PCIeBus
from repro.registry import register_transfer_policy
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry


class TransferSchedulingPolicy(enum.Enum):
    """Scheduling policy of the data-transfer engine."""

    FCFS = "fcfs"
    #: Non-preemptive priority: the highest-priority waiting transfer goes next.
    PRIORITY = "npq"


# Register the enum members so scheme specs and the CLI resolve transfer
# policies through the same registry as policies/mechanisms.
register_transfer_policy(
    "fcfs", description="Transfers serviced strictly in arrival order"
)(lambda: TransferSchedulingPolicy.FCFS)
register_transfer_policy(
    "npq",
    "priority",
    description="Highest-priority waiting transfer goes next (non-preemptive)",
)(lambda: TransferSchedulingPolicy.PRIORITY)


class DataTransferEngine:
    """Executes DMA transfer commands over the PCIe bus."""

    def __init__(
        self,
        simulator: Simulator,
        pcie: PCIeBus,
        *,
        policy: TransferSchedulingPolicy = TransferSchedulingPolicy.FCFS,
        overlap_directions: bool = True,
    ):
        """Create the engine.

        Parameters
        ----------
        policy:
            How waiting transfers are ordered.
        overlap_directions:
            Whether an H2D and a D2H transfer may be in flight at the same
            time (full-duplex PCIe with two DMA engines).  The paper's K20c
            has two copy engines; disabling this models a single engine.
        """
        self._sim = simulator
        self._pcie = pcie
        self.policy = policy
        self._overlap = overlap_directions
        self._waiting: List[TransferCommand] = []
        self._in_flight: Dict[TransferDirection, Optional[TransferCommand]] = {
            TransferDirection.HOST_TO_DEVICE: None,
            TransferDirection.DEVICE_TO_HOST: None,
        }
        self._backpressure_callbacks: List[Callable[[], None]] = []
        self.stats = StatRegistry()
        self.completed_transfers: List[TransferCommand] = []

    # ------------------------------------------------------------------
    # CommandSink interface
    # ------------------------------------------------------------------
    def submit(self, command: Command) -> bool:
        """Accept a transfer command (the engine's queue is unbounded)."""
        if not isinstance(command, TransferCommand):
            raise TypeError("the data-transfer engine only accepts transfer commands")
        self._waiting.append(command)
        self.stats.counter("transfers_accepted").add()
        self._dispatch()
        return True

    def register_backpressure_callback(self, callback: Callable[[], None]) -> None:
        """Part of the CommandSink protocol; the engine never back-pressures."""
        self._backpressure_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _select_next(self) -> Optional[TransferCommand]:
        """Pick the next waiting transfer according to the engine policy."""
        candidates = self._waiting
        if not candidates:
            return None
        if not self._overlap:
            # Single engine: any in-flight transfer blocks all others.
            if any(cmd is not None for cmd in self._in_flight.values()):
                return None
        available = [
            cmd for cmd in candidates if self._in_flight[cmd.direction] is None
        ]
        if not available:
            return None
        if self.policy is TransferSchedulingPolicy.PRIORITY:
            available.sort(
                key=lambda c: (
                    -c.priority,
                    c.enqueue_time_us if c.enqueue_time_us is not None else 0.0,
                    c.command_id,
                )
            )
        else:
            available.sort(
                key=lambda c: (
                    c.enqueue_time_us if c.enqueue_time_us is not None else 0.0,
                    c.command_id,
                )
            )
        return available[0]

    def _dispatch(self) -> None:
        """Start as many waiting transfers as the bus allows."""
        while True:
            command = self._select_next()
            if command is None:
                return
            self._waiting.remove(command)
            self._in_flight[command.direction] = command
            self.stats.counter("transfers_started").add()
            self._pcie.start_transfer(
                command.size_bytes,
                command.direction,
                lambda cmd=command: self._finish(cmd),
                label=f"dma.{command.direction.value}.cmd{command.command_id}",
            )

    def _finish(self, command: TransferCommand) -> None:
        """A transfer finished on the bus: notify listeners and dispatch."""
        self._in_flight[command.direction] = None
        self.completed_transfers.append(command)
        self.stats.counter("transfers_completed").add()
        self.stats.counter("bytes_transferred", unit="B").add(command.size_bytes)
        command.complete(self._sim.now)
        self._dispatch()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def pending_transfers(self) -> int:
        """Number of transfers waiting to start."""
        return len(self._waiting)

    @property
    def busy(self) -> bool:
        """Whether any transfer is currently in flight."""
        return any(cmd is not None for cmd in self._in_flight.values())
