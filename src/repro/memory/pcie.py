"""The PCI Express interconnect model (paper Table 2).

The bus is modelled as a shared, full-duplex channel: at most one DMA
transfer per direction occupies the bus at a time (the data-transfer engine
serialises transfers anyway), each transfer pays a fixed setup latency and a
burst-granular wire time at the configured bandwidth.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.gpu.command_queue import TransferDirection
from repro.gpu.config import PCIeConfig
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry, UtilizationTracker


class PCIeBus:
    """Shared PCIe link between host memory and GPU memory."""

    def __init__(self, config: PCIeConfig, simulator: Simulator):
        self._config = config
        self._sim = simulator
        self.stats = StatRegistry()
        self._busy: dict[TransferDirection, bool] = {
            TransferDirection.HOST_TO_DEVICE: False,
            TransferDirection.DEVICE_TO_HOST: False,
        }
        self.utilization = {
            TransferDirection.HOST_TO_DEVICE: UtilizationTracker(simulator.now),
            TransferDirection.DEVICE_TO_HOST: UtilizationTracker(simulator.now),
        }

    @property
    def config(self) -> PCIeConfig:
        """The PCIe configuration."""
        return self._config

    def transfer_latency_us(self, size_bytes: int) -> float:
        """End-to-end latency of one transfer (setup + wire time)."""
        return self._config.transfer_setup_latency_us + self._config.transfer_time_us(size_bytes)

    def is_busy(self, direction: TransferDirection) -> bool:
        """Whether a transfer currently occupies the given direction."""
        return self._busy[direction]

    def start_transfer(
        self,
        size_bytes: int,
        direction: TransferDirection,
        on_complete: Callable[[], None],
        *,
        label: str = "",
    ) -> float:
        """Occupy the bus for one transfer and schedule its completion.

        Returns the transfer latency.  The caller (the data-transfer engine)
        is responsible for not starting two transfers in the same direction
        at once; doing so raises ``RuntimeError``.
        """
        if self._busy[direction]:
            raise RuntimeError(f"PCIe bus is already busy in direction {direction.value}")
        latency = self.transfer_latency_us(size_bytes)
        self._busy[direction] = True
        self.utilization[direction].set_busy(self._sim.now)
        self.stats.counter("transfers").add()
        self.stats.counter("bytes_transferred", unit="B").add(size_bytes)

        def _finish() -> None:
            self._busy[direction] = False
            self.utilization[direction].set_idle(self._sim.now)
            on_complete()

        self._sim.schedule(latency, _finish, label=label or f"pcie.{direction.value}")
        return latency

    def utilization_fraction(self, direction: TransferDirection, now: Optional[float] = None) -> float:
        """Busy fraction of one direction of the link."""
        return self.utilization[direction].utilization(now if now is not None else self._sim.now)
