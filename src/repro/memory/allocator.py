"""The GPU physical-memory allocator.

Current-generation GPUs (including the paper's baseline) do not support
demand paging, so every allocation from every context must fit in device
memory at the same time (paper Sec. 2.2).  The allocator hands out physical
frames to per-context address spaces and enforces both capacity and
isolation: a frame belongs to exactly one context until freed.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.memory.address_space import PAGE_SIZE, AddressSpace, Allocation
from repro.memory.dram import DRAMModel


class AllocationError(MemoryError):
    """Raised when device memory cannot satisfy an allocation."""


class GPUMemoryAllocator:
    """Frame-granular allocator over the GPU DRAM."""

    def __init__(self, dram: DRAMModel):
        self._dram = dram
        self._next_frame = 0
        #: frame -> owning context id, for isolation checking.
        self._frame_owner: Dict[int, int] = {}
        self._spaces: Dict[int, AddressSpace] = {}

    # ------------------------------------------------------------------
    # Address spaces
    # ------------------------------------------------------------------
    def address_space(self, context_id: int) -> AddressSpace:
        """The (lazily created) address space of ``context_id``."""
        if context_id not in self._spaces:
            self._spaces[context_id] = AddressSpace(context_id)
        return self._spaces[context_id]

    def destroy_address_space(self, context_id: int) -> None:
        """Free every allocation of a context (process teardown)."""
        space = self._spaces.pop(context_id, None)
        if space is None:
            return
        for allocation in space.allocations():
            self._release_frames(allocation)
            space.remove_allocation(allocation.virtual_address)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def malloc(self, context_id: int, size_bytes: int) -> Allocation:
        """Allocate ``size_bytes`` of device memory for ``context_id``."""
        if size_bytes <= 0:
            raise ValueError("allocation size must be positive")
        num_pages = -(-size_bytes // PAGE_SIZE)
        reserve_bytes = num_pages * PAGE_SIZE
        try:
            self._dram.reserve(reserve_bytes)
        except MemoryError as exc:
            raise AllocationError(str(exc)) from exc
        first_frame = self._next_frame
        self._next_frame += num_pages
        for frame in range(first_frame, first_frame + num_pages):
            self._frame_owner[frame] = context_id
        space = self.address_space(context_id)
        return space.record_allocation(size_bytes, first_frame)

    def free(self, context_id: int, virtual_address: int) -> None:
        """Free an allocation owned by ``context_id``."""
        space = self.address_space(context_id)
        allocation = space.remove_allocation(virtual_address)
        self._release_frames(allocation)

    def _release_frames(self, allocation: Allocation) -> None:
        for frame in range(allocation.first_frame, allocation.first_frame + allocation.num_pages):
            self._frame_owner.pop(frame, None)
        self._dram.release(allocation.num_pages * PAGE_SIZE)

    # ------------------------------------------------------------------
    # Isolation queries
    # ------------------------------------------------------------------
    def frame_owner(self, frame: int) -> Optional[int]:
        """The context owning a physical frame (``None`` if free)."""
        return self._frame_owner.get(frame)

    def owns(self, context_id: int, virtual_address: int) -> bool:
        """Whether ``context_id`` has a live mapping covering the address."""
        space = self._spaces.get(context_id)
        if space is None:
            return False
        return space.page_table.is_mapped(virtual_address)

    @property
    def total_allocated_bytes(self) -> int:
        """Bytes reserved in DRAM across all contexts (page granular)."""
        return self._dram.allocated_bytes
