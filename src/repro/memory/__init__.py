"""Memory-system substrate: GPU DRAM, PCIe interconnect, the data-transfer
(DMA) engine and per-context address spaces.

The paper's data-transfer engine (Fig. 1, block 5) moves data between CPU and
GPU memory over the PCIe bus; it is scheduled independently of the execution
engine (FCFS or non-preemptive priority, depending on the experiment).  The
memory hierarchy itself needs only minimal awareness of multiprogramming —
per-context page tables (address spaces) — because address translation
happens at the private levels of the hierarchy (paper Sec. 3.1).
"""

from repro.memory.address_space import AddressSpace, PageTable
from repro.memory.allocator import AllocationError, GPUMemoryAllocator
from repro.memory.dram import DRAMModel
from repro.memory.pcie import PCIeBus
from repro.memory.transfer_engine import DataTransferEngine, TransferSchedulingPolicy

__all__ = [
    "AddressSpace",
    "PageTable",
    "GPUMemoryAllocator",
    "AllocationError",
    "DRAMModel",
    "PCIeBus",
    "DataTransferEngine",
    "TransferSchedulingPolicy",
]
