"""Per-context GPU virtual address spaces and page tables (paper Sec. 3.1).

Concurrent execution of kernels from different processes requires the memory
hierarchy to keep accesses from different address spaces apart.  The paper
assumes address translation at the private levels of the hierarchy, so the
only multiprogramming-visible structures are the per-process page tables
walked on TLB misses (via the per-SM base page-table register) — which is
what this module models: a simple page-granular virtual address space with a
page table that maps virtual pages to device-physical frames.

Kernel execution times are traced, so page walks do not add latency in the
simulator; the model exists to enforce isolation invariants (no two contexts
may map the same physical frame unless explicitly shared) and to give the
allocator and transfer engine real addresses to work with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

PAGE_SIZE = 4096


@dataclass(frozen=True)
class PageTableEntry:
    """One virtual-to-physical mapping."""

    virtual_page: int
    physical_frame: int
    writable: bool = True


class PageTable:
    """A flat page table for one GPU context."""

    def __init__(self, context_id: int):
        self.context_id = context_id
        self._entries: Dict[int, PageTableEntry] = {}

    def map(self, virtual_page: int, physical_frame: int, *, writable: bool = True) -> None:
        """Install a mapping; remapping an existing page is an error."""
        if virtual_page in self._entries:
            raise ValueError(f"virtual page {virtual_page:#x} is already mapped")
        self._entries[virtual_page] = PageTableEntry(virtual_page, physical_frame, writable)

    def unmap(self, virtual_page: int) -> None:
        """Remove a mapping; unmapping an absent page is an error."""
        if virtual_page not in self._entries:
            raise KeyError(f"virtual page {virtual_page:#x} is not mapped")
        del self._entries[virtual_page]

    def translate(self, virtual_address: int) -> int:
        """Translate a virtual address to a physical address."""
        page, offset = divmod(virtual_address, PAGE_SIZE)
        entry = self._entries.get(page)
        if entry is None:
            raise KeyError(f"page fault: virtual address {virtual_address:#x} is not mapped")
        return entry.physical_frame * PAGE_SIZE + offset

    def is_mapped(self, virtual_address: int) -> bool:
        """Whether the virtual address is currently mapped."""
        return (virtual_address // PAGE_SIZE) in self._entries

    def mapped_pages(self) -> Iterator[int]:
        """Iterate the mapped virtual page numbers."""
        return iter(self._entries.keys())

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class Allocation:
    """One GPU memory allocation owned by a context."""

    virtual_address: int
    size_bytes: int
    first_frame: int
    num_pages: int


class AddressSpace:
    """The GPU virtual address space of one context."""

    #: Virtual allocations start at this address (arbitrary, non-zero so that
    #: address 0 stays an obvious "null pointer").
    BASE_VIRTUAL_ADDRESS = 0x1_0000_0000

    def __init__(self, context_id: int):
        self.context_id = context_id
        self.page_table = PageTable(context_id)
        self._allocations: Dict[int, Allocation] = {}
        self._next_virtual = self.BASE_VIRTUAL_ADDRESS

    def record_allocation(self, size_bytes: int, first_frame: int) -> Allocation:
        """Create an allocation of ``size_bytes`` backed by frames starting
        at ``first_frame`` and map its pages."""
        if size_bytes <= 0:
            raise ValueError("allocation size must be positive")
        num_pages = -(-size_bytes // PAGE_SIZE)
        virtual_address = self._next_virtual
        self._next_virtual += num_pages * PAGE_SIZE
        for page_index in range(num_pages):
            self.page_table.map(
                virtual_address // PAGE_SIZE + page_index, first_frame + page_index
            )
        allocation = Allocation(virtual_address, size_bytes, first_frame, num_pages)
        self._allocations[virtual_address] = allocation
        return allocation

    def remove_allocation(self, virtual_address: int) -> Allocation:
        """Unmap and forget the allocation at ``virtual_address``."""
        allocation = self._allocations.pop(virtual_address, None)
        if allocation is None:
            raise KeyError(f"no allocation at {virtual_address:#x}")
        for page_index in range(allocation.num_pages):
            self.page_table.unmap(virtual_address // PAGE_SIZE + page_index)
        return allocation

    def allocation_at(self, virtual_address: int) -> Optional[Allocation]:
        """The allocation starting exactly at ``virtual_address`` (if any)."""
        return self._allocations.get(virtual_address)

    @property
    def allocated_bytes(self) -> int:
        """Total bytes currently allocated in this address space."""
        return sum(a.size_bytes for a in self._allocations.values())

    def allocations(self) -> Iterator[Allocation]:
        """Iterate over the live allocations."""
        return iter(list(self._allocations.values()))
