"""A bandwidth-oriented model of the GPU's off-chip DRAM.

The simulator does not model individual memory accesses of kernels (their
effect is already folded into the traced thread-block execution times).  The
DRAM model exists for the two consumers that the paper reasons about
explicitly:

* context save/restore traffic of the context-switch preemption mechanism,
  which is charged at the SM's *share* of the aggregate bandwidth, and
* DMA transfers landing in (or read from) device memory.

It also tracks capacity so that the allocator can refuse over-subscription
("allocations from all contexts reside in the GPU physical memory",
paper Sec. 2.2).
"""

from __future__ import annotations

from repro.gpu.config import GPUConfig
from repro.sim.stats import StatRegistry


class DRAMModel:
    """GPU DRAM: capacity accounting plus simple bandwidth arithmetic."""

    def __init__(self, config: GPUConfig):
        self._config = config
        self._allocated_bytes = 0
        self.stats = StatRegistry()

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Total device-memory capacity."""
        return self._config.dram_capacity_bytes

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently reserved by allocations."""
        return self._allocated_bytes

    @property
    def free_bytes(self) -> int:
        """Bytes still available for allocation."""
        return self.capacity_bytes - self._allocated_bytes

    def reserve(self, size_bytes: int) -> None:
        """Account for an allocation of ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        if size_bytes > self.free_bytes:
            raise MemoryError(
                f"GPU DRAM exhausted: requested {size_bytes} B, free {self.free_bytes} B"
            )
        self._allocated_bytes += size_bytes
        self.stats.counter("bytes_reserved", unit="B").add(size_bytes)

    def release(self, size_bytes: int) -> None:
        """Account for freeing an allocation of ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        self._allocated_bytes = max(0, self._allocated_bytes - size_bytes)
        self.stats.counter("bytes_released", unit="B").add(size_bytes)

    # ------------------------------------------------------------------
    # Bandwidth arithmetic
    # ------------------------------------------------------------------
    @property
    def bandwidth_bytes_per_us(self) -> float:
        """Aggregate DRAM bandwidth in bytes per microsecond."""
        return self._config.memory_bandwidth_bytes_per_us

    def transfer_time_us(self, size_bytes: int, *, bandwidth_share: float = 1.0) -> float:
        """Time to move ``size_bytes`` at a fraction of the peak bandwidth."""
        if not 0.0 < bandwidth_share <= 1.0:
            raise ValueError("bandwidth_share must be in (0, 1]")
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        if size_bytes == 0:
            return 0.0
        return size_bytes / (self.bandwidth_bytes_per_us * bandwidth_share)

    def per_sm_transfer_time_us(self, size_bytes: int) -> float:
        """Time to move ``size_bytes`` at one SM's bandwidth share.

        This is the quantity the paper uses for projected context-save times.
        """
        return self.transfer_time_us(size_bytes, bandwidth_share=1.0 / self._config.num_sms)
