"""Synthetic trace generation.

The Parboil application models in :mod:`repro.workloads.parboil` build their
traces from the published Table 1 statistics.  This module provides the
generic building blocks they use, plus fully synthetic traces (uniform
kernels, persistent kernels) for unit tests, examples and ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.gpu.command_queue import TransferDirection
from repro.gpu.kernel import KernelSpec
from repro.gpu.resources import ResourceUsage
from repro.trace.schema import (
    ApplicationTrace,
    CpuPhaseOp,
    DeviceSyncOp,
    KernelLaunchOp,
    MallocOp,
    MemcpyOp,
    TraceOp,
)

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class KernelPhase:
    """One compute phase of a generated application.

    ``launches`` consecutive launches of ``kernel``, each preceded by
    ``cpu_time_us`` of host work, optionally synchronising after every
    launch.
    """

    kernel: KernelSpec
    launches: int = 1
    cpu_time_us: float = 0.0
    sync_every_launch: bool = True
    stream: int = 0

    def __post_init__(self) -> None:
        if self.launches < 1:
            raise ValueError("a kernel phase needs at least one launch")
        if self.cpu_time_us < 0:
            raise ValueError("cpu_time_us must be non-negative")


class TraceGenerator:
    """Builds :class:`~repro.trace.schema.ApplicationTrace` objects."""

    def build(
        self,
        name: str,
        *,
        phases: Sequence[KernelPhase],
        input_bytes: int = 4 * MIB,
        output_bytes: int = 4 * MIB,
        setup_cpu_time_us: float = 100.0,
        teardown_cpu_time_us: float = 100.0,
        kernel_class: Optional[str] = None,
        application_class: Optional[str] = None,
    ) -> ApplicationTrace:
        """Assemble an application trace from compute phases.

        The generated structure follows the typical GPU application the paper
        describes (Sec. 2.1): host-side setup, input transfers to the device,
        repeated bursts of CPU work and kernel launches, output transfers
        back to the host.
        """
        kernels = {}
        for phase in phases:
            existing = kernels.get(phase.kernel.name)
            if existing is not None and existing is not phase.kernel:
                raise ValueError(f"two different kernel specs share the name {phase.kernel.name!r}")
            kernels[phase.kernel.name] = phase.kernel

        operations: List[TraceOp] = []
        operations.append(CpuPhaseOp(setup_cpu_time_us))
        operations.append(MallocOp(max(1, input_bytes), label="input"))
        operations.append(MallocOp(max(1, output_bytes), label="output"))
        if input_bytes > 0:
            operations.append(
                MemcpyOp(input_bytes, TransferDirection.HOST_TO_DEVICE, synchronous=True)
            )
        for phase in phases:
            for _ in range(phase.launches):
                if phase.cpu_time_us > 0:
                    operations.append(CpuPhaseOp(phase.cpu_time_us))
                operations.append(KernelLaunchOp(phase.kernel.name, stream=phase.stream))
                if phase.sync_every_launch:
                    operations.append(DeviceSyncOp())
        if not any(isinstance(op, DeviceSyncOp) for op in operations[-2:]):
            operations.append(DeviceSyncOp())
        if output_bytes > 0:
            operations.append(
                MemcpyOp(output_bytes, TransferDirection.DEVICE_TO_HOST, synchronous=True)
            )
        operations.append(CpuPhaseOp(teardown_cpu_time_us))

        streams = sorted({0, *(phase.stream for phase in phases)})
        return ApplicationTrace(
            name=name,
            kernels=kernels,
            operations=operations,
            streams=tuple(streams),
            kernel_class=kernel_class,
            application_class=application_class,
        )

    # ------------------------------------------------------------------
    # Convenience synthetic applications
    # ------------------------------------------------------------------
    def uniform_kernel(
        self,
        name: str,
        *,
        num_blocks: int = 128,
        tb_time_us: float = 10.0,
        registers_per_block: int = 8192,
        shared_memory_per_block: int = 0,
        launches: int = 1,
        cpu_time_us: float = 10.0,
        blocks_per_sm: Optional[int] = None,
    ) -> ApplicationTrace:
        """A single-kernel application with uniform thread blocks."""
        spec = KernelSpec(
            name=f"{name}_kernel",
            benchmark=name,
            num_thread_blocks=num_blocks,
            avg_tb_time_us=tb_time_us,
            usage=ResourceUsage(
                registers_per_block=registers_per_block,
                shared_memory_per_block=shared_memory_per_block,
            ),
            max_blocks_per_sm=blocks_per_sm,
            launches_per_run=launches,
        )
        phase = KernelPhase(kernel=spec, launches=launches, cpu_time_us=cpu_time_us)
        return self.build(name, phases=[phase])

    def persistent_kernel(
        self,
        name: str = "persistent",
        *,
        block_time_us: float = 1_000_000.0,
        num_blocks: int = 13,
    ) -> ApplicationTrace:
        """A persistent-threads style application.

        Its thread blocks effectively never finish on the time scales of the
        other applications, which is the case where the draining mechanism
        cannot preempt (paper Sec. 3.2); used by tests and the starvation
        example.
        """
        return self.uniform_kernel(
            name,
            num_blocks=num_blocks,
            tb_time_us=block_time_us,
            registers_per_block=16384,
            cpu_time_us=1.0,
        )
