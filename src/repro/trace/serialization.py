"""JSON-friendly (de)serialisation of application traces.

Traces are plain data, so they can be stored alongside experiment results
for inspection or replayed later without re-running the generator.  The
format is a nested dictionary of built-in types (suitable for ``json.dump``).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.gpu.command_queue import TransferDirection
from repro.gpu.kernel import KernelSpec
from repro.gpu.resources import ResourceUsage
from repro.trace.schema import (
    ApplicationTrace,
    CpuPhaseOp,
    DeviceSyncOp,
    FreeOp,
    KernelLaunchOp,
    MallocOp,
    MemcpyOp,
    StreamSyncOp,
    TraceOp,
)


def _kernel_to_dict(spec: KernelSpec) -> Dict[str, Any]:
    return {
        "name": spec.name,
        "benchmark": spec.benchmark,
        "num_thread_blocks": spec.num_thread_blocks,
        "avg_tb_time_us": spec.avg_tb_time_us,
        "registers_per_block": spec.usage.registers_per_block,
        "shared_memory_per_block": spec.usage.shared_memory_per_block,
        "threads_per_block": spec.usage.threads_per_block,
        "max_blocks_per_sm": spec.max_blocks_per_sm,
        "measured_kernel_time_us": spec.measured_kernel_time_us,
        "launches_per_run": spec.launches_per_run,
    }


def _kernel_from_dict(data: Dict[str, Any]) -> KernelSpec:
    return KernelSpec(
        name=data["name"],
        benchmark=data["benchmark"],
        num_thread_blocks=int(data["num_thread_blocks"]),
        avg_tb_time_us=float(data["avg_tb_time_us"]),
        usage=ResourceUsage(
            registers_per_block=int(data["registers_per_block"]),
            shared_memory_per_block=int(data["shared_memory_per_block"]),
            threads_per_block=int(data.get("threads_per_block", 256)),
        ),
        max_blocks_per_sm=data.get("max_blocks_per_sm"),
        measured_kernel_time_us=data.get("measured_kernel_time_us"),
        launches_per_run=int(data.get("launches_per_run", 1)),
    )


def _op_to_dict(op: TraceOp) -> Dict[str, Any]:
    if isinstance(op, CpuPhaseOp):
        return {"op": "cpu", "duration_us": op.duration_us}
    if isinstance(op, MallocOp):
        return {"op": "malloc", "size_bytes": op.size_bytes, "label": op.label}
    if isinstance(op, FreeOp):
        return {"op": "free", "label": op.label}
    if isinstance(op, MemcpyOp):
        return {
            "op": "memcpy",
            "size_bytes": op.size_bytes,
            "direction": op.direction.value,
            "stream": op.stream,
            "synchronous": op.synchronous,
        }
    if isinstance(op, KernelLaunchOp):
        return {"op": "launch", "kernel": op.kernel_name, "stream": op.stream}
    if isinstance(op, StreamSyncOp):
        return {"op": "stream_sync", "stream": op.stream}
    if isinstance(op, DeviceSyncOp):
        return {"op": "device_sync"}
    raise TypeError(f"unknown trace operation: {op!r}")


def _op_from_dict(data: Dict[str, Any]) -> TraceOp:
    kind = data["op"]
    if kind == "cpu":
        return CpuPhaseOp(float(data["duration_us"]))
    if kind == "malloc":
        return MallocOp(int(data["size_bytes"]), label=data.get("label", ""))
    if kind == "free":
        return FreeOp(label=data["label"])
    if kind == "memcpy":
        return MemcpyOp(
            int(data["size_bytes"]),
            TransferDirection(data["direction"]),
            stream=int(data.get("stream", 0)),
            synchronous=bool(data.get("synchronous", True)),
        )
    if kind == "launch":
        return KernelLaunchOp(data["kernel"], stream=int(data.get("stream", 0)))
    if kind == "stream_sync":
        return StreamSyncOp(stream=int(data.get("stream", 0)))
    if kind == "device_sync":
        return DeviceSyncOp()
    raise ValueError(f"unknown trace operation kind: {kind!r}")


def trace_to_dict(trace: ApplicationTrace) -> Dict[str, Any]:
    """Convert a trace to a JSON-serialisable dictionary."""
    return {
        "name": trace.name,
        "streams": list(trace.streams),
        "kernel_class": trace.kernel_class,
        "application_class": trace.application_class,
        "kernels": {name: _kernel_to_dict(spec) for name, spec in trace.kernels.items()},
        "operations": [_op_to_dict(op) for op in trace.operations],
    }


def trace_from_dict(data: Dict[str, Any]) -> ApplicationTrace:
    """Rebuild a trace from :func:`trace_to_dict` output."""
    kernels = {name: _kernel_from_dict(k) for name, k in data["kernels"].items()}
    operations: List[TraceOp] = [_op_from_dict(op) for op in data["operations"]]
    return ApplicationTrace(
        name=data["name"],
        kernels=kernels,
        operations=operations,
        streams=tuple(data.get("streams", (0,))),
        kernel_class=data.get("kernel_class"),
        application_class=data.get("application_class"),
    )
