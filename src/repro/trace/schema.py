"""Trace schema: the operations an application performs, in program order.

A trace captures everything between the first and the last CUDA call of the
application — memory allocations, host/device transfers, kernel launches,
synchronisation points and the CPU execution phases in between (paper
Sec. 4.1).  The host model (:mod:`repro.host.process`) replays the trace, and
the workload generator replays whole traces repeatedly to build even
multiprogrammed workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.gpu.command_queue import TransferDirection
from repro.gpu.kernel import KernelSpec


@dataclass(frozen=True)
class CpuPhaseOp:
    """Host CPU execution for ``duration_us`` microseconds."""

    duration_us: float

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError("CPU phase duration must be non-negative")


@dataclass(frozen=True)
class MallocOp:
    """Allocate ``size_bytes`` of device memory under ``label``."""

    size_bytes: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("allocation size must be positive")


@dataclass(frozen=True)
class FreeOp:
    """Free the allocation previously created under ``label``."""

    label: str


@dataclass(frozen=True)
class MemcpyOp:
    """Transfer ``size_bytes`` between host and device memory."""

    size_bytes: int
    direction: TransferDirection
    stream: int = 0
    #: Synchronous copies block the host until the transfer completes
    #: (cudaMemcpy); asynchronous ones return immediately (cudaMemcpyAsync).
    synchronous: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("transfer size must be positive")


@dataclass(frozen=True)
class KernelLaunchOp:
    """Launch the kernel registered in the trace under ``kernel_name``."""

    kernel_name: str
    stream: int = 0


@dataclass(frozen=True)
class StreamSyncOp:
    """Block the host until every command in ``stream`` has completed."""

    stream: int = 0


@dataclass(frozen=True)
class DeviceSyncOp:
    """Block the host until every outstanding command has completed."""


TraceOp = Union[
    CpuPhaseOp, MallocOp, FreeOp, MemcpyOp, KernelLaunchOp, StreamSyncOp, DeviceSyncOp
]


@dataclass
class ApplicationTrace:
    """The full trace of one application run.

    Attributes
    ----------
    name:
        Application (benchmark) name.
    kernels:
        The kernel specs referenced by the trace's launch operations.
    operations:
        The operations in program order.
    streams:
        Software streams the application creates (stream 0 always exists).
    """

    name: str
    kernels: Dict[str, KernelSpec]
    operations: List[TraceOp] = field(default_factory=list)
    streams: Sequence[int] = (0,)
    #: Optional descriptive class labels used by the evaluation
    #: (paper Table 1, "Class 1" by kernel length and "Class 2" by
    #: application length).
    kernel_class: Optional[str] = None
    application_class: Optional[str] = None

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # Validation and queries
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency of the trace."""
        labels: set[str] = set()
        for op in self.operations:
            if isinstance(op, KernelLaunchOp) and op.kernel_name not in self.kernels:
                raise ValueError(
                    f"trace {self.name}: launch references unknown kernel {op.kernel_name!r}"
                )
            if isinstance(op, (KernelLaunchOp, MemcpyOp, StreamSyncOp)):
                stream = op.stream
                if stream not in self.streams:
                    raise ValueError(f"trace {self.name}: unknown stream {stream}")
            if isinstance(op, MallocOp) and op.label:
                labels.add(op.label)
            if isinstance(op, FreeOp) and op.label not in labels:
                raise ValueError(f"trace {self.name}: free of unknown allocation {op.label!r}")

    @property
    def kernel_launch_count(self) -> int:
        """Total number of kernel launches in one run of the trace."""
        return sum(1 for op in self.operations if isinstance(op, KernelLaunchOp))

    @property
    def total_cpu_time_us(self) -> float:
        """Total CPU-phase time in one run of the trace."""
        return sum(op.duration_us for op in self.operations if isinstance(op, CpuPhaseOp))

    @property
    def total_transfer_bytes(self) -> int:
        """Total bytes moved over PCIe in one run of the trace."""
        return sum(op.size_bytes for op in self.operations if isinstance(op, MemcpyOp))

    def nominal_kernel_time_us(self) -> float:
        """Sum of measured isolated kernel times over all launches.

        Uses Table 1's measured kernel times when available, otherwise the
        blocks x per-block-time estimate; useful for sanity checks only.
        """
        total = 0.0
        for op in self.operations:
            if not isinstance(op, KernelLaunchOp):
                continue
            spec = self.kernels[op.kernel_name]
            if spec.measured_kernel_time_us is not None:
                total += spec.measured_kernel_time_us
            else:
                total += spec.nominal_kernel_time_us
        return total

    def scaled(self, tb_scale: float, *, launch_scale: float = 1.0) -> "ApplicationTrace":
        """Return a reduced-scale copy of the trace (DESIGN.md Sec. 3.6).

        ``tb_scale`` scales every kernel's thread-block count;
        ``launch_scale`` drops a fraction of repeated kernel launches (keeping
        at least one launch of each kernel).  Per-block times, resource usage
        and the CPU/transfer structure are preserved.
        """
        if launch_scale <= 0 or launch_scale > 1:
            raise ValueError("launch_scale must be in (0, 1]")
        scaled_kernels = {name: spec.scaled(tb_scale) for name, spec in self.kernels.items()}
        operations: List[TraceOp] = []
        launch_counts: Dict[str, int] = {}
        kept_counts: Dict[str, int] = {}
        for op in self.operations:
            if isinstance(op, KernelLaunchOp):
                seen = launch_counts.get(op.kernel_name, 0)
                launch_counts[op.kernel_name] = seen + 1
                target_kept = max(1, round((seen + 1) * launch_scale))
                if kept_counts.get(op.kernel_name, 0) >= target_kept:
                    continue
                kept_counts[op.kernel_name] = kept_counts.get(op.kernel_name, 0) + 1
            operations.append(op)
        return ApplicationTrace(
            name=self.name,
            kernels=scaled_kernels,
            operations=operations,
            streams=self.streams,
            kernel_class=self.kernel_class,
            application_class=self.application_class,
        )
