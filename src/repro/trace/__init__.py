"""Application traces.

The paper's simulator is *trace driven*: each benchmark application is
recorded as the sequence of CUDA API calls it makes (with timestamps for the
CPU phases between them) plus per-kernel execution traces collected on the
real GPU.  This package defines the trace schema
(:mod:`repro.trace.schema`), synthetic trace generation from Table 1 models
(:mod:`repro.trace.generator`) and a simple JSON (de)serialisation
(:mod:`repro.trace.serialization`) so traces can be stored and inspected.
"""

from repro.trace.schema import (
    ApplicationTrace,
    CpuPhaseOp,
    DeviceSyncOp,
    FreeOp,
    KernelLaunchOp,
    MallocOp,
    MemcpyOp,
    StreamSyncOp,
    TraceOp,
)
from repro.trace.generator import TraceGenerator
from repro.trace.serialization import trace_from_dict, trace_to_dict

__all__ = [
    "ApplicationTrace",
    "TraceOp",
    "CpuPhaseOp",
    "MallocOp",
    "FreeOp",
    "MemcpyOp",
    "KernelLaunchOp",
    "StreamSyncOp",
    "DeviceSyncOp",
    "TraceGenerator",
    "trace_to_dict",
    "trace_from_dict",
]
