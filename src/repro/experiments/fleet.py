"""Multi-GPU fleet serving: router comparison on a four-GPU cluster.

Extends the open-loop serving experiment (:mod:`repro.experiments.serving`)
across a fleet (see :mod:`repro.cluster`): the same bursty two-tenant
arrival mix is admitted by one cluster-level queue and routed to four
member GPUs by each registered router in turn — round-robin, least-loaded,
tenant-affinity and priority-spill.  The report compares cluster admission
counters, merged steady-state latency quantiles, SLO violations and the
per-GPU completion balance (min/max completed across members) per router.

Epoch batches shard over worker processes with ``--jobs``; results are
byte-identical to the serial run.

    repro-experiments fleet --scale smoke
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster import run_fleet
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.serving import LOAD_LEVELS, SERVING_SCHEME, SLO_BUDGET_US
from repro.runner import BatchRunner
from repro.scenario import ScenarioSpec

#: Routers compared by the experiment, in report order.
FLEET_ROUTERS = ("round_robin", "least_loaded", "tenant_affinity", "priority_spill")

#: Fleet size (the acceptance bar for the cluster layer is >= 4 members).
NUM_GPUS = 4

#: Simulated horizon at full workload scale (µs).  Shorter than the
#: single-GPU serving horizon: the fleet serves a proportionally heavier
#: offered load (one stream per member GPU would be idle-dominated).
HORIZON_US = 600_000.0


def fleet_scenario(
    config: ExperimentConfig,
    *,
    router: str,
    num_gpus: int = NUM_GPUS,
    workload_id: int = 0,
) -> ScenarioSpec:
    """Build the two-tenant, ``num_gpus``-member fleet scenario for a router."""
    hp_mean, bg_mean = LOAD_LEVELS["moderate"]
    factor = config.workload_scale().tb_scale
    horizon = HORIZON_US * factor
    return ScenarioSpec(
        scheme=SERVING_SCHEME,
        applications=(f"syn-{config.seed}-0", f"syn-{config.seed}-1"),
        high_priority_index=0,
        workload_id=workload_id,
        scale=config.scale,
        validate=config.validate,
        queue=config.queue,
        trace=config.trace,
        metrics=config.metrics_spec(),
        arrivals={
            "horizon_us": horizon,
            "warmup_us": horizon / 8.0,
            "window_us": horizon / 4.0,
            "queue_capacity": 32 * num_gpus,
            "admission": "drop",
            "max_inflight": 4,
            "tenants": [
                {
                    "process": "mmpp",
                    "seed": config.seed,
                    # The fleet absorbs num_gpus times the single-GPU load.
                    "mean_interarrival_us": hp_mean * factor / num_gpus,
                    "burstiness": 8.0,
                },
                {
                    "process": "poisson",
                    "seed": config.seed + 1,
                    "mean_interarrival_us": bg_mean * factor / num_gpus,
                },
            ],
        },
        slo={"default": SLO_BUDGET_US * factor},
        cluster={
            "num_gpus": num_gpus,
            "router": router,
            "epoch_us": horizon / 8.0,
        },
    )


def _latency_cells(latency: Dict[str, float]) -> List[object]:
    return [
        round(latency["p50"], 2),
        round(latency["p95"], 2),
        round(latency["p99"], 2),
    ]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Compare the registered routers on a four-GPU fleet."""
    config = config if config is not None else ExperimentConfig()
    scenarios = [
        fleet_scenario(config, router=router, workload_id=index)
        for index, router in enumerate(FLEET_ROUTERS)
    ]
    runner = None if config.jobs == 1 else BatchRunner(jobs=config.jobs)
    try:
        outcomes = [run_fleet(scenario, runner=runner) for scenario in scenarios]
    finally:
        if runner is not None:
            runner.close()

    result = ExperimentResult(
        name="Fleet",
        description=(
            f"open-loop serving across a {NUM_GPUS}-GPU fleet (PPQ + context "
            "switch): cluster admission, merged latency quantiles and per-GPU "
            "balance per router"
        ),
        headers=[
            "Router",
            "Arrived",
            "Admitted",
            "Dropped",
            "Completed",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "SLO viol",
            "Balance (min/max)",
        ],
    )
    for router, outcome in zip(FLEET_ROUTERS, outcomes):
        summary = outcome.summary
        queue = summary["queue"]
        completed = [gpu["completed"] for gpu in summary["per_gpu"]]
        result.rows.append(
            [
                router,
                queue["arrived"],
                queue["admitted"],
                queue["dropped"],
                summary["completed"],
                *_latency_cells(summary["latency_us"]),
                summary["slo_violations_total"],
                f"{min(completed)}/{max(completed)}",
            ]
        )
        result.series[f"summary/{router}"] = summary

    result.violation_count = sum(len(outcome.violations) for outcome in outcomes)
    result.events_processed = sum(outcome.events_processed for outcome in outcomes)
    result.traced_run_count = sum(1 for o in outcomes if o.trace_events)
    result.trace_event_count = sum(len(o.trace_events) for o in outcomes)
    horizon = HORIZON_US * config.workload_scale().tb_scale
    result.notes.append(
        f"Scale preset: {config.scale}; {NUM_GPUS} GPUs, horizon {horizon:.0f} us, "
        f"8 sync epochs, moderate offered load x{NUM_GPUS}, seed {config.seed}."
    )
    result.notes.append(
        "One cluster-level admission queue feeds all members; epoch batches "
        "shard over --jobs worker processes with byte-identical results."
    )
    return result


__all__ = ["FLEET_ROUTERS", "NUM_GPUS", "HORIZON_US", "fleet_scenario", "run"]
