"""Figure 8: ANTT of every simulated workload (S-curves).

For every random workload the average normalized turnaround time under FCFS,
DSS with context switch and DSS with draining is reported.  The paper plots
the per-scheme values sorted ascending against the fraction of workloads
(an S-curve per scheme, one panel per process count); this experiment prints
the same sorted series.

Expected shape: the DSS curves sit below the FCFS curve for most workloads;
the fraction of improved workloads grows with the process count; the DSS-CS
and DSS-draining curves cross.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.dss_data import DSSExperimentData, collect

_SCHEMES = ("fcfs", "dss_cs", "dss_drain")
_LABELS = {"fcfs": "FCFS", "dss_cs": "DSS context switch", "dss_drain": "DSS draining"}


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    data: Optional[DSSExperimentData] = None,
) -> ExperimentResult:
    """Regenerate Figure 8 (sorted per-workload ANTT series)."""
    config = config if config is not None else ExperimentConfig()
    if data is None:
        data = collect(config)

    result = ExperimentResult(
        name="Figure 8",
        description="ANTT for all simulated workloads (sorted per scheme)",
        headers=["Processes", "Scheme", "Workload rank", "ANTT"],
    )

    curves: Dict[int, Dict[str, List[float]]] = {}
    improved_fraction: Dict[int, Dict[str, float]] = {}
    for process_count in config.process_counts:
        curves[process_count] = {}
        improved_fraction[process_count] = {}
        workload_ids = [spec.workload_id for spec in data.workloads[process_count]]
        per_scheme_antt = {
            scheme: {
                wid: data.result(process_count, wid, scheme).metrics.antt
                for wid in workload_ids
            }
            for scheme in _SCHEMES
        }
        for scheme in _SCHEMES:
            sorted_antt = sorted(per_scheme_antt[scheme].values())
            curves[process_count][scheme] = sorted_antt
            for rank, antt in enumerate(sorted_antt):
                result.rows.append([process_count, _LABELS[scheme], rank, round(antt, 3)])
        for scheme in ("dss_cs", "dss_drain"):
            improved = sum(
                1
                for wid in workload_ids
                if per_scheme_antt[scheme][wid] < per_scheme_antt["fcfs"][wid]
            )
            improved_fraction[process_count][scheme] = improved / len(workload_ids)

    result.series["curves"] = curves
    result.series["improved_fraction"] = improved_fraction
    result.notes.append(
        "The 'improved_fraction' series records the fraction of workloads whose ANTT is "
        "better under DSS than under FCFS; the paper reports ~20% at 2 processes, ~70% at "
        "4 processes and almost all workloads at 6 and 8 processes."
    )
    return result
