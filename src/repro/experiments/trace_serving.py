"""Trace-driven serving: synthesized FaaS traffic vs matched-rate Poisson.

The paper's mechanisms are evaluated under fixed multiprogram mixes; the
ROADMAP's north star is "millions of users" hitting shared GPUs.  This
experiment drives the serving layer with exactly that: a seed-deterministic
``azure_faas`` workload trace (Zipf-skewed tenant rates, Pareto-tailed
interarrival gaps, diurnal envelope, MMPP burst epochs — see
:mod:`repro.loadgen.synth`) is calibrated onto the synthetic app family at a
target utilization (:mod:`repro.loadgen.calibrate`), compiled into replay
scenarios (:mod:`repro.loadgen.compile`) and run under three preemption
controllers (static context switching, ``hybrid``, ``adaptive``).  A
*matched-rate Poisson* twin — same applications, same per-tenant mean rates,
memoryless gaps — runs next to each trace scenario, so every row pair
isolates what burstiness (the trace's KS distance from Poisson, reported in
the notes) does to admission drops and tail latency under that controller.

All results are deterministic and byte-identical whether the scenarios run
serially or across worker processes (``--jobs``).

    repro-experiments trace_serving --scale smoke
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.loadgen.calibrate import calibrate_trace
from repro.loadgen.compile import compile_serving_scenario
from repro.loadgen.synth import synthesize_trace
from repro.loadgen.validate import gap_stats
from repro.runner import RunRecord
from repro.scenario import ScenarioSpec, SchemeSpec

#: Trace source driving the experiment.
TRACE_SOURCE = "azure_faas"
#: Tenants in the synthesized trace.
NUM_TENANTS = 4
#: Simulated horizon at full workload scale (µs); scaled by ``tb_scale``.
HORIZON_US = 1_200_000.0
#: Per-tenant mean interarrival gap at full scale (µs); scaled like the
#: horizon so the request count is scale-invariant.
MEAN_INTERARRIVAL_US = 12_800.0
#: Utilization the calibration fits the offered load to.
TARGET_UTILIZATION = 0.6

#: The compared schemes: PPQ scheduling with context-switch preemption under
#: three controllers (the satellite requirement: 2+ preemption controllers).
SCHEMES: Tuple[SchemeSpec, ...] = (
    SchemeSpec(
        name="ppq_static_cs",
        policy="ppq",
        mechanism="context_switch",
        controller="static",
    ),
    SchemeSpec(
        name="ppq_hybrid",
        policy="ppq",
        mechanism="context_switch",
        controller="hybrid",
    ),
    SchemeSpec(
        name="ppq_adaptive",
        policy="ppq",
        mechanism="context_switch",
        controller="adaptive",
    ),
)


def build_trace(config: ExperimentConfig):
    """Synthesize the driving trace at the config's scale and seed."""
    factor = config.workload_scale().tb_scale
    return synthesize_trace(
        TRACE_SOURCE,
        seed=config.seed,
        horizon_us=HORIZON_US * factor,
        num_tenants=NUM_TENANTS,
        mean_interarrival_us=MEAN_INTERARRIVAL_US * factor,
    )


def _poisson_twin(scenario: ScenarioSpec, trace) -> ScenarioSpec:
    """The matched-rate Poisson variant of a compiled trace scenario."""
    arrivals = dict(scenario.arrivals)
    tenants = []
    for slot, tenant in enumerate(trace.tenants):
        count = len(tenant.arrivals_us)
        mean = trace.horizon_us / count if count else trace.horizon_us
        tenants.append(
            {
                "process": "poisson",
                "seed": slot,
                "priority": tenant.priority,
                "mean_interarrival_us": round(mean, 3),
            }
        )
    arrivals["tenants"] = tenants
    return dataclasses.replace(scenario, arrivals=arrivals)


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run trace-driven vs Poisson serving under the compared controllers."""
    config = config if config is not None else ExperimentConfig()
    trace = build_trace(config)
    calibration = calibrate_trace(
        trace,
        app_seed=config.seed,
        scale=config.scale,
        target_utilization=TARGET_UTILIZATION,
    )
    labels: List[Tuple[str, str]] = []
    scenarios: List[ScenarioSpec] = []
    for index, scheme in enumerate(SCHEMES):
        compiled = compile_serving_scenario(
            trace,
            calibration,
            scheme=scheme,
            workload_id=index,
        )
        compiled = dataclasses.replace(
            compiled,
            validate=config.validate,
            queue=config.queue,
            trace=config.trace,
            metrics=config.metrics_spec(),
        )
        labels.append((scheme.name, "trace"))
        scenarios.append(compiled)
        labels.append((scheme.name, "poisson"))
        scenarios.append(_poisson_twin(compiled, trace))
    records: List[RunRecord] = config.make_batch_runner().run(scenarios)

    trace_stats = gap_stats(trace.pooled_gaps_us())
    result = ExperimentResult(
        name="Trace-driven serving",
        description=(
            "synthesized azure_faas traffic vs matched-rate Poisson under "
            "static / hybrid / adaptive preemption control"
        ),
        headers=[
            "Scheme",
            "Stream",
            "Arrived",
            "Admitted",
            "Dropped",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "SLO viol",
        ],
    )
    for (scheme_name, stream), record in zip(labels, records):
        summary = record.result.serving_summary
        queue = summary["queue"]
        latency = summary["latency_us"]
        result.rows.append(
            [
                scheme_name,
                stream,
                queue["arrived"],
                queue["admitted"],
                queue["dropped"],
                round(latency["p50"], 2),
                round(latency["p95"], 2),
                round(latency["p99"], 2),
                summary["slo_violations_total"],
            ]
        )
        result.series[f"summary/{scheme_name}/{stream}"] = summary
    result.series["calibration"] = calibration.to_dict()
    result.series["trace_stats"] = {
        key: round(value, 6) for key, value in trace_stats.items()
    }

    result.violation_count = sum(len(record.violations) for record in records)
    result.events_processed = sum(record.result.events_processed for record in records)
    result.traced_run_count = sum(
        1 for record in records if record.trace_summary is not None
    )
    result.trace_event_count = sum(
        record.trace_summary["events_total"]
        for record in records
        if record.trace_summary is not None
    )
    result.notes.append(
        f"Trace {trace.name}: {trace.total_arrivals} arrivals across "
        f"{NUM_TENANTS} tenants, horizon {trace.horizon_us:.0f} us; KS "
        f"distance from Poisson {trace_stats['ks_to_exponential']:.4f}, "
        f"gap CV {trace_stats['cv']:.3f}."
    )
    result.notes.append(
        f"Calibration: target utilization {TARGET_UTILIZATION}, achieved "
        f"{calibration.achieved_utilization:.3f} at scale {calibration.scale} "
        f"(size factor {calibration.size_factor:.3f})."
    )
    result.notes.append(
        "Each trace row has a matched-rate Poisson twin: same applications "
        "and per-tenant mean rates, memoryless gaps — the delta is the cost "
        "of burstiness under that preemption controller."
    )
    return result


__all__ = [
    "TRACE_SOURCE",
    "NUM_TENANTS",
    "HORIZON_US",
    "MEAN_INTERARRIVAL_US",
    "TARGET_UTILIZATION",
    "SCHEMES",
    "build_trace",
    "run",
]
