"""Open-loop serving under bursty load: steady-state tail latency and SLOs.

The paper's evaluation runs closed multiprogram mixes to completion; this
experiment drives the same simulated GPU with *open-loop* request streams
(see :mod:`repro.serving`): a bursty high-priority tenant (MMPP on-off
arrivals) shares the GPU with a steady Poisson background tenant under the
PPQ + context-switch scheme.  Three offered-load levels are swept; for each,
the report shows admission counters (arrived/admitted/dropped), the
warmup-discarded streaming latency quantiles (p50/p95/p99 via the P²
estimator), the sliding-window throughput and ANTT over the final window,
and the per-tenant SLO-violation counts.

All results are deterministic and byte-identical whether the scenarios run
serially or across worker processes (``--jobs``), with tracing on or off.

    repro-experiments serving --scale smoke
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.runner import RunRecord
from repro.scenario import ScenarioSpec, SchemeSpec

#: Offered-load levels: mean interarrival times (µs, at full ``tb_scale=1``
#: workload scale) for the bursty high-priority tenant and the Poisson
#: background tenant.  Scaled by the active preset's ``tb_scale`` so the
#: arrival rate tracks the scaled kernel service times.
LOAD_LEVELS: Dict[str, Tuple[float, float]] = {
    "light": (5120.0, 7680.0),
    "moderate": (2560.0, 3840.0),
    "heavy": (1280.0, 1920.0),
}

#: Simulated horizon at full workload scale (µs); scaled like the loads.
HORIZON_US = 1_200_000.0
#: Default per-request latency budget at full scale (µs).
SLO_BUDGET_US = 3200.0

#: The serving scheme: priority scheduling with preemptive context switching
#: and priority transfers — the paper's preferred configuration.
SERVING_SCHEME = SchemeSpec(
    name="ppq_cs",
    policy="ppq",
    mechanism="context_switch",
    transfer_policy="npq",
)


def serving_scenario(
    config: ExperimentConfig,
    *,
    load: str,
    scheme: Optional[SchemeSpec] = None,
    workload_id: int = 0,
    config_overrides: Optional[Dict] = None,
) -> ScenarioSpec:
    """Build the two-tenant open-loop scenario for one load level."""
    hp_mean, bg_mean = LOAD_LEVELS[load]
    factor = config.workload_scale().tb_scale
    horizon = HORIZON_US * factor
    return ScenarioSpec(
        scheme=scheme if scheme is not None else SERVING_SCHEME,
        applications=(f"syn-{config.seed}-0", f"syn-{config.seed}-1"),
        high_priority_index=0,
        workload_id=workload_id,
        scale=config.scale,
        config_overrides=config_overrides or {},
        validate=config.validate,
        queue=config.queue,
        trace=config.trace,
        metrics=config.metrics_spec(),
        arrivals={
            "horizon_us": horizon,
            "warmup_us": horizon / 8.0,
            "window_us": horizon / 4.0,
            "queue_capacity": 32,
            "admission": "drop",
            "max_inflight": 4,
            "tenants": [
                {
                    "process": "mmpp",
                    "seed": config.seed,
                    "mean_interarrival_us": hp_mean * factor,
                    "burstiness": 8.0,
                },
                {
                    "process": "poisson",
                    "seed": config.seed + 1,
                    "mean_interarrival_us": bg_mean * factor,
                },
            ],
        },
        slo={"default": SLO_BUDGET_US * factor},
    )


def _latency_cells(latency: Dict[str, float]) -> List[object]:
    return [
        round(latency["p50"], 2),
        round(latency["p95"], 2),
        round(latency["p99"], 2),
    ]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Sweep the load levels and report steady-state serving metrics."""
    config = config if config is not None else ExperimentConfig()
    loads = list(LOAD_LEVELS)
    scenarios = [
        serving_scenario(config, load=load, workload_id=index)
        for index, load in enumerate(loads)
    ]
    records: List[RunRecord] = config.make_batch_runner().run(scenarios)

    result = ExperimentResult(
        name="Serving",
        description=(
            "open-loop bursty two-tenant serving (PPQ + context switch): "
            "steady-state latency quantiles, windowed throughput/ANTT, SLOs"
        ),
        headers=[
            "Load",
            "Tenant",
            "Arrived",
            "Admitted",
            "Dropped",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "Win req/s",
            "Win ANTT",
            "SLO viol",
        ],
    )
    for load, record in zip(loads, records):
        summary = record.result.serving_summary
        queue = summary["queue"]
        window = summary["window"]
        result.rows.append(
            [
                load,
                "all",
                queue["arrived"],
                queue["admitted"],
                queue["dropped"],
                *_latency_cells(summary["latency_us"]),
                round(window["throughput_rps"], 1),
                round(window["antt"], 3),
                summary["slo_violations_total"],
            ]
        )
        for tenant, tenant_summary in summary["tenants"].items():
            result.rows.append(
                [
                    load,
                    tenant,
                    queue["per_tenant_arrived"].get(tenant, 0),
                    queue["per_tenant_admitted"].get(tenant, 0),
                    queue["per_tenant_dropped"].get(tenant, 0),
                    *_latency_cells(tenant_summary["latency_us"]),
                    "-",
                    "-",
                    tenant_summary["slo_violations"],
                ]
            )
        result.series[f"summary/{load}"] = summary

    result.violation_count = sum(len(record.violations) for record in records)
    result.events_processed = sum(record.result.events_processed for record in records)
    result.traced_run_count = sum(
        1 for record in records if record.trace_summary is not None
    )
    result.trace_event_count = sum(
        record.trace_summary["events_total"]
        for record in records
        if record.trace_summary is not None
    )
    horizon = HORIZON_US * config.workload_scale().tb_scale
    result.notes.append(
        f"Scale preset: {config.scale}; horizon {horizon:.0f} us per load level "
        f"(first eighth discarded as warmup), window = horizon/4, seed {config.seed}."
    )
    result.notes.append(
        "Tenant 0 is the bursty high-priority stream (MMPP on-off), tenant 1 "
        "the Poisson background; quantiles are streaming P2 estimates over "
        "post-warmup completions."
    )
    return result


__all__ = [
    "LOAD_LEVELS",
    "HORIZON_US",
    "SLO_BUDGET_US",
    "SERVING_SCHEME",
    "serving_scenario",
    "run",
]
