"""Synthetic scenario fuzzing: seed-derived multiprogram mixes end to end.

Beyond the paper's fixed Parboil mixes, this experiment derives arbitrary
scenarios — randomized kernel shapes, resource footprints, phase balance,
arrival staggers, priorities, process counts and scheduling schemes — from
``--seed`` (see :mod:`repro.workloads.synthetic`), fans them out through the
:class:`~repro.runner.BatchRunner` and reports the multiprogram metrics per
scenario.  With ``--validate`` every run is additionally observed by the
runtime invariant-validation layer (:mod:`repro.validation`); the violation
count per scenario is reported and must be zero for a correct simulator::

    repro-experiments synthetic --seed 7 --validate
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.runner import RunRecord
from repro.workloads.synthetic import generate_synthetic_scenarios


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Fuzz ``workloads_per_count`` seed-derived scenarios and report them."""
    config = config if config is not None else ExperimentConfig()
    scenarios = generate_synthetic_scenarios(
        config.workloads_per_count,
        seed=config.seed,
        scale=config.scale,
        validate=config.validate,
        queue=config.queue,
        trace=config.trace,
        metrics=config.metrics_spec(),
    )
    records: List[RunRecord] = config.make_batch_runner().run(scenarios)

    result = ExperimentResult(
        name="Synthetic",
        description=(
            "seed-derived multiprogram scenarios (fuzzer) with per-scenario "
            "multiprogram metrics"
        ),
        headers=[
            "Scenario",
            "Processes",
            "Scheme",
            "ANTT",
            "STP",
            "Fairness",
            "Violations",
        ],
    )
    total_violations = 0
    for record in records:
        scenario = record.scenario
        metrics = record.result.metrics
        total_violations += len(record.violations)
        result.rows.append(
            [
                f"seed {scenario.workload_id}",
                scenario.num_processes,
                scenario.scheme.label,
                round(metrics.antt, 2),
                round(metrics.stp, 2),
                round(metrics.fairness, 2),
                len(record.violations) if scenario.validate else "-",
            ]
        )

    result.violation_count = total_violations
    result.events_processed = sum(r.result.events_processed for r in records)
    result.traced_run_count = sum(1 for r in records if r.trace_summary is not None)
    result.trace_event_count = sum(
        r.trace_summary["events_total"] for r in records if r.trace_summary is not None
    )
    result.series["records"] = [record.to_dict() for record in records]
    result.notes.append(
        f"Scale preset: {config.scale}; {len(scenarios)} scenarios derived from "
        f"seed {config.seed} (sub-seeds {config.seed * 1000}.."
        f"{config.seed * 1000 + len(scenarios) - 1}); the same seed always yields "
        "byte-identical scenario specs."
    )
    if config.validate:
        result.notes.append(
            f"Invariant validation: {total_violations} violation(s) across "
            f"{len(scenarios)} runs (must be 0 for a correct simulator)."
        )
    else:
        result.notes.append(
            "Invariant validation disabled; re-run with --validate to check the "
            "simulator's conservation laws on every scenario."
        )
    return result
