"""Table 2: simulation parameters used in the experimental evaluation."""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.gpu.config import SystemConfig


def run(config: Optional[ExperimentConfig] = None, *, system_config: Optional[SystemConfig] = None) -> ExperimentResult:
    """Regenerate Table 2 from the simulator's configuration objects."""
    del config  # Table 2 does not depend on the workload scale.
    system = system_config if system_config is not None else SystemConfig()
    result = ExperimentResult(
        name="Table 2",
        description="Simulation parameters used in the experimental evaluation",
        headers=["Parameter", "Value"],
    )
    for key, value in system.describe().items():
        result.rows.append([key, value])
    result.notes.append(
        "The default shared-memory configuration is the smallest (16 KB); kernels "
        "needing more select the first bigger configuration that fits (Table 2 footnote)."
    )
    return result
