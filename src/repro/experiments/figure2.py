"""Figure 2: execution of a soft real-time kernel under different schedulers.

The paper motivates preemption with a timeline: two low-priority kernels (K1,
K2) are already queued when a high-priority kernel with a deadline (K3) is
launched.  Under FCFS (current GPUs) K3 waits for both; under non-preemptive
priority it waits for the currently running kernel; with preemption it only
waits for the preemption latency.

This experiment reproduces the scenario with three synthetic kernels and
reports the turnaround time of K3 (launch to completion) under FCFS, NPQ and
PPQ with both preemption mechanisms.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.gpu.command_queue import TransferDirection
from repro.gpu.kernel import KernelSpec
from repro.gpu.resources import ResourceUsage
from repro.system import GPUSystem
from repro.trace.schema import (
    ApplicationTrace,
    CpuPhaseOp,
    DeviceSyncOp,
    KernelLaunchOp,
    MallocOp,
    MemcpyOp,
)

KIB = 1024


def _kernel(name: str, *, blocks: int, tb_time_us: float) -> KernelSpec:
    return KernelSpec(
        name=name,
        benchmark="figure2",
        num_thread_blocks=blocks,
        avg_tb_time_us=tb_time_us,
        usage=ResourceUsage(registers_per_block=8192, shared_memory_per_block=0),
    )


def _single_kernel_trace(name: str, spec: KernelSpec, *, cpu_us: float) -> ApplicationTrace:
    operations = [
        CpuPhaseOp(cpu_us),
        MallocOp(64 * KIB, label="buf"),
        MemcpyOp(64 * KIB, TransferDirection.HOST_TO_DEVICE),
        KernelLaunchOp(spec.name),
        DeviceSyncOp(),
        MemcpyOp(64 * KIB, TransferDirection.DEVICE_TO_HOST),
    ]
    return ApplicationTrace(name=name, kernels={spec.name: spec}, operations=operations)


def _k3_latency(
    policy: str, mechanism: str, *, validate: bool = False, trace: bool = False
) -> tuple[float, int, int, int]:
    """Turnaround time of the high-priority process (K3) under one scheduler.

    Returns ``(latency_us, violation_count, trace_event_count,
    events_processed)``; the violation/trace counts are 0 unless ``validate``
    / ``trace`` attached the respective observers.
    """
    system = GPUSystem(
        policy=policy,
        mechanism=mechanism,
        transfer_policy="npq",
        validate=validate,
        trace=trace,
    )
    k1 = _kernel("K1", blocks=1300, tb_time_us=40.0)
    k2 = _kernel("K2", blocks=1300, tb_time_us=40.0)
    k3 = _kernel("K3", blocks=130, tb_time_us=10.0)
    system.add_process("low1", _single_kernel_trace("low1", k1, cpu_us=1.0), priority=0,
                       max_iterations=1)
    system.add_process("low2", _single_kernel_trace("low2", k2, cpu_us=2.0), priority=0,
                       max_iterations=1)
    # K3 arrives while K1 is executing and K2 is queued.
    system.add_process("rt", _single_kernel_trace("rt", k3, cpu_us=1.0), priority=10,
                       start_delay_us=500.0, max_iterations=1)
    system.run(max_events=5_000_000)
    events = system.telemetry.num_events if system.telemetry is not None else 0
    return (
        system.process("rt").mean_iteration_time_us(),
        len(system.violations()),
        events,
        system.simulator.events_processed,
    )


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Reproduce the Figure 2 scenario and report K3's turnaround time.

    The scenario is fixed (it does not use the Parboil suite); the
    configuration only supplies the ``validate`` and ``trace`` toggles.
    """
    validate = config.validate if config is not None else False
    trace = config.trace if config is not None else False
    schemes: Dict[str, tuple[str, str]] = {
        "FCFS (current GPUs, Fig. 2a)": ("fcfs", "context_switch"),
        "Nonpreemptive priority (Fig. 2b)": ("npq", "context_switch"),
        "Preemptive priority, context switch (Fig. 2c)": ("ppq", "context_switch"),
        "Preemptive priority, draining (Fig. 2c)": ("ppq", "draining"),
    }
    result = ExperimentResult(
        name="Figure 2",
        description="Turnaround time of a high-priority kernel (K3) behind two long kernels",
        headers=["Scheduler", "K3 turnaround (us)", "Speedup vs FCFS"],
    )
    latencies = {}
    for label, args in schemes.items():
        latency, violations, events, sim_events = _k3_latency(
            *args, validate=validate, trace=trace
        )
        latencies[label] = latency
        result.violation_count += violations
        result.events_processed += sim_events
        if trace:
            result.traced_run_count += 1
            result.trace_event_count += events
    baseline = latencies["FCFS (current GPUs, Fig. 2a)"]
    for label, latency in latencies.items():
        result.rows.append([label, round(latency, 1), round(baseline / latency, 2)])
    result.series["latencies_us"] = latencies
    result.notes.append(
        "K1/K2 are long low-priority kernels; K3 is a short high-priority kernel launched "
        "while K1 runs.  The expected ordering is FCFS > NPQ > PPQ, with both preemption "
        "mechanisms close to each other."
    )
    return result
