"""Experiment harness: regenerates every table and figure of the paper.

Each experiment module exposes a ``run(config)`` function returning a result
object with structured rows plus a ``format()`` method that prints the same
rows/series the paper reports:

* :mod:`repro.experiments.table1` — Table 1 (kernel statistics).
* :mod:`repro.experiments.table2` — Table 2 (simulation parameters).
* :mod:`repro.experiments.figure2` — Figure 2 (scheduling timeline of a
  soft real-time kernel under FCFS / NPQ / PPQ).
* :mod:`repro.experiments.figure5` — Figure 5 (high-priority NTT improvement).
* :mod:`repro.experiments.figure6` — Figure 6 (STP degradation of PPQ).
* :mod:`repro.experiments.figure7` — Figure 7 (DSS: NTT, fairness, STP).
* :mod:`repro.experiments.figure8` — Figure 8 (ANTT across all workloads).
* :mod:`repro.experiments.preemption_latency` — per-mechanism preemption
  latency distributions (telemetry-measured).
* :mod:`repro.experiments.mechanism_choice` — the latency-vs-overhead
  tradeoff as a preemption-*controller* comparison (static endpoints vs
  hybrid/adaptive per-request selection).

``repro-experiments`` (see :mod:`repro.experiments.cli`) runs them from the
command line; ``benchmarks/`` wraps each one in pytest-benchmark.
"""

from repro.experiments.base import ExperimentConfig, ExperimentResult

__all__ = ["ExperimentConfig", "ExperimentResult"]
