"""Command-line entry point: ``repro-experiments``.

Examples
--------
Run everything at the default reduced scale and print the tables::

    repro-experiments --all

Run a single experiment at smoke scale (fast), using 4 worker processes::

    repro-experiments --scale smoke --jobs 4 figure5

List the available experiments and registered components::

    repro-experiments --list

Emit machine-readable JSON instead of tables::

    repro-experiments figure5 --scale smoke --json

Write the results to a file (appending one section per experiment)::

    repro-experiments --all --output results.txt
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments import dss_data, priority_data
from repro.experiments import figure2, figure5, figure6, figure7, figure8, table1, table2
from repro.experiments import preemption_latency, synthetic
from repro.experiments import mechanism_choice
from repro.experiments import fleet as fleet_experiment
from repro.experiments import scale as scale_experiment
from repro.experiments import serving as serving_experiment
from repro.experiments import slo_preemption
from repro.experiments import trace_serving as trace_serving_experiment
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.registry import (
    ARRIVALS,
    CONTROLLERS,
    EVENT_QUEUES,
    MECHANISMS,
    POLICIES,
    ROUTERS,
    TRACE_SOURCES,
    TRANSFER_POLICIES,
)

#: Experiment name -> runner.  Runners that share simulation data accept it
#: through keyword arguments; the CLI wires that up in :func:`run_selected`.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "figure2": figure2.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "synthetic": synthetic.run,
    "preemption_latency": preemption_latency.run,
    "mechanism_choice": mechanism_choice.run,
    "scale": scale_experiment.run,
    "serving": serving_experiment.run,
    "fleet": fleet_experiment.run,
    "slo_preemption": slo_preemption.run,
    "trace_serving": trace_serving_experiment.run,
}


def experiment_descriptions() -> Dict[str, str]:
    """Experiment name -> one-line description (the module docstring)."""
    descriptions = {}
    for name, runner in EXPERIMENTS.items():
        doc = sys.modules[runner.__module__].__doc__ or ""
        descriptions[name] = doc.strip().splitlines()[0].rstrip(".") if doc else ""
    return descriptions


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Enabling Preemptive "
        "Multiprogramming on GPUs' (ISCA 2014).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"experiments to run: {', '.join(EXPERIMENTS)} (use --all for everything)",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--list",
        action="store_true",
        help="list experiments and registered policies/mechanisms, then exit",
    )
    parser.add_argument(
        "--scale",
        default="reduced",
        choices=["full", "reduced", "smoke"],
        help="workload scale preset (default: reduced)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        nargs="*",
        default=None,
        help="process counts to evaluate (default: 2 4 6 8)",
    )
    parser.add_argument(
        "--workloads", type=int, default=None, help="random workloads per process count"
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="parallel simulation worker processes (0 = all CPUs, default: 1)",
    )
    parser.add_argument("--seed", type=int, default=2014, help="workload generation seed")
    parser.add_argument(
        "--queue",
        default=None,
        metavar="NAME",
        help="engine event-queue implementation for every simulated run "
        "(registry name, e.g. 'heap' or 'calendar'; default: the engine "
        "default).  Every registered queue produces byte-identical results; "
        "this flag forces the heap oracle or benchmarks an implementation",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="attach the runtime invariant-validation layer to every simulated "
        "scenario/system run (observers only; printed results are byte-identical); "
        "exits non-zero if any invariant violation is detected",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="attach the telemetry subsystem (repro.telemetry) to every simulated "
        "run: per-scenario Chrome trace artifacts go to --trace-dir and a one-line "
        "summary is printed to stderr (printed results are byte-identical)",
    )
    parser.add_argument(
        "--trace-dir",
        default="traces",
        help="directory for per-scenario Chrome trace artifacts (default: traces; "
        "only used with --trace)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print wall time, simulator events processed and events/sec to stderr "
        "after the run, followed by a per-phase breakdown (one phase per "
        "experiment or shared data collection); stdout stays byte-identical; "
        "composes with --validate/--trace/--metrics; event totals cover the "
        "instrumented scenario runs, including serving and fleet runs",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="attach the runtime metrics hub (repro.obs) to every simulated run: "
        "counters/gauges/histograms snapshotted on sim-time boundaries; "
        "per-scenario JSONL series go to --metrics-out and a one-line summary "
        "is printed to stderr (printed results are byte-identical)",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=None,
        metavar="US",
        help="sim-time snapshot interval in microseconds (default: hub default; "
        "only used with --metrics)",
    )
    parser.add_argument(
        "--metrics-out",
        default="metrics",
        metavar="DIR",
        help="directory for per-scenario metrics JSONL series (default: metrics; "
        "only used with --metrics)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of tables"
    )
    parser.add_argument("--output", default=None, help="write results to this file as well")
    return parser


def make_config(args: argparse.Namespace) -> ExperimentConfig:
    """Translate parsed CLI arguments into an experiment configuration.

    Raises :class:`ValueError` on invalid values; explicit-but-falsy values
    (e.g. an empty ``--processes``) are rejected rather than silently
    ignored.
    """
    base = ExperimentConfig(scale=args.scale, seed=args.seed)
    updates = {}
    if args.processes is not None:
        if not args.processes:
            raise ValueError("--processes needs at least one value")
        if any(count < 1 for count in args.processes):
            raise ValueError("--processes values must be positive integers")
        updates["process_counts"] = tuple(args.processes)
    if args.workloads is not None:
        if args.workloads < 1:
            raise ValueError("--workloads must be a positive integer")
        updates["workloads_per_count"] = args.workloads
    if args.jobs < 0:
        raise ValueError("--jobs must be a non-negative integer (0 = all CPUs)")
    updates["jobs"] = args.jobs
    queue = getattr(args, "queue", None)
    if queue is not None:
        if queue not in EVENT_QUEUES:
            raise ValueError(
                f"unknown --queue {queue!r}; registered: "
                f"{', '.join(EVENT_QUEUES.names())}"
            )
        updates["queue"] = EVENT_QUEUES.canonical_name(queue)
    updates["validate"] = bool(getattr(args, "validate", False))
    updates["trace"] = bool(getattr(args, "trace", False))
    if updates["trace"]:
        updates["trace_dir"] = getattr(args, "trace_dir", None)
    updates["metrics"] = bool(getattr(args, "metrics", False))
    if updates["metrics"]:
        interval = getattr(args, "metrics_interval", None)
        if interval is not None:
            if interval <= 0:
                raise ValueError("--metrics-interval must be a positive number")
            updates["metrics_interval_us"] = interval
        updates["metrics_dir"] = getattr(args, "metrics_out", None)
    elif getattr(args, "metrics_interval", None) is not None:
        raise ValueError("--metrics-interval requires --metrics")
    import dataclasses

    return dataclasses.replace(base, **updates)


def run_selected(
    names: List[str],
    config: ExperimentConfig,
    *,
    profiler: Optional["PhaseProfiler"] = None,
) -> Tuple[List[ExperimentResult], int, Tuple[int, int], int]:
    """Run the selected experiments, sharing simulation data where possible.

    Returns the results, the total number of invariant violations detected
    across every simulated run (always 0 unless ``config.validate`` attached
    the checkers — and 0 then too, for a correct simulator), the
    ``(traced runs, trace events)`` telemetry totals (non-zero only with
    ``config.trace`` or trace-driven experiments like ``preemption_latency``),
    and the total simulator events processed across the instrumented scenario
    runs (the shared figure caches plus record-based experiments; consumed by
    ``--profile``).

    ``profiler`` (a :class:`repro.obs.PhaseProfiler`) records one phase per
    experiment and per shared data collection; each phase carries the
    simulator events it processed, so serving and fleet runs show up with
    real event counts, not zeros.
    """
    if profiler is None:
        from repro.obs import PhaseProfiler  # local: keeps import cheap

        profiler = PhaseProfiler()
    results: List[ExperimentResult] = []
    priority_cache = None
    dss_cache = None

    def _cache_events(cache) -> int:
        return sum(r.events_processed for r in cache.results.values())

    for name in names:
        started = time.time()
        if name == "figure5":
            if priority_cache is None:
                schemes = (
                    tuple(priority_data.PRIORITY_SCHEMES)
                    if "figure6" in names
                    else priority_data.FIGURE5_SCHEMES
                )
                with profiler.phase("priority_data") as record:
                    priority_cache = priority_data.collect(config, schemes=schemes)
                    record.events = _cache_events(priority_cache)
            with profiler.phase(name):
                result = figure5.run(config, data=priority_cache)
        elif name == "figure6":
            if priority_cache is None:
                with profiler.phase("priority_data") as record:
                    priority_cache = priority_data.collect(config)
                    record.events = _cache_events(priority_cache)
            with profiler.phase(name):
                result = figure6.run(config, data=priority_cache)
        elif name == "figure7":
            if dss_cache is None:
                with profiler.phase("dss_data") as record:
                    dss_cache = dss_data.collect(config)
                    record.events = _cache_events(dss_cache)
            with profiler.phase(name):
                result = figure7.run(config, data=dss_cache)
        elif name == "figure8":
            if dss_cache is None:
                with profiler.phase("dss_data") as record:
                    dss_cache = dss_data.collect(config)
                    record.events = _cache_events(dss_cache)
            with profiler.phase(name):
                result = figure8.run(config, data=dss_cache)
        else:
            with profiler.phase(name) as record:
                result = EXPERIMENTS[name](config)
                record.events = result.events_processed
        result.notes.append(f"Wall-clock time: {time.time() - started:.1f} s")
        results.append(result)
    # Violations and trace totals live in three places: the shared figure
    # caches (figures 5-8), and per-result counts (synthetic, figure2,
    # preemption_latency).
    cached_results = [
        workload_result
        for cache in (priority_cache, dss_cache)
        if cache is not None
        for workload_result in cache.results.values()
    ]
    violation_total = sum(len(r.violations) for r in cached_results)
    violation_total += sum(result.violation_count for result in results)
    traced_runs = sum(1 for r in cached_results if r.trace_summary is not None)
    traced_runs += sum(result.traced_run_count for result in results)
    trace_events = sum(
        r.trace_summary["events_total"]
        for r in cached_results
        if r.trace_summary is not None
    )
    trace_events += sum(result.trace_event_count for result in results)
    events_total = sum(r.events_processed for r in cached_results)
    events_total += sum(result.events_processed for result in results)
    return results, violation_total, (traced_runs, trace_events), events_total


def format_listing() -> str:
    """Human-readable listing of experiments and registered components."""
    lines = ["Experiments:"]
    for name, description in experiment_descriptions().items():
        lines.append(f"  {name:<10} {description}")
    for title, registry in (
        ("Scheduling policies", POLICIES),
        ("Preemption mechanisms", MECHANISMS),
        ("Preemption controllers", CONTROLLERS),
        ("Transfer scheduling policies", TRANSFER_POLICIES),
        ("Arrival processes", ARRIVALS),
        ("Cluster routers", ROUTERS),
        ("Trace sources", TRACE_SOURCES),
        ("Event queues", EVENT_QUEUES),
    ):
        lines.append("")
        lines.append(f"{title}:")
        for name, description in registry.describe().items():
            entry = registry.entry(name)
            aliases = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
            lines.append(f"  {name:<15} {description}{aliases}")
    return "\n".join(lines)


def _unknown_experiment_message(unknown: List[str]) -> str:
    message = f"unknown experiment(s): {', '.join(unknown)}"
    suggestions = []
    for name in unknown:
        suggestions.extend(difflib.get_close_matches(name, EXPERIMENTS, n=1, cutoff=0.4))
    if suggestions:
        message += f" (did you mean: {', '.join(dict.fromkeys(suggestions))}?)"
    return message


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        print(format_listing())
        return 0
    names = list(args.experiments)
    if args.all:
        names = list(EXPERIMENTS.keys())
    if not names:
        parser.print_help()
        return 2
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(_unknown_experiment_message(unknown))
    try:
        config = make_config(args)
    except ValueError as exc:
        parser.error(str(exc))

    from repro.obs import PhaseProfiler  # local: keeps import cheap

    profiler = PhaseProfiler()
    results, violation_total, (traced_runs, trace_events), events_total = run_selected(
        names, config, profiler=profiler
    )
    if args.json:
        text = json.dumps([result.to_dict() for result in results], indent=2)
    else:
        output_chunks = [result.format() for result in results]
        text = ("\n\n" + "=" * 78 + "\n\n").join(output_chunks)
    print(text)
    if args.output:
        # Text tables append one section per run; JSON must stay one document.
        mode = "w" if args.json else "a"
        with open(args.output, mode, encoding="utf-8") as handle:
            handle.write(text + "\n")
    if args.profile:
        # stderr only: stdout stays byte-identical so enabling --profile never
        # perturbs archived results.  First line keeps the legacy single-line
        # shape; per-phase lines follow.  Composes with --validate, --trace
        # and --metrics (each keeps its own line).
        print(profiler.format(total_events=events_total), file=sys.stderr)
    if args.metrics:
        # stderr only, same contract as --trace: stdout stays byte-identical.
        summary = f"metrics: {len(results)} experiment(s) instrumented"
        if config.metrics_dir and os.path.isdir(config.metrics_dir):
            summary += f" -> {config.metrics_dir}"
        print(summary, file=sys.stderr)
    if args.trace or traced_runs:
        # stderr only: stdout stays byte-identical so enabling --trace never
        # perturbs archived results.  One line, composing with --validate.
        summary = (
            f"trace: {trace_events} event(s) across {traced_runs} traced run(s)"
        )
        # Name the artifact directory only when something was exported there
        # (experiments that trace in-process, e.g. figure2, stay summary-only).
        if args.trace and os.path.isdir(args.trace_dir):
            summary += f" -> {args.trace_dir}"
        if args.validate:
            summary += f"; {violation_total} invariant violation(s)"
        print(summary, file=sys.stderr)
    if violation_total:
        # stderr + exit code only: stdout stays byte-identical so enabling
        # --validate never perturbs archived results.
        print(
            f"ERROR: {violation_total} invariant violation(s) detected; re-run "
            "the offending scenario with repro.validation for details",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
