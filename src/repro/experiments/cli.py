"""Command-line entry point: ``repro-experiments``.

Examples
--------
Run everything at the default reduced scale and print the tables::

    repro-experiments --all

Run a single experiment at smoke scale (fast)::

    repro-experiments --scale smoke figure5

Write the results to a file (appending one section per experiment)::

    repro-experiments --all --output results.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.experiments import dss_data, priority_data
from repro.experiments import figure2, figure5, figure6, figure7, figure8, table1, table2
from repro.experiments.base import ExperimentConfig, ExperimentResult

#: Experiment name -> runner.  Runners that share simulation data accept it
#: through keyword arguments; the CLI wires that up in :func:`run_selected`.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "figure2": figure2.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Enabling Preemptive "
        "Multiprogramming on GPUs' (ISCA 2014).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"experiments to run: {', '.join(EXPERIMENTS)} (use --all for everything)",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--scale",
        default="reduced",
        choices=["full", "reduced", "smoke"],
        help="workload scale preset (default: reduced)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        nargs="*",
        default=None,
        help="process counts to evaluate (default: 2 4 6 8)",
    )
    parser.add_argument(
        "--workloads", type=int, default=None, help="random workloads per process count"
    )
    parser.add_argument("--seed", type=int, default=2014, help="workload generation seed")
    parser.add_argument("--output", default=None, help="write results to this file as well")
    return parser


def make_config(args: argparse.Namespace) -> ExperimentConfig:
    """Translate parsed CLI arguments into an experiment configuration."""
    base = ExperimentConfig(scale=args.scale, seed=args.seed)
    updates = {}
    if args.processes:
        updates["process_counts"] = tuple(args.processes)
    if args.workloads:
        updates["workloads_per_count"] = args.workloads
    if updates:
        import dataclasses

        base = dataclasses.replace(base, **updates)
    return base


def run_selected(names: List[str], config: ExperimentConfig) -> List[ExperimentResult]:
    """Run the selected experiments, sharing simulation data where possible."""
    results: List[ExperimentResult] = []
    priority_cache = None
    dss_cache = None
    for name in names:
        started = time.time()
        if name == "figure5":
            if priority_cache is None:
                schemes = (
                    tuple(priority_data.PRIORITY_SCHEMES)
                    if "figure6" in names
                    else priority_data.FIGURE5_SCHEMES
                )
                priority_cache = priority_data.collect(config, schemes=schemes)
            result = figure5.run(config, data=priority_cache)
        elif name == "figure6":
            if priority_cache is None:
                priority_cache = priority_data.collect(config)
            result = figure6.run(config, data=priority_cache)
        elif name == "figure7":
            if dss_cache is None:
                dss_cache = dss_data.collect(config)
            result = figure7.run(config, data=dss_cache)
        elif name == "figure8":
            if dss_cache is None:
                dss_cache = dss_data.collect(config)
            result = figure8.run(config, data=dss_cache)
        else:
            result = EXPERIMENTS[name](config)
        result.notes.append(f"Wall-clock time: {time.time() - started:.1f} s")
        results.append(result)
    return results


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    names = list(args.experiments)
    if args.all:
        names = list(EXPERIMENTS.keys())
    if not names:
        parser.print_help()
        return 2
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    config = make_config(args)

    results = run_selected(names, config)
    output_chunks = [result.format() for result in results]
    text = ("\n\n" + "=" * 78 + "\n\n").join(output_chunks)
    print(text)
    if args.output:
        with open(args.output, "a", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
