"""Per-preemption mechanism choice: the paper's tradeoff as a controller comparison.

The paper frames context switching and SM draining as two points on a
latency-vs-overhead tradeoff (Sec. 3.2): the context switch bounds the
preemption latency but pays save/restore overhead; draining is overhead-free
but its latency tracks the remaining execution time of resident blocks.  It
then argues the hardware could pick between them dynamically, per preemption.
This experiment measures exactly that: the same workloads as
:mod:`repro.experiments.preemption_latency` (Parboil priority mixes and
synthetic fuzzer mixes under PPQ) are run under four preemption
*controllers*:

* ``static_cs`` / ``static_drain`` — the legacy fixed mechanisms (the two
  endpoints of the tradeoff),
* ``hybrid`` — deadline-bounded draining with a context-switch fallback,
* ``adaptive`` — cost-model selection minimizing estimated SM-idle time.

Per controller the report shows the preemption-latency distribution (count,
p50, p95, max — measured from the telemetry preemption spans, each tagged
with the mechanism the controller actually chose), the mechanism mix, and
the mean ANTT (the overhead side of the tradeoff).  The headline expectation
is that ``hybrid`` sits *between* the endpoints: p95 latency no worse than
draining's, ANTT no worse than the context switch's.

    repro-experiments mechanism_choice --scale smoke
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.base import ExperimentConfig, ExperimentResult, arithmetic_mean
from repro.experiments.preemption_latency import (
    merge_latency_samples,
    parboil_latency_scenarios,
    synthetic_latency_scenarios,
)
from repro.runner import RunRecord
from repro.scenario import SchemeSpec
from repro.telemetry.analytics import latency_stats

#: The controllers under comparison.  Policy and transfer policy are fixed
#: (PPQ / NPQ) so the only varying dimension is how each preemption request
#: is resolved into a mechanism.
CONTROLLER_SCHEMES: Dict[str, SchemeSpec] = {
    "static_cs": SchemeSpec(
        name="ppq_static_cs",
        policy="ppq",
        mechanism="context_switch",
        transfer_policy="npq",
    ),
    "static_drain": SchemeSpec(
        name="ppq_static_drain",
        policy="ppq",
        mechanism="draining",
        transfer_policy="npq",
    ),
    "hybrid": SchemeSpec(
        name="ppq_hybrid",
        policy="ppq",
        mechanism="context_switch",
        transfer_policy="npq",
        controller="hybrid",
        # Tighter than the 25 us library default: smoke/reduced-scale blocks
        # are short, and the deadline must actually bite for the experiment
        # to exercise both sides of the fallback.
        controller_options={"drain_budget_us": 10.0},
    ),
    "adaptive": SchemeSpec(
        name="ppq_adaptive",
        policy="ppq",
        mechanism="context_switch",
        transfer_policy="npq",
        controller="adaptive",
    ),
}


def _mechanism_mix(records: List[RunRecord]) -> Dict[str, int]:
    """Preemption counts per chosen mechanism, across all records."""
    mix: Dict[str, int] = {}
    for record in records:
        summary = record.trace_summary
        if not summary:
            continue
        for mechanism, samples in summary["preemption_latencies_us"].items():
            mix[mechanism] = mix.get(mechanism, 0) + len(samples)
    return mix


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Compare preemption controllers on latency and ANTT."""
    config = config if config is not None else ExperimentConfig()
    keyed = parboil_latency_scenarios(
        config, CONTROLLER_SCHEMES
    ) + synthetic_latency_scenarios(config, CONTROLLER_SCHEMES)
    records = config.make_batch_runner().run([spec for _, spec in keyed])

    grouped: Dict[str, List[RunRecord]] = {}
    for (controller_key, _), record in zip(keyed, records):
        grouped.setdefault(controller_key, []).append(record)

    result = ExperimentResult(
        name="Mechanism choice",
        description=(
            "preemption controllers (static endpoints vs hybrid/adaptive "
            "per-request selection): latency distribution and ANTT overhead"
        ),
        headers=[
            "Controller",
            "Mechanism mix",
            "Preemptions",
            "p50 (us)",
            "p95 (us)",
            "max (us)",
            "mean ANTT",
        ],
    )
    for controller_key in CONTROLLER_SCHEMES:
        controller_records = grouped.get(controller_key, [])
        if not controller_records:
            # An empty scenario grid (e.g. process_counts=()) produces an
            # empty report, matching preemption_latency's behaviour.
            continue
        samples = merge_latency_samples(controller_records)
        stats = latency_stats(samples)
        mix = _mechanism_mix(controller_records)
        mix_text = (
            " ".join(f"{name}:{count}" for name, count in sorted(mix.items()))
            or "-"
        )
        mean_antt = arithmetic_mean(
            [record.result.metrics.antt for record in controller_records]
        )
        result.rows.append(
            [
                controller_key,
                mix_text,
                stats["count"],
                round(stats["p50"], 2),
                round(stats["p95"], 2),
                round(stats["max"], 2),
                round(mean_antt, 4),
            ]
        )
        result.series[f"latencies/{controller_key}"] = sorted(samples)
        result.series[f"antt/{controller_key}"] = [
            record.result.metrics.antt for record in controller_records
        ]

    result.violation_count = sum(len(record.violations) for record in records)
    result.events_processed = sum(record.result.events_processed for record in records)
    result.traced_run_count = sum(
        1 for record in records if record.trace_summary is not None
    )
    result.trace_event_count = sum(
        record.trace_summary["events_total"]
        for record in records
        if record.trace_summary is not None
    )
    result.notes.append(
        f"Scale preset: {config.scale}; {len(records)} traced runs per the "
        f"preemption_latency workload sources (Parboil priority mixes + synthetic "
        f"fuzzer mixes on a narrowed GPU), seed {config.seed}."
    )
    result.notes.append(
        "Expected shape (paper Sec. 3.2): hybrid sits between the endpoints — "
        "p95 latency <= static draining's (deadline bound), mean ANTT <= static "
        "context switch's (drains when draining is cheap, so less state moved)."
    )
    return result


__all__ = ["CONTROLLER_SCHEMES", "run"]
