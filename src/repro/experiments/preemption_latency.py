"""Preemption-latency distributions per mechanism (the paper's headline metric).

The paper's central trade-off is *preemption latency*: the context switch
pays a predictable save/restore cost while SM draining waits for resident
thread blocks — unpredictable and unbounded for long blocks (Sec. 3.2,
Table 1).  This experiment measures that latency directly from the telemetry
subsystem (:mod:`repro.telemetry`): every run is traced, each preemption's
``preempt_request`` → ``preempt_complete`` interval is collected, and the
per-scheme distributions (count, p50, p95, max — a CDF in ``series``) are
reported across two workload sources:

* **parboil** — the paper's priority workloads (a high-priority process per
  workload) under PPQ with both mechanisms;
* **synthetic** — seed-derived fuzzer scenarios (:mod:`repro.workloads.synthetic`)
  re-run under the same two schemes, so the mechanisms face identical mixes.

Tracing observes, never perturbs; with ``--trace`` the per-scenario Chrome
trace artifacts are exported as well::

    repro-experiments preemption_latency --scale smoke --trace
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.priority_data import PRIORITY_SCHEMES
from repro.runner import RunRecord
from repro.scenario import ScenarioSpec, SchemeSpec
from repro.workloads.multiprogram import generate_priority_workloads
from repro.workloads.synthetic import generate_synthetic_scenarios
from repro.telemetry.analytics import latency_stats

#: The two preemptive schemes under comparison (policy fixed to PPQ so the
#: only varying dimension is the mechanism).
SCHEMES = ("ppq_cs", "ppq_drain")


def parboil_latency_scenarios(
    config: ExperimentConfig, schemes: Mapping[str, SchemeSpec]
) -> List[Tuple[str, ScenarioSpec]]:
    """(scheme key, spec) for the paper's priority workloads, traced.

    Shared by this experiment and :mod:`repro.experiments.mechanism_choice`
    (which compares preemption *controllers* over the same workloads).
    """
    benchmarks = list(config.benchmarks) if config.benchmarks else None
    out: List[Tuple[str, ScenarioSpec]] = []
    for process_count in config.process_counts:
        workloads = generate_priority_workloads(
            process_count,
            workloads_per_benchmark=config.workloads_per_benchmark,
            seed=config.seed,
            benchmarks=benchmarks,
        )
        for spec in workloads:
            for scheme_name, scheme in schemes.items():
                out.append(
                    (
                        scheme_name,
                        ScenarioSpec.for_workload(
                            spec,
                            scheme,
                            scale=config.scale,
                            validate=config.validate,
                            queue=config.queue,
                            trace=True,
                        ),
                    )
                )
    return out


def _parboil_scenarios(config: ExperimentConfig) -> List[Tuple[str, ScenarioSpec]]:
    """(scheme label, spec) for the paper's priority workloads, traced."""
    return parboil_latency_scenarios(
        config, {name: PRIORITY_SCHEMES[name] for name in SCHEMES}
    )


#: SM count for the synthetic latency source.  Fuzzer kernels carry small,
#: scale-reduced grids that cannot saturate the full 13-SM GK110, and a
#: scheduling policy only preempts a saturated GPU; two SMs keep every
#: seed-derived mix contended so preemption latencies actually occur.
SYNTHETIC_NUM_SMS = 2


def synthetic_latency_scenarios(
    config: ExperimentConfig, schemes: Mapping[str, SchemeSpec]
) -> List[Tuple[str, ScenarioSpec]]:
    """(scheme key, spec) for fuzzer mixes re-run under each scheme.

    Two adjustments make the fuzzer mixes a *latency* workload: the GPU is
    narrowed to :data:`SYNTHETIC_NUM_SMS` (small seed-derived grids cannot
    saturate 13 SMs, and an unsaturated GPU never preempts), and the last
    process to arrive is promoted to high priority (a priority inversion is
    what triggers preemption under PPQ).
    """
    base = generate_synthetic_scenarios(
        config.workloads_per_count,
        seed=config.seed,
        scale=config.scale,
        validate=config.validate,
        queue=config.queue,
        trace=True,
    )
    out: List[Tuple[str, ScenarioSpec]] = []
    for spec in base:
        spec = dataclasses.replace(
            spec,
            high_priority_index=spec.num_processes - 1,
            config_overrides={"gpu": {"num_sms": SYNTHETIC_NUM_SMS}},
        )
        for scheme_name, scheme in schemes.items():
            out.append((scheme_name, dataclasses.replace(spec, scheme=scheme)))
    return out


def _synthetic_scenarios(config: ExperimentConfig) -> List[Tuple[str, ScenarioSpec]]:
    """(scheme label, spec) for fuzzer mixes re-run under both schemes."""
    return synthetic_latency_scenarios(
        config, {name: PRIORITY_SCHEMES[name] for name in SCHEMES}
    )


def merge_latency_samples(records: List[RunRecord]) -> List[float]:
    """Concatenate every mechanism's latency samples across records.

    Shared with :mod:`repro.experiments.mechanism_choice` so both consumers
    of ``trace_summary["preemption_latencies_us"]`` stay in lockstep.
    """
    samples: List[float] = []
    for record in records:
        summary = record.trace_summary
        if not summary:
            continue
        for mechanism_samples in summary["preemption_latencies_us"].values():
            samples.extend(mechanism_samples)
    return samples


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Measure preemption-latency distributions for both mechanisms."""
    config = config if config is not None else ExperimentConfig()
    keyed = [
        ("parboil", scheme, spec) for scheme, spec in _parboil_scenarios(config)
    ] + [
        ("synthetic", scheme, spec) for scheme, spec in _synthetic_scenarios(config)
    ]
    records = config.make_batch_runner().run([spec for _, _, spec in keyed])

    grouped: Dict[Tuple[str, str], List[RunRecord]] = {}
    for (source, scheme, _), record in zip(keyed, records):
        grouped.setdefault((source, scheme), []).append(record)

    result = ExperimentResult(
        name="Preemption latency",
        description=(
            "per-mechanism preemption latency (reserve -> SM free), "
            "measured by the telemetry subsystem"
        ),
        headers=[
            "Workloads",
            "Scheme",
            "Mechanism",
            "Preemptions",
            "p50 (us)",
            "p95 (us)",
            "max (us)",
        ],
    )
    for (source, scheme_name) in sorted(grouped):
        scheme = PRIORITY_SCHEMES[scheme_name]
        samples = merge_latency_samples(grouped[(source, scheme_name)])
        stats = latency_stats(samples)
        result.rows.append(
            [
                source,
                scheme.label,
                scheme.mechanism,
                stats["count"],
                round(stats["p50"], 2),
                round(stats["p95"], 2),
                round(stats["max"], 2),
            ]
        )
        result.series[f"latencies/{source}/{scheme.label}"] = sorted(samples)

    result.violation_count = sum(len(record.violations) for record in records)
    result.events_processed = sum(record.result.events_processed for record in records)
    result.traced_run_count = sum(
        1 for record in records if record.trace_summary is not None
    )
    result.trace_event_count = sum(
        record.trace_summary["events_total"]
        for record in records
        if record.trace_summary is not None
    )
    result.notes.append(
        f"Scale preset: {config.scale}; {len(records)} traced runs "
        f"({len(grouped[('parboil', SCHEMES[0])])} Parboil priority workloads and "
        f"{len(grouped[('synthetic', SCHEMES[0])])} synthetic mixes per scheme, "
        f"seed {config.seed}).  Latency is preempt_request -> preempt_complete per SM; "
        f"synthetic mixes run on a {SYNTHETIC_NUM_SMS}-SM GPU with the last-arriving "
        "process promoted to high priority (see module docstring)."
    )
    result.notes.append(
        "Expected shape (paper Sec. 3.2): the context switch pays a bounded, "
        "save-size-dependent cost; draining's latency tracks the remaining "
        "execution time of resident blocks (larger spread, larger tail)."
    )
    return result
