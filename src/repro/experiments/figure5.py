"""Figure 5: turnaround-time improvement of the high-priority process.

For every priority workload the high-priority process's NTT under NPQ and
PPQ (both mechanisms) is compared against its NTT in the non-prioritized FCFS
execution of the same workload.  Improvements are averaged per Class-1 group
of the high-priority benchmark (LONG / MEDIUM / SHORT) and over all
workloads (AVERAGE), for 2/4/6/8-process workloads — the same grouping the
paper's Figure 5 uses.

Expected shape: PPQ >> NPQ >= 1; context switch above draining on average;
the SHORT group sees the largest improvements and the LONG group the
smallest; improvements grow with the number of processes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.base import ExperimentConfig, ExperimentResult, geometric_mean
from repro.experiments.priority_data import FIGURE5_SCHEMES, PriorityExperimentData, collect
from repro.workloads.parboil import CLASS1

GROUPS = ("LONG", "MEDIUM", "SHORT", "AVERAGE")
_IMPROVEMENT_SCHEMES = ("npq", "ppq_cs", "ppq_drain")


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    data: Optional[PriorityExperimentData] = None,
) -> ExperimentResult:
    """Regenerate Figure 5."""
    config = config if config is not None else ExperimentConfig()
    if data is None:
        data = collect(config, schemes=FIGURE5_SCHEMES)

    result = ExperimentResult(
        name="Figure 5",
        description=(
            "NTT improvement of the high-priority process over its non-prioritized "
            "(FCFS) execution"
        ),
        headers=["Group", "Processes", "NPQ", "PPQ context switch", "PPQ draining"],
    )

    improvements: Dict[str, Dict[int, Dict[str, List[float]]]] = {
        group: {count: {scheme: [] for scheme in _IMPROVEMENT_SCHEMES} for count in config.process_counts}
        for group in GROUPS
    }

    for process_count in config.process_counts:
        for spec in data.workloads[process_count]:
            baseline = data.result(process_count, spec.workload_id, "fcfs")
            baseline_ntt = baseline.high_priority_ntt()
            hp_app = spec.high_priority_application
            group = CLASS1.get(hp_app, "MEDIUM") if hp_app else "MEDIUM"
            for scheme in _IMPROVEMENT_SCHEMES:
                scheme_result = data.result(process_count, spec.workload_id, scheme)
                improvement = baseline_ntt / scheme_result.high_priority_ntt()
                improvements[group][process_count][scheme].append(improvement)
                improvements["AVERAGE"][process_count][scheme].append(improvement)

    for group in GROUPS:
        for process_count in config.process_counts:
            per_scheme = improvements[group][process_count]
            if not per_scheme["npq"]:
                continue
            result.rows.append(
                [
                    group,
                    process_count,
                    round(geometric_mean(per_scheme["npq"]), 2),
                    round(geometric_mean(per_scheme["ppq_cs"]), 2),
                    round(geometric_mean(per_scheme["ppq_drain"]), 2),
                ]
            )

    result.series["improvements"] = improvements
    result.notes.append(
        f"Scale preset: {config.scale}; {config.workloads_per_benchmark} workload(s) per "
        "high-priority benchmark per process count; improvements aggregated with the "
        "geometric mean (ratios)."
    )
    result.notes.append(
        "Paper reference (full scale): NPQ 1.1x-1.6x, PPQ with context switch 2x-15.6x, "
        "PPQ with draining 1.6x-6x on average, growing with the process count."
    )
    return result
