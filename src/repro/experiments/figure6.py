"""Figure 6: system-throughput cost of preemptive prioritization.

STP degradation of the preemptive priority-queue scheduler over the
non-preemptive one (NPQ), for the two PPQ variants:

* **Figure 6a — exclusive access**: while high-priority kernels are active,
  low-priority kernels are never scheduled onto free SMs.
* **Figure 6b — shared access**: free SMs are back-filled with low-priority
  kernels (the back-to-back behaviour of current GPUs), which the paper shows
  to be counter-productive under preemption.

Expected shape: degradation >= 1 everywhere; draining costs more than context
switch; the shared-access variant costs more than the exclusive one.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.base import ExperimentConfig, ExperimentResult, geometric_mean
from repro.experiments.priority_data import PriorityExperimentData, collect

_VARIANTS = {
    "exclusive (Fig. 6a)": ("ppq_cs", "ppq_drain"),
    "shared (Fig. 6b)": ("ppq_shared_cs", "ppq_shared_drain"),
}


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    data: Optional[PriorityExperimentData] = None,
) -> ExperimentResult:
    """Regenerate Figure 6 (both panels)."""
    config = config if config is not None else ExperimentConfig()
    if data is None:
        data = collect(config)

    result = ExperimentResult(
        name="Figure 6",
        description="STP degradation of PPQ over NPQ (exclusive and shared access)",
        headers=[
            "Access",
            "Processes",
            "PPQ context switch (x)",
            "PPQ draining (x)",
        ],
    )

    degradations: Dict[str, Dict[int, Dict[str, List[float]]]] = {}
    for variant, (cs_scheme, drain_scheme) in _VARIANTS.items():
        degradations[variant] = {}
        for process_count in config.process_counts:
            per_scheme: Dict[str, List[float]] = {cs_scheme: [], drain_scheme: []}
            for spec in data.workloads[process_count]:
                key = (process_count, spec.workload_id, "npq")
                if key not in data.results:
                    continue
                npq_stp = data.results[key].metrics.stp
                for scheme in (cs_scheme, drain_scheme):
                    scheme_key = (process_count, spec.workload_id, scheme)
                    if scheme_key not in data.results:
                        continue
                    per_scheme[scheme].append(npq_stp / data.results[scheme_key].metrics.stp)
            degradations[variant][process_count] = per_scheme
            if per_scheme[cs_scheme] and per_scheme[drain_scheme]:
                result.rows.append(
                    [
                        variant,
                        process_count,
                        round(geometric_mean(per_scheme[cs_scheme]), 3),
                        round(geometric_mean(per_scheme[drain_scheme]), 3),
                    ]
                )

    result.series["degradations"] = degradations
    result.notes.append(
        "Values above 1.0 mean PPQ achieves lower system throughput than NPQ. "
        "Paper reference (full scale): exclusive access 1.08x-1.12x (context switch) and "
        "1.09x-1.38x (draining); the shared-access variant is worse than exclusive."
    )
    return result
