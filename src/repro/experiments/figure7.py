"""Figure 7: effects of equal sharing (DSS) on NTT, fairness and throughput.

Three panels, all comparing the DSS policy (equal token budgets, both
preemption mechanisms) against the FCFS baseline on the same random
workloads:

* **7a** — per-application NTT improvement, grouped by the application's
  Class-2 label (SHORT / MEDIUM / LONG) plus the all-application AVERAGE.
* **7b** — system fairness improvement.
* **7c** — system throughput (STP) degradation.

Expected shape: SHORT applications improve the most and LONG applications
lose; the average NTT and fairness improve (context switch above draining);
STP degrades (draining worse than context switch); all trends grow with the
process count.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.base import ExperimentConfig, ExperimentResult, geometric_mean
from repro.experiments.dss_data import DSSExperimentData, collect
from repro.workloads.parboil import CLASS2

GROUPS = ("SHORT", "MEDIUM", "LONG", "AVERAGE")
_DSS_SCHEMES = ("dss_cs", "dss_drain")


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    data: Optional[DSSExperimentData] = None,
) -> ExperimentResult:
    """Regenerate Figure 7 (all three panels as one table)."""
    config = config if config is not None else ExperimentConfig()
    if data is None:
        data = collect(config)

    result = ExperimentResult(
        name="Figure 7",
        description="Equal sharing (DSS) vs FCFS: NTT improvement, fairness, throughput",
        headers=[
            "Panel",
            "Group",
            "Processes",
            "DSS context switch (x)",
            "DSS draining (x)",
        ],
    )

    # ------------------------------------------------------------------
    # Panel (a): per-application NTT improvement grouped by Class 2
    # ------------------------------------------------------------------
    ntt_improvements: Dict[str, Dict[int, Dict[str, List[float]]]] = {
        group: {count: {scheme: [] for scheme in _DSS_SCHEMES} for count in config.process_counts}
        for group in GROUPS
    }
    for process_count in config.process_counts:
        for spec in data.workloads[process_count]:
            fcfs = data.result(process_count, spec.workload_id, "fcfs")
            for scheme in _DSS_SCHEMES:
                dss = data.result(process_count, spec.workload_id, scheme)
                for process_name, app in fcfs.process_applications.items():
                    improvement = (
                        fcfs.metrics.ntt_of(process_name) / dss.metrics.ntt_of(process_name)
                    )
                    group = CLASS2.get(app, "MEDIUM")
                    ntt_improvements[group][process_count][scheme].append(improvement)
                    ntt_improvements["AVERAGE"][process_count][scheme].append(improvement)

    for group in GROUPS:
        for process_count in config.process_counts:
            per_scheme = ntt_improvements[group][process_count]
            if not per_scheme["dss_cs"]:
                continue
            result.rows.append(
                [
                    "7a NTT improvement",
                    group,
                    process_count,
                    round(geometric_mean(per_scheme["dss_cs"]), 2),
                    round(geometric_mean(per_scheme["dss_drain"]), 2),
                ]
            )

    # ------------------------------------------------------------------
    # Panels (b) and (c): fairness improvement and STP degradation
    # ------------------------------------------------------------------
    fairness_improvements: Dict[int, Dict[str, List[float]]] = {}
    stp_degradations: Dict[int, Dict[str, List[float]]] = {}
    for process_count in config.process_counts:
        fairness_improvements[process_count] = {scheme: [] for scheme in _DSS_SCHEMES}
        stp_degradations[process_count] = {scheme: [] for scheme in _DSS_SCHEMES}
        for spec in data.workloads[process_count]:
            fcfs = data.result(process_count, spec.workload_id, "fcfs")
            for scheme in _DSS_SCHEMES:
                dss = data.result(process_count, spec.workload_id, scheme)
                if fcfs.metrics.fairness > 0 and dss.metrics.fairness > 0:
                    fairness_improvements[process_count][scheme].append(
                        dss.metrics.fairness / fcfs.metrics.fairness
                    )
                stp_degradations[process_count][scheme].append(
                    fcfs.metrics.stp / dss.metrics.stp
                )

    for process_count in config.process_counts:
        per_scheme = fairness_improvements[process_count]
        if per_scheme["dss_cs"]:
            result.rows.append(
                [
                    "7b fairness improvement",
                    "ALL",
                    process_count,
                    round(geometric_mean(per_scheme["dss_cs"]), 2),
                    round(geometric_mean(per_scheme["dss_drain"]), 2),
                ]
            )
    for process_count in config.process_counts:
        per_scheme = stp_degradations[process_count]
        if per_scheme["dss_cs"]:
            result.rows.append(
                [
                    "7c STP degradation",
                    "ALL",
                    process_count,
                    round(geometric_mean(per_scheme["dss_cs"]), 2),
                    round(geometric_mean(per_scheme["dss_drain"]), 2),
                ]
            )

    result.series["ntt_improvements"] = ntt_improvements
    result.series["fairness_improvements"] = fairness_improvements
    result.series["stp_degradations"] = stp_degradations
    result.notes.append(
        f"Scale preset: {config.scale}; {config.workloads_per_count} random workload(s) per "
        "process count; ratios aggregated with the geometric mean."
    )
    result.notes.append(
        "Paper reference (full scale): average NTT improvement 1.5x-2x (CS) / 1.4x-1.65x "
        "(draining); fairness improvement up to 3.35x (CS) / 2.7x (draining); STP degradation "
        "1.06x-1.34x (CS) / 1.08x-1.5x (draining)."
    )
    return result
