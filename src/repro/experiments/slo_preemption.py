"""Preemption controllers under open load: p99 request latency vs throughput.

The paper's latency-vs-throughput story (Sec. 3.2/6) restated in serving
terms: under a bursty open-loop load, how does the choice of preemption
*controller* trade the high-priority tenant's tail request latency against
sustained throughput?  The same two-tenant scenario as
:mod:`repro.experiments.serving` (bursty high-priority MMPP stream over a
Poisson background, heavy load) is run under the four controller schemes of
:mod:`repro.experiments.mechanism_choice`:

* ``static_cs`` — always context-switch: bounded preemption latency, so the
  high-priority tail is tight, but save/restore overhead taxes throughput;
* ``static_drain`` — always drain: no state-movement overhead, but the
  high-priority p99 inherits the background kernels' residual run times;
* ``hybrid`` — deadline-bounded draining with context-switch fallback;
* ``adaptive`` — cost-model selection per preemption request.

Per controller the report shows the high-priority tenant's p50/p99 request
latency, overall p99, the sliding-window throughput, SLO violations and
drops.  The expected shape mirrors the paper: the static endpoints bracket
the dynamic controllers, which approach context-switch tails at
draining-like throughput.

    repro-experiments slo_preemption --scale smoke
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.mechanism_choice import CONTROLLER_SCHEMES
from repro.experiments.serving import serving_scenario
from repro.runner import RunRecord

#: Load level used for the comparison (heavy: queueing pressure makes the
#: preemption path matter).
LOAD = "heavy"

#: The GPU is narrowed to this many SMs so kernels actually contend — on the
#: default 13-SM chip the small scaled kernels never overlap on an SM and no
#: controller is ever consulted (same rationale as
#: :data:`repro.experiments.preemption_latency.SYNTHETIC_NUM_SMS`).
NUM_SMS = 2


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Compare the preemption controllers under bursty open load."""
    config = config if config is not None else ExperimentConfig()
    controllers = list(CONTROLLER_SCHEMES)
    scenarios = []
    for index, controller_key in enumerate(controllers):
        scheme = CONTROLLER_SCHEMES[controller_key]
        scenarios.append(
            serving_scenario(
                config,
                load=LOAD,
                scheme=scheme,
                workload_id=index,
                config_overrides={"gpu": {"num_sms": NUM_SMS}},
            )
        )
    records: List[RunRecord] = config.make_batch_runner().run(scenarios)

    result = ExperimentResult(
        name="SLO vs preemption",
        description=(
            "preemption controllers under bursty open load: high-priority "
            "tail latency vs sustained throughput"
        ),
        headers=[
            "Controller",
            "HP p50 (us)",
            "HP p99 (us)",
            "All p99 (us)",
            "Win req/s",
            "Throughput req/s",
            "SLO viol",
            "Dropped",
        ],
    )
    for controller_key, record in zip(controllers, records):
        summary = record.result.serving_summary
        tenants = summary["tenants"]
        # Tenant 0 (slot #0) is the high-priority bursty stream.
        hp_name = next(name for name in tenants if name.endswith("#0"))
        hp_latency = tenants[hp_name]["latency_us"]
        result.rows.append(
            [
                controller_key,
                round(hp_latency["p50"], 2),
                round(hp_latency["p99"], 2),
                round(summary["latency_us"]["p99"], 2),
                round(summary["window"]["throughput_rps"], 1),
                round(summary["throughput_rps"], 1),
                summary["slo_violations_total"],
                summary["queue"]["dropped"],
            ]
        )
        result.series[f"summary/{controller_key}"] = summary

    result.violation_count = sum(len(record.violations) for record in records)
    result.events_processed = sum(record.result.events_processed for record in records)
    result.traced_run_count = sum(
        1 for record in records if record.trace_summary is not None
    )
    result.trace_event_count = sum(
        record.trace_summary["events_total"]
        for record in records
        if record.trace_summary is not None
    )
    result.notes.append(
        f"Scale preset: {config.scale}; heavy-load two-tenant open-loop "
        f"scenario (see the serving experiment) on a {NUM_SMS}-SM GPU, "
        f"seed {config.seed}."
    )
    result.notes.append(
        "Expected shape (paper Sec. 3.2): static context switch minimizes the "
        "high-priority p99, static draining maximizes throughput; hybrid and "
        "adaptive sit between the endpoints on both axes."
    )
    return result


__all__ = ["LOAD", "run"]
