"""Table 1: statistics of all kernels from the benchmark applications.

The published columns that are *inputs* to our model (launch count, kernel
time, thread-block count, per-block time, per-block shared memory and
registers, measured blocks per SM) are reported verbatim; the two *derived*
columns — the fraction of on-chip storage used by a fully occupied SM and the
projected context-save time — are recomputed with
:class:`repro.gpu.resources.OccupancyCalculator` and printed next to the
published values, which validates the resource/occupancy model.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.gpu.config import GPUConfig
from repro.gpu.resources import OccupancyCalculator
from repro.workloads.parboil import CLASS1, CLASS2, TABLE1_RECORDS


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Regenerate Table 1 (model-derived columns next to published ones)."""
    del config  # Table 1 does not depend on the workload scale.
    gpu = GPUConfig()
    calculator = OccupancyCalculator(gpu)
    result = ExperimentResult(
        name="Table 1",
        description="Statistics of all kernels from the benchmark applications",
        headers=[
            "Benchmark",
            "Kernel",
            "Launches",
            "Kernel time (us)",
            "TBs",
            "Time/TB (us)",
            "ShMem/TB (B)",
            "Regs/TB",
            "TBs/SM",
            "Resour./SM % (model)",
            "Resour./SM % (paper)",
            "Save time us (model)",
            "Save time us (paper)",
            "Class 1",
            "Class 2",
        ],
    )
    for record in TABLE1_RECORDS:
        spec = record.to_kernel_spec()
        occupancy = calculator.blocks_per_sm(spec.usage, max_blocks_hint=spec.max_blocks_per_sm)
        result.rows.append(
            [
                record.benchmark,
                record.kernel,
                record.launches,
                record.kernel_time_us,
                record.num_thread_blocks,
                record.tb_time_us,
                record.shared_mem_per_tb,
                record.regs_per_tb,
                occupancy.blocks_per_sm,
                round(100.0 * occupancy.storage_fraction, 2),
                record.resource_pct,
                round(occupancy.context_save_time_us, 2),
                record.save_time_us,
                CLASS1[record.benchmark],
                CLASS2[record.benchmark],
            ]
        )
    result.notes.append(
        "Model columns are derived from the GK110 occupancy rules and the per-SM "
        "share of memory bandwidth (208 GB/s / 13 SMs); paper columns are Table 1 as published."
    )
    result.series["max_abs_resource_error_pct"] = max(
        abs(float(row[9]) - float(row[10])) for row in result.rows
    )
    result.series["max_abs_save_time_error_us"] = max(
        abs(float(row[11]) - float(row[12])) for row in result.rows
    )
    return result
