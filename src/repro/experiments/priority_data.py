"""Shared simulation data for the priority experiments (Figures 5 and 6).

Figures 5 and 6 evaluate the same set of priority workloads (one
high-priority process per workload, every benchmark taking the high-priority
role the same number of times) under several schedulers:

* ``fcfs`` — the non-prioritized baseline (current GPUs),
* ``npq`` — non-preemptive priority queues,
* ``ppq_cs`` / ``ppq_drain`` — preemptive priority queues with exclusive
  access, using the context-switch / draining mechanism,
* ``ppq_shared_cs`` / ``ppq_shared_drain`` — the shared-access variant
  (Figure 6b).

Running them is the expensive part, so both figures share one
:class:`PriorityExperimentData` instance.  Simulation runs through
:class:`repro.runner.BatchRunner`, so ``ExperimentConfig(jobs=N)`` fans the
grid out over ``N`` worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.base import ExperimentConfig
from repro.runner import BatchRunner
from repro.scenario import ScenarioSpec, SchemeSpec
from repro.workloads.multiprogram import (
    WorkloadResult,
    WorkloadRunner,
    WorkloadSpec,
    generate_priority_workloads,
)

#: Scheme name -> declarative scheme spec.
PRIORITY_SCHEMES: Dict[str, SchemeSpec] = {
    "fcfs": SchemeSpec(
        name="fcfs", policy="fcfs", mechanism="context_switch", transfer_policy="fcfs"
    ),
    "npq": SchemeSpec(
        name="npq", policy="npq", mechanism="context_switch", transfer_policy="npq"
    ),
    "ppq_cs": SchemeSpec(
        name="ppq_cs", policy="ppq", mechanism="context_switch", transfer_policy="npq"
    ),
    "ppq_drain": SchemeSpec(
        name="ppq_drain", policy="ppq", mechanism="draining", transfer_policy="npq"
    ),
    "ppq_shared_cs": SchemeSpec(
        name="ppq_shared_cs",
        policy="ppq_shared",
        mechanism="context_switch",
        transfer_policy="npq",
    ),
    "ppq_shared_drain": SchemeSpec(
        name="ppq_shared_drain",
        policy="ppq_shared",
        mechanism="draining",
        transfer_policy="npq",
    ),
}

#: Schemes needed by Figure 5 only (Figure 6 adds the shared-access ones).
FIGURE5_SCHEMES = ("fcfs", "npq", "ppq_cs", "ppq_drain")


def resolve_schemes(
    schemes: Sequence[Union[str, SchemeSpec]], catalog: Dict[str, SchemeSpec]
) -> List[SchemeSpec]:
    """Resolve scheme names (from ``catalog``) and inline specs to specs.

    Labels must be unique — results are keyed by them, so a collision would
    silently overwrite simulated data.
    """
    resolved = []
    for scheme in schemes:
        if isinstance(scheme, SchemeSpec):
            resolved.append(scheme)
        else:
            resolved.append(catalog[scheme])
    labels = [scheme.label for scheme in resolved]
    duplicates = {label for label in labels if labels.count(label) > 1}
    if duplicates:
        raise ValueError(
            f"duplicate scheme labels: {sorted(duplicates)}; give each SchemeSpec "
            "a distinct name"
        )
    return resolved


@dataclass
class PriorityExperimentData:
    """All priority-workload simulation results, keyed for reuse."""

    config: ExperimentConfig
    workloads: Dict[int, List[WorkloadSpec]] = field(default_factory=dict)
    #: (process_count, workload_id, scheme) -> result
    results: Dict[Tuple[int, int, str], WorkloadResult] = field(default_factory=dict)

    def result(self, process_count: int, workload_id: int, scheme: str) -> WorkloadResult:
        """Look up one simulated result."""
        return self.results[(process_count, workload_id, scheme)]

    def workload_ids(self, process_count: int) -> List[int]:
        """Workload ids evaluated at one process count."""
        return [spec.workload_id for spec in self.workloads[process_count]]


def collect(
    config: Optional[ExperimentConfig] = None,
    *,
    schemes: Sequence[Union[str, SchemeSpec]] = tuple(PRIORITY_SCHEMES),
    runner: Optional[WorkloadRunner] = None,
    batch_runner: Optional[BatchRunner] = None,
) -> PriorityExperimentData:
    """Simulate every priority workload under the requested schemes.

    The (process count × workload × scheme) grid is expanded into declarative
    :class:`ScenarioSpec` values and executed by a
    :class:`~repro.runner.BatchRunner` (``config.jobs`` workers).  Passing an
    explicit ``runner`` runs the scenarios serially through it instead
    (kept for tests that stub the runner).
    """
    config = config if config is not None else ExperimentConfig()
    scheme_specs = resolve_schemes(schemes, PRIORITY_SCHEMES)
    data = PriorityExperimentData(config=config)
    benchmarks = list(config.benchmarks) if config.benchmarks else None

    keys: List[Tuple[int, int, str]] = []
    scenarios: List[ScenarioSpec] = []
    for process_count in config.process_counts:
        specs = generate_priority_workloads(
            process_count,
            workloads_per_benchmark=config.workloads_per_benchmark,
            seed=config.seed,
            benchmarks=benchmarks,
        )
        data.workloads[process_count] = specs
        for spec in specs:
            for scheme in scheme_specs:
                keys.append((process_count, spec.workload_id, scheme.label))
                scenarios.append(
                    ScenarioSpec.for_workload(
                        spec,
                        scheme,
                        scale=config.scale,
                        validate=config.validate,
                        queue=config.queue,
                        trace=config.trace,
                        metrics=config.metrics_spec(),
                    )
                )

    if runner is not None:
        results = [runner.run_scenario(scenario) for scenario in scenarios]
    else:
        batch_runner = batch_runner if batch_runner is not None else config.make_batch_runner()
        results = [record.result for record in batch_runner.run(scenarios)]

    data.results = dict(zip(keys, results))
    return data
