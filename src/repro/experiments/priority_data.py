"""Shared simulation data for the priority experiments (Figures 5 and 6).

Figures 5 and 6 evaluate the same set of priority workloads (one
high-priority process per workload, every benchmark taking the high-priority
role the same number of times) under several schedulers:

* ``fcfs`` — the non-prioritized baseline (current GPUs),
* ``npq`` — non-preemptive priority queues,
* ``ppq_cs`` / ``ppq_drain`` — preemptive priority queues with exclusive
  access, using the context-switch / draining mechanism,
* ``ppq_shared_cs`` / ``ppq_shared_drain`` — the shared-access variant
  (Figure 6b).

Running them is the expensive part, so both figures share one
:class:`PriorityExperimentData` instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.base import ExperimentConfig
from repro.memory.transfer_engine import TransferSchedulingPolicy
from repro.workloads.multiprogram import (
    WorkloadResult,
    WorkloadRunner,
    WorkloadSpec,
    generate_priority_workloads,
)

#: Scheme name -> (policy name, mechanism name, transfer policy).
PRIORITY_SCHEMES: Dict[str, Tuple[str, str, TransferSchedulingPolicy]] = {
    "fcfs": ("fcfs", "context_switch", TransferSchedulingPolicy.FCFS),
    "npq": ("npq", "context_switch", TransferSchedulingPolicy.PRIORITY),
    "ppq_cs": ("ppq", "context_switch", TransferSchedulingPolicy.PRIORITY),
    "ppq_drain": ("ppq", "draining", TransferSchedulingPolicy.PRIORITY),
    "ppq_shared_cs": ("ppq_shared", "context_switch", TransferSchedulingPolicy.PRIORITY),
    "ppq_shared_drain": ("ppq_shared", "draining", TransferSchedulingPolicy.PRIORITY),
}

#: Schemes needed by Figure 5 only (Figure 6 adds the shared-access ones).
FIGURE5_SCHEMES = ("fcfs", "npq", "ppq_cs", "ppq_drain")


@dataclass
class PriorityExperimentData:
    """All priority-workload simulation results, keyed for reuse."""

    config: ExperimentConfig
    workloads: Dict[int, List[WorkloadSpec]] = field(default_factory=dict)
    #: (process_count, workload_id, scheme) -> result
    results: Dict[Tuple[int, int, str], WorkloadResult] = field(default_factory=dict)

    def result(self, process_count: int, workload_id: int, scheme: str) -> WorkloadResult:
        """Look up one simulated result."""
        return self.results[(process_count, workload_id, scheme)]

    def workload_ids(self, process_count: int) -> List[int]:
        """Workload ids evaluated at one process count."""
        return [spec.workload_id for spec in self.workloads[process_count]]


def collect(
    config: Optional[ExperimentConfig] = None,
    *,
    schemes: Tuple[str, ...] = tuple(PRIORITY_SCHEMES),
    runner: Optional[WorkloadRunner] = None,
) -> PriorityExperimentData:
    """Simulate every priority workload under the requested schemes."""
    config = config if config is not None else ExperimentConfig()
    runner = runner if runner is not None else config.make_runner()
    data = PriorityExperimentData(config=config)
    benchmarks = list(config.benchmarks) if config.benchmarks else None

    for process_count in config.process_counts:
        specs = generate_priority_workloads(
            process_count,
            workloads_per_benchmark=config.workloads_per_benchmark,
            seed=config.seed,
            benchmarks=benchmarks,
        )
        data.workloads[process_count] = specs
        for spec in specs:
            for scheme in schemes:
                policy, mechanism, transfer_policy = PRIORITY_SCHEMES[scheme]
                result = runner.run(
                    spec,
                    policy=policy,
                    mechanism=mechanism,
                    transfer_policy=transfer_policy,
                )
                data.results[(process_count, spec.workload_id, scheme)] = result
    return data
