"""Scale-out sweep: the ``large_gpu`` scenario family across SM counts.

Runs one :mod:`repro.workloads.large_gpu` scenario per SM count (8, 32 and
128 by default) and reports, per configuration, the simulated span, the
thread blocks executed, the heap events the slotted engine actually
processed (wave batching collapses same-instant completions into shared
events), the wall-clock time and the block-equivalent simulation throughput
(one event per thread-block completion regardless of wave aggregation, so
the number is comparable across engine versions)::

    repro-experiments scale --scale smoke

Composes with ``--validate`` / ``--trace`` like every other experiment; the
wall-clock columns are machine-dependent by nature (everything else is
deterministic).  ``benchmarks/bench_scale.py`` wraps the same family for the
repository's tracked performance trajectory.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.runner import RunRecord, execute_scenario, runner_for
from repro.workloads.large_gpu import LARGE_GPU_SM_COUNTS, generate_large_gpu_scenario


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the scaling sweep and report per-SM-count throughput."""
    config = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        name="Scale",
        description="large_gpu scaling sweep (wave-batched simulation core)",
        headers=[
            "SMs",
            "Processes",
            "Blocks",
            "Heap events",
            "Simulated (us)",
            "Wall (s)",
            "Events/s (block-eq)",
        ],
    )
    records: List[RunRecord] = []
    for num_sms in LARGE_GPU_SM_COUNTS:
        scenario = generate_large_gpu_scenario(
            num_sms,
            scale=config.scale,
            validate=config.validate,
            queue=config.queue,
            trace=config.trace,
            metrics=config.metrics_spec(),
        )
        # Warm the isolated baselines (the denominators of the multiprogram
        # metrics) outside the timed region: the wall-clock column measures
        # the multiprogrammed simulation, not one-off baseline caching.
        runner = runner_for(scenario)
        for app in dict.fromkeys(scenario.applications):
            runner.baseline.time_us(app)
        started = time.perf_counter()
        # One scenario at a time: the wall-clock column is the point of this
        # experiment, so runs are never overlapped even with --jobs.
        record = execute_scenario(scenario)
        wall = time.perf_counter() - started
        records.append(record)

        stats = record.result.engine_stats
        blocks = int(stats.get("blocks_executed", 0))
        events = record.result.events_processed
        block_equivalent = block_equivalent_events(events, stats)
        rate = block_equivalent / wall if wall > 0 else 0.0
        result.rows.append(
            [
                num_sms,
                record.scenario.num_processes,
                blocks,
                events,
                round(record.result.simulated_time_us, 1),
                round(wall, 3),
                round(rate),
            ]
        )

    result.events_processed = sum(r.result.events_processed for r in records)
    result.violation_count = sum(len(r.violations) for r in records)
    result.traced_run_count = sum(1 for r in records if r.trace_summary is not None)
    result.trace_event_count = sum(
        r.trace_summary["events_total"] for r in records if r.trace_summary is not None
    )
    result.series["records"] = [record.to_dict() for record in records]
    result.notes.append(
        f"Scale preset: {config.scale}; SM counts {list(LARGE_GPU_SM_COUNTS)}; "
        "workloads grow proportionally with the SM count (see "
        "repro.workloads.large_gpu).  Wall-clock and events/s columns are "
        "machine-dependent; every other column is deterministic."
    )
    result.notes.append(
        "Events/s counts one event per thread-block completion regardless of "
        "wave aggregation, so it is comparable across engine versions."
    )
    return result


def block_equivalent_events(events_processed: int, engine_stats) -> int:
    """Events of a run counted at one event per thread-block completion.

    Wave batching makes several blocks share one heap event, so the raw
    ``events_processed`` of two engine versions are not comparable.  This
    replaces the fired block-carrying events (``block_completion_events``)
    with the block completions they represent (``blocks_executed``) —
    exactly the event count a per-block engine would have processed.  The
    single definition of the benchmark metric: the scale experiment,
    ``benchmarks/bench_scale.py`` and the equivalence tests all call it.
    """
    return int(
        events_processed
        - engine_stats.get("block_completion_events", 0)
        + engine_stats.get("blocks_executed", 0)
    )


__all__ = ["run", "block_equivalent_events"]
