"""Shared infrastructure for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpu.config import SystemConfig
from repro.utils.tables import format_table
from repro.workloads.multiprogram import WorkloadRunner
from repro.workloads.scale import WorkloadScale


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration shared by every experiment.

    The defaults run the *reduced* scale (see
    :class:`~repro.workloads.scale.WorkloadScale`); tests and pytest
    benchmarks use :meth:`smoke` so a single experiment completes in seconds.
    """

    #: Workload scale preset name ("full", "reduced" or "smoke").
    scale: str = "reduced"
    #: Multiprogramming degrees to evaluate (paper: 2, 4, 6, 8).
    process_counts: Tuple[int, ...] = (2, 4, 6, 8)
    #: Priority workloads per benchmark and process count (Figures 5/6).
    workloads_per_benchmark: int = 1
    #: Random workloads per process count (Figures 7/8).
    workloads_per_count: int = 10
    #: Seed of the random workload generator.
    seed: int = 2014
    #: Optional subset of benchmarks (None = all ten).
    benchmarks: Optional[Tuple[str, ...]] = None
    #: Parallel simulation worker processes (1 = serial, 0 = all CPUs).
    jobs: int = 1
    #: Attach the runtime invariant-validation layer to every simulated run.
    #: Checkers observe, never perturb: results stay byte-identical.
    validate: bool = False
    #: Attach the telemetry subsystem to every simulated run.  Collectors
    #: observe, never perturb: printed results stay byte-identical; trace
    #: summaries ride on the run records and artifacts go to ``trace_dir``.
    trace: bool = False
    #: Directory for per-scenario Chrome trace artifacts (``None`` keeps
    #: traced runs summary-only).  Only used when ``trace`` is enabled.
    trace_dir: Optional[str] = None
    #: Attach the metrics hub to every simulated run.  Like validation and
    #: telemetry, metrics observe, never perturb: results stay byte-identical.
    metrics: bool = False
    #: Sim-time snapshot interval in microseconds (``None`` = hub default).
    #: Only used when ``metrics`` is enabled.
    metrics_interval_us: Optional[float] = None
    #: Directory for per-scenario metrics JSONL series (``None`` keeps
    #: metric runs in-memory only).  Only used when ``metrics`` is enabled.
    metrics_dir: Optional[str] = None
    #: Engine event-queue implementation for every simulated run (``None`` =
    #: the engine default; see :data:`repro.registry.EVENT_QUEUES`).  Every
    #: registered queue produces byte-identical results — the CLI's
    #: ``--queue`` flag exists to force the heap oracle or benchmark a
    #: specific implementation.
    queue: Optional[str] = None

    def workload_scale(self) -> WorkloadScale:
        """The resolved workload scale preset."""
        return WorkloadScale.by_name(self.scale)

    def make_runner(self, config: Optional[SystemConfig] = None) -> WorkloadRunner:
        """Create a workload runner at this experiment's scale."""
        return WorkloadRunner(scale=self.workload_scale(), config=config)

    def make_batch_runner(self) -> "BatchRunner":
        """Create a batch runner honouring ``jobs`` (and artifact dirs)."""
        from repro.runner import BatchRunner  # local: keeps import cheap

        return BatchRunner(
            jobs=self.jobs,
            trace_dir=self.trace_dir if self.trace else None,
            metrics_dir=self.metrics_dir if self.metrics else None,
        )

    def metrics_spec(self) -> Optional[dict]:
        """The ``ScenarioSpec.metrics`` mapping for this configuration.

        ``None`` when metrics are disabled, so scenario construction can pass
        the result straight through: ``metrics=config.metrics_spec()``.
        """
        if not self.metrics:
            return None
        spec: dict = {}
        if self.metrics_interval_us is not None:
            spec["interval_us"] = self.metrics_interval_us
        return spec

    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """A configuration small enough for unit tests and CI benchmarks."""
        return cls(
            scale="smoke",
            process_counts=(2, 4),
            workloads_per_benchmark=1,
            workloads_per_count=3,
            benchmarks=("lbm", "spmv", "sgemm", "histo", "tpacf", "sad"),
        )

    @classmethod
    def reduced(cls) -> "ExperimentConfig":
        """The default reduced-scale configuration."""
        return cls()

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """The paper-scale configuration (hours of simulation in Python)."""
        return cls(scale="full", workloads_per_benchmark=2, workloads_per_count=15)


@dataclass
class ExperimentResult:
    """Structured result of one experiment."""

    name: str
    description: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    #: Free-form notes (deviations, scale used, ...), printed under the table.
    notes: List[str] = field(default_factory=list)
    #: Machine-readable extras (per-series data for plotting or assertions).
    series: Dict[str, object] = field(default_factory=dict)
    #: Invariant violations detected across the experiment's simulated runs
    #: (only populated when the experiment ran with ``config.validate``; the
    #: CLI turns a non-zero total into a non-zero exit code).  Deliberately
    #: kept out of :meth:`format`/:meth:`to_dict` so enabling validation
    #: never changes the rendered output.
    violation_count: int = 0
    #: Telemetry totals across the experiment's simulated runs (populated
    #: when the experiment ran with ``config.trace``; the CLI reports them on
    #: stderr).  Like ``violation_count``, kept out of
    #: :meth:`format`/:meth:`to_dict` so enabling tracing never changes the
    #: rendered output.
    traced_run_count: int = 0
    trace_event_count: int = 0
    #: Simulator events processed across the experiment's own scenario runs
    #: (populated by record-based experiments; the CLI's ``--profile`` flag
    #: aggregates it together with the shared figure caches).  Kept out of
    #: :meth:`format`/:meth:`to_dict` like the other instrumentation totals.
    events_processed: int = 0

    def format(self) -> str:
        """Render the result as an aligned plain-text table."""
        table = format_table(self.headers, self.rows, title=f"{self.name}: {self.description}")
        if self.notes:
            notes = "\n".join(f"  - {note}" for note in self.notes)
            return f"{table}\n\nNotes:\n{notes}"
        return table

    def row_dicts(self) -> List[Dict[str, object]]:
        """Rows as dictionaries keyed by header (for tests)."""
        return [dict(zip(self.headers, row)) for row in self.rows]

    def to_dict(self, *, include_series: bool = False) -> Dict[str, object]:
        """JSON-serialisable form (used by the CLI's ``--json`` output)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "description": self.description,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }
        if include_series:
            payload["series"] = _jsonable(self.series)
        return payload


def _jsonable(value):
    """Best-effort conversion of experiment series data to JSON-safe values."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for ratio aggregation)."""
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Arithmetic mean (kept here so experiments read uniformly)."""
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)
