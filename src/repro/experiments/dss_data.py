"""Shared simulation data for the equal-sharing DSS experiments (Figures 7/8).

The paper evaluates the Dynamic Spatial Sharing policy with equal token
budgets on random workloads of 2/4/6/8 processes, against the FCFS baseline,
with both preemption mechanisms.  The data-transfer engine uses FCFS in all
cases (Sec. 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.base import ExperimentConfig
from repro.memory.transfer_engine import TransferSchedulingPolicy
from repro.workloads.multiprogram import (
    WorkloadResult,
    WorkloadRunner,
    WorkloadSpec,
    generate_random_workloads,
)

#: Scheme name -> (policy name, mechanism name).
DSS_SCHEMES: Dict[str, Tuple[str, str]] = {
    "fcfs": ("fcfs", "context_switch"),
    "dss_cs": ("dss", "context_switch"),
    "dss_drain": ("dss", "draining"),
}


@dataclass
class DSSExperimentData:
    """All equal-sharing simulation results, keyed for reuse."""

    config: ExperimentConfig
    workloads: Dict[int, List[WorkloadSpec]] = field(default_factory=dict)
    #: (process_count, workload_id, scheme) -> result
    results: Dict[Tuple[int, int, str], WorkloadResult] = field(default_factory=dict)

    def result(self, process_count: int, workload_id: int, scheme: str) -> WorkloadResult:
        """Look up one simulated result."""
        return self.results[(process_count, workload_id, scheme)]


def collect(
    config: Optional[ExperimentConfig] = None,
    *,
    runner: Optional[WorkloadRunner] = None,
    schemes: Tuple[str, ...] = tuple(DSS_SCHEMES),
) -> DSSExperimentData:
    """Simulate every random workload under FCFS and DSS (both mechanisms)."""
    config = config if config is not None else ExperimentConfig()
    runner = runner if runner is not None else config.make_runner()
    benchmarks = list(config.benchmarks) if config.benchmarks else None
    data = DSSExperimentData(config=config)

    for process_count in config.process_counts:
        specs = generate_random_workloads(
            process_count,
            config.workloads_per_count,
            seed=config.seed,
            benchmarks=benchmarks,
        )
        data.workloads[process_count] = specs
        for spec in specs:
            for scheme in schemes:
                policy, mechanism = DSS_SCHEMES[scheme]
                result = runner.run(
                    spec,
                    policy=policy,
                    mechanism=mechanism,
                    transfer_policy=TransferSchedulingPolicy.FCFS,
                )
                data.results[(process_count, spec.workload_id, scheme)] = result
    return data
