"""Shared simulation data for the equal-sharing DSS experiments (Figures 7/8).

The paper evaluates the Dynamic Spatial Sharing policy with equal token
budgets on random workloads of 2/4/6/8 processes, against the FCFS baseline,
with both preemption mechanisms.  The data-transfer engine uses FCFS in all
cases (Sec. 4.4).  Simulation runs through
:class:`repro.runner.BatchRunner`, so ``ExperimentConfig(jobs=N)`` fans the
grid out over ``N`` worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.base import ExperimentConfig
from repro.experiments.priority_data import resolve_schemes
from repro.runner import BatchRunner
from repro.scenario import ScenarioSpec, SchemeSpec
from repro.workloads.multiprogram import (
    WorkloadResult,
    WorkloadRunner,
    WorkloadSpec,
    generate_random_workloads,
)

#: Scheme name -> declarative scheme spec.
DSS_SCHEMES: Dict[str, SchemeSpec] = {
    "fcfs": SchemeSpec(
        name="fcfs", policy="fcfs", mechanism="context_switch", transfer_policy="fcfs"
    ),
    "dss_cs": SchemeSpec(
        name="dss_cs", policy="dss", mechanism="context_switch", transfer_policy="fcfs"
    ),
    "dss_drain": SchemeSpec(
        name="dss_drain", policy="dss", mechanism="draining", transfer_policy="fcfs"
    ),
}


@dataclass
class DSSExperimentData:
    """All equal-sharing simulation results, keyed for reuse."""

    config: ExperimentConfig
    workloads: Dict[int, List[WorkloadSpec]] = field(default_factory=dict)
    #: (process_count, workload_id, scheme) -> result
    results: Dict[Tuple[int, int, str], WorkloadResult] = field(default_factory=dict)

    def result(self, process_count: int, workload_id: int, scheme: str) -> WorkloadResult:
        """Look up one simulated result."""
        return self.results[(process_count, workload_id, scheme)]


def collect(
    config: Optional[ExperimentConfig] = None,
    *,
    runner: Optional[WorkloadRunner] = None,
    schemes: Sequence[Union[str, SchemeSpec]] = tuple(DSS_SCHEMES),
    batch_runner: Optional[BatchRunner] = None,
) -> DSSExperimentData:
    """Simulate every random workload under FCFS and DSS (both mechanisms)."""
    config = config if config is not None else ExperimentConfig()
    scheme_specs = resolve_schemes(schemes, DSS_SCHEMES)
    benchmarks = list(config.benchmarks) if config.benchmarks else None
    data = DSSExperimentData(config=config)

    keys: List[Tuple[int, int, str]] = []
    scenarios: List[ScenarioSpec] = []
    for process_count in config.process_counts:
        specs = generate_random_workloads(
            process_count,
            config.workloads_per_count,
            seed=config.seed,
            benchmarks=benchmarks,
        )
        data.workloads[process_count] = specs
        for spec in specs:
            for scheme in scheme_specs:
                keys.append((process_count, spec.workload_id, scheme.label))
                scenarios.append(
                    ScenarioSpec.for_workload(
                        spec,
                        scheme,
                        scale=config.scale,
                        validate=config.validate,
                        queue=config.queue,
                        trace=config.trace,
                        metrics=config.metrics_spec(),
                    )
                )

    if runner is not None:
        results = [runner.run_scenario(scenario) for scenario in scenarios]
    else:
        batch_runner = batch_runner if batch_runner is not None else config.make_batch_runner()
        results = [record.result for record in batch_runner.run(scenarios)]

    data.results = dict(zip(keys, results))
    return data
