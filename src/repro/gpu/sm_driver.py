"""The SM driver (paper Fig. 3).

The SM driver performs the operational work of the execution engine: it sets
up SMs for kernels (loading context and kernel status registers), issues
thread blocks until SMs are fully occupied, reacts to thread-block
completions, and — with the paper's extensions — cooperates with the
preemption mechanism when the scheduling policy reserves an SM.

The driver deliberately contains **no scheduling decisions**: which kernel an
SM should run, and when an SM must be taken away from a kernel, is decided by
the policy through the execution engine's operations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.gpu.blockrun import BlockRun
from repro.gpu.kernel import KernelLaunch
from repro.gpu.sm import SMState, StreamingMultiprocessor
from repro.gpu.thread_block import ThreadBlock
from repro.sim.stats import StatRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.gpu.execution_engine import ExecutionEngine


class SMDriver:
    """Issues thread blocks to SMs and handles completions and preemptions."""

    def __init__(self, engine: "ExecutionEngine"):
        self._engine = engine
        self.stats = StatRegistry()
        #: Per-SM completion callbacks, created once: bulk issue hands the
        #: same callable to every block of a burst instead of binding one
        #: closure per block.
        self._completion_callbacks: dict[int, object] = {}
        # Hot-path counters, resolved once (identical Counter objects to the
        # registry's; the per-block paths must not pay a name lookup each).
        self._ctr_blocks_issued = self.stats.counter("blocks_issued")
        self._ctr_blocks_reissued = self.stats.counter("blocks_reissued")
        self._ctr_blocks_completed = self.stats.counter("blocks_completed")
        #: Issue latency, cached: the configuration is immutable.
        self._tb_issue_latency_us = engine.system_config.gpu.tb_issue_latency_us
        #: Wave batching gate, cached: vectorised runs ride the wave path.
        self._wave_batching = engine.system_config.gpu.wave_batching

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def _sim(self):
        return self._engine.simulator

    @property
    def _framework(self):
        return self._engine.framework

    @property
    def _config(self):
        return self._engine.system_config

    # ------------------------------------------------------------------
    # SM setup
    # ------------------------------------------------------------------
    def setup_sm(self, sm_id: int, ksr_index: int) -> None:
        """Begin setting up an idle SM for an active kernel.

        The setup takes ``sm_setup_latency_us``; once it completes the driver
        starts issuing thread blocks.
        """
        framework = self._framework
        if not framework.ksr_valid(ksr_index):
            raise ValueError(f"cannot set up SM{sm_id} for invalid KSR {ksr_index}")
        framework.mark_sm_setup(sm_id, ksr_index)
        sm = self._engine.sm(sm_id)
        sm.state = SMState.SETUP
        self.stats.counter("sm_setups").add()
        expected_launch_id = framework.ksr(ksr_index).launch.launch_id
        self._sim.schedule(
            self._config.gpu.sm_setup_latency_us,
            lambda: self._finish_setup(sm_id, ksr_index, expected_launch_id),
            label=f"smdriver.setup.sm{sm_id}",
        )

    def _finish_setup(self, sm_id: int, ksr_index: int, expected_launch_id: int) -> None:
        """Complete the setup and start filling the SM with thread blocks."""
        framework = self._framework
        sm = self._engine.sm(sm_id)
        stale = (
            not framework.ksr_valid(ksr_index)
            or framework.ksr(ksr_index).launch.launch_id != expected_launch_id
            or not framework.kernel_has_issuable_work(ksr_index)
        )
        if stale:
            # The kernel finished (or its remaining blocks were all issued
            # elsewhere, or its KSRT index was recycled by a different kernel)
            # while this SM was being set up: release the SM.
            self._release_sm(sm_id, owner_ksr=ksr_index)
            return
        entry = framework.ksr(ksr_index)
        context = self._engine.context_for(entry.context_id)
        sm.configure(
            ksr_index=ksr_index,
            context_id=entry.context_id,
            page_table_base=context.page_table_base if context is not None else 0,
            max_resident_blocks=entry.blocks_per_sm,
            shared_memory_config=entry.shared_memory_config,
        )
        framework.mark_sm_running(sm_id)
        self.fill_sm(sm_id)

    # ------------------------------------------------------------------
    # Thread-block issue
    # ------------------------------------------------------------------
    def fill_sm(self, sm_id: int) -> None:
        """Issue thread blocks to ``sm_id`` until it is full or out of work.

        The burst is collected first and issued through one
        :meth:`~repro.gpu.sm.StreamingMultiprocessor.start_blocks` call per
        dispatch tick, so same-completion blocks can share a wave event.
        Preempted thread blocks of the kernel are issued before fresh ones so
        that the number of PTBQ entries stays bounded (paper Sec. 3.3).  If
        the SM ends up with no resident blocks and nothing to issue, it is
        released back to the idle pool and the policy is notified.
        """
        engine = self._engine
        framework = engine.framework
        sm_entry = framework.sm_entry(sm_id)
        if sm_entry.state is not SMState.RUNNING:
            return
        self._fill_running_sm(engine.sm(sm_id), sm_entry, framework)

    def _fill_running_sm(self, sm, sm_entry, framework, entry=None, callback=None) -> None:
        """Fill a RUNNING SM (hot path; callers prefetched the lookups).

        ``entry``/``callback`` may be pre-resolved by the completion callback
        (they are per-run-stable); per free slot the pick order is unchanged:
        preempted blocks of the kernel first (the engine routes each restore
        cost to the mechanism that evicted the block), then fresh blocks.
        """
        ksr_index = sm_entry.ksr_index
        if entry is None:
            entry = framework.ksrt.find(ksr_index) if ksr_index is not None else None
            if entry is None:
                self._release_sm(sm.sm_id, owner_ksr=ksr_index)
                return
        launch = entry.launch

        resident = sm._resident
        free = sm.max_resident_blocks - (len(resident) + sm._run_blocks)
        if free > 0:
            tb_issue_latency = self._tb_issue_latency_us
            ptbq = framework.ptbq(ksr_index)
            if (
                self._wave_batching
                and launch.jitter is None
                and sm.observer is None
                and len(ptbq) == 0
            ):
                # Vectorised issue: an all-fresh, jitter-free refill of an
                # unobserved SM becomes one BlockRun — no block objects, one
                # wave entry (see repro.gpu.blockrun).  Byte-identical to
                # the per-block path below by construction.
                first, taken = launch.take_fresh_span(free)
                if taken:
                    self._ctr_blocks_issued.value += taken
                    if callback is None:
                        callback = self._completion_callback(sm.sm_id)
                    run = BlockRun(launch, first, taken, launch.spec.avg_tb_time_us)
                    sm.start_run(
                        run, extra_latency_us=tb_issue_latency, on_complete=callback
                    )
            else:
                ptbq_pop = ptbq.pop
                engine = self._engine
                issues: List[tuple[ThreadBlock, float]] = []
                while free > 0:
                    block = ptbq_pop()
                    if block is None:
                        # The PTBQ cannot refill during the loop: every
                        # remaining slot takes a fresh block, so take them in
                        # one call.
                        fresh = launch.take_fresh_blocks(free)
                        if fresh:
                            self._ctr_blocks_issued.value += len(fresh)
                            for fresh_block in fresh:
                                issues.append((fresh_block, tb_issue_latency))
                            free -= len(fresh)
                        break
                    restore = engine.restore_latency_us(
                        block, launch.spec.usage.state_bytes_per_block
                    )
                    self._ctr_blocks_reissued.value += 1
                    issues.append((block, tb_issue_latency + restore))
                    free -= 1
                if issues:
                    if callback is None:
                        callback = self._completion_callback(sm.sm_id)
                    sm.start_blocks(issues, on_complete=callback)
        run_blocks = sm._run_blocks
        sm_entry.running_blocks = len(resident) + run_blocks

        if not resident and not run_blocks:
            self._release_sm(sm.sm_id, owner_ksr=ksr_index)

    def _completion_callback(self, sm_id: int):
        """The (cached) per-SM completion callback handed to issued blocks.

        The closure pre-binds every per-run-stable object (engine, framework,
        SM, SMST entry, simulator, counters): block completion is the hottest
        model path, and the prologue lookups would otherwise repeat hundreds
        of thousands of times on large-GPU scenarios.  The body mirrors
        :meth:`on_block_completed` exactly.
        """
        callback = self._completion_callbacks.get(sm_id)
        if callback is None:
            engine = self._engine
            framework = engine.framework
            simulator = engine.simulator
            sm = engine.sm(sm_id)
            sm_entry = framework.sm_entry(sm_id)
            index_for_launch = framework.ksrt.index_for_launch
            ksr = framework.ksr
            completed_counter = self._ctr_blocks_completed
            resident = sm._resident

            def callback(block: ThreadBlock) -> None:
                sm_entry.running_blocks = len(resident) + sm._run_blocks
                ksr_index = index_for_launch(block.kernel_launch_id)
                if ksr_index is None:  # pragma: no cover - defensive
                    raise RuntimeError("completed block belongs to no active kernel")
                entry = ksr(ksr_index)
                launch = entry.launch
                launch.notify_block_completed(block, simulator.now)
                completed_counter.value += 1

                if launch.all_blocks_completed:
                    # See on_block_completed: release before finish_kernel.
                    if sm_entry.state is SMState.RUNNING and not resident and not sm._run_blocks:
                        self._release_sm(sm_id, owner_ksr=ksr_index)
                    engine.finish_kernel(ksr_index)

                state = sm_entry.state
                if state is SMState.RESERVED:
                    engine.mechanism_for_sm(sm_id).on_block_completed(sm)
                elif state is SMState.RUNNING:
                    # The SM still runs this (unfinished) kernel: its KSRT
                    # entry and this callback can be reused by the fill.
                    self._fill_running_sm(sm, sm_entry, framework, entry, callback)

            def batch_complete(sm, blocks, wave) -> bool:
                """Complete a contiguous same-SM run of a wave in one pass.

                Only reachable with no SM observer attached (see
                :meth:`repro.gpu.sm.Wave.fire`).  Accepts the run only when
                it provably behaves identically to per-block processing:
                every block belongs to the SM's configured RUNNING kernel and
                the kernel cannot finish within the run (so no release /
                finish-kernel / mechanism hooks interleave).  The SM is then
                refilled once; the refill issues the same blocks, in the same
                order, with the same completion instants the per-block path
                would have produced.
                """
                if sm_entry.state is not SMState.RUNNING:
                    return False
                launch_id = blocks[0].kernel_launch_id
                for block in blocks:
                    if block.kernel_launch_id != launch_id:
                        return False
                ksr_index = index_for_launch(launch_id)
                if ksr_index is None or ksr_index != sm_entry.ksr_index:
                    return False
                entry = ksr(ksr_index)
                launch = entry.launch
                count = len(blocks)
                if launch.completed_blocks + count >= launch.spec.num_thread_blocks:
                    return False
                now = simulator.now
                completions = sm._completions
                for block in blocks:
                    del completions[block.key]
                    del resident[block.key]
                    block.complete(now)
                    launch.notify_block_completed(block, now)
                wave.live -= count
                sm.blocks_executed += count
                if not resident and not sm._run_blocks:
                    sm.utilization.set_idle(now)
                completed_counter.value += count
                sm_entry.running_blocks = len(resident) + sm._run_blocks
                self._fill_running_sm(sm, sm_entry, framework, entry, callback)
                return True

            def batch_complete_run(sm, run, wave) -> bool:
                """Retire a whole vectorised run in O(1) (see repro.gpu.blockrun).

                The run analogue of ``batch_complete``, with the same
                acceptance proof obligations: the SM must still be RUNNING
                the run's kernel and the kernel must not finish within the
                run (so no release / finish-kernel / mechanism hooks
                interleave).  Returning ``False`` makes the wave materialise
                the run and process its blocks on the exact path.
                """
                if sm_entry.state is not SMState.RUNNING:
                    return False
                launch = run.launch
                ksr_index = index_for_launch(launch.launch_id)
                if ksr_index is None or ksr_index != sm_entry.ksr_index:
                    return False
                entry = ksr(ksr_index)
                if entry.launch is not launch:
                    return False
                count = run.count
                if launch.completed_blocks + count >= launch.spec.num_thread_blocks:
                    return False
                now = simulator.now
                del sm._completions[run.key]
                del sm._runs[run.key]
                sm._run_blocks -= count
                launch.note_span_completed(count, now)
                wave.live -= count
                sm.blocks_executed += count
                if not resident and not sm._run_blocks:
                    sm.utilization.set_idle(now)
                completed_counter.value += count
                sm_entry.running_blocks = len(resident) + sm._run_blocks
                self._fill_running_sm(sm, sm_entry, framework, entry, callback)
                return True

            callback.batch_complete = batch_complete
            callback.batch_complete_run = batch_complete_run
            self._completion_callbacks[sm_id] = callback
        return callback

    # ------------------------------------------------------------------
    # Completion handling
    # ------------------------------------------------------------------
    def on_block_completed(self, sm_id: int, block: ThreadBlock) -> None:
        """A thread block resident on ``sm_id`` finished execution.

        The work happens in the per-SM completion callback (one
        implementation, pre-bound lookups): when the kernel finishes, the SM
        (necessarily empty) is released *before* ``finish_kernel`` is
        announced, so policy hooks never observe a stale RUNNING association;
        a RESERVED SM routes the completion to the mechanism owning its
        preemption; a RUNNING SM is refilled.
        """
        self._completion_callback(sm_id)(block)

    # ------------------------------------------------------------------
    # Preemption completion
    # ------------------------------------------------------------------
    def complete_preemption(self, sm_id: int, evicted_blocks: List[ThreadBlock]) -> None:
        """The preemption mechanism finished freeing ``sm_id``.

        Evicted blocks (context-switch mechanism only) are stored in their
        kernel's PTBQ.  The SM is then handed to the kernel it was reserved
        for, or released to the idle pool if that kernel no longer needs it.
        """
        framework = self._framework
        sm = self._engine.sm(sm_id)
        sm_entry = framework.sm_entry(sm_id)
        if sm_entry.state is not SMState.RESERVED:
            # The reservation was already resolved through another path (e.g.
            # the draining mechanism completed via a block-completion
            # notification before its zero-delay "already empty" event fired).
            # Preempted state, if any, must still be preserved.
            for block in evicted_blocks:  # pragma: no cover - defensive
                ksr_index = framework.ksr_index_for_launch(block.kernel_launch_id)
                if ksr_index is not None:
                    framework.push_preempted_block(ksr_index, block)
            self.stats.counter("stale_preemption_completions").add()
            return

        for block in evicted_blocks:
            ksr_index = framework.ksr_index_for_launch(block.kernel_launch_id)
            if ksr_index is None:  # pragma: no cover - defensive
                raise RuntimeError("evicted block belongs to no active kernel")
            framework.push_preempted_block(ksr_index, block)
        self.stats.counter("preemptions_completed").add()

        next_ksr = sm_entry.next_ksr_index
        owner = next_ksr if next_ksr is not None else sm_entry.ksr_index
        # Release the SM: clears SMST/KSRT assignment and SM registers.
        previous = framework.mark_sm_idle(sm_id)
        if sm.state is not SMState.IDLE:
            sm.release()

        if framework.ksr_valid(next_ksr) and framework.kernel_has_issuable_work(next_ksr):
            self.setup_sm(sm_id, next_ksr)
        else:
            self._engine.notify_sm_idle(sm_id, owner if owner is not None else previous)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _release_sm(self, sm_id: int, *, owner_ksr: Optional[int]) -> None:
        """Return an SM to the idle pool and notify the policy."""
        framework = self._framework
        sm = self._engine.sm(sm_id)
        previous = framework.mark_sm_idle(sm_id)
        if sm.state is not SMState.IDLE:
            sm.release()
        self.stats.counter("sm_releases").add()
        self._engine.notify_sm_idle(sm_id, owner_ksr if owner_ksr is not None else previous)
