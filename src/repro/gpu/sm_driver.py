"""The SM driver (paper Fig. 3).

The SM driver performs the operational work of the execution engine: it sets
up SMs for kernels (loading context and kernel status registers), issues
thread blocks until SMs are fully occupied, reacts to thread-block
completions, and — with the paper's extensions — cooperates with the
preemption mechanism when the scheduling policy reserves an SM.

The driver deliberately contains **no scheduling decisions**: which kernel an
SM should run, and when an SM must be taken away from a kernel, is decided by
the policy through the execution engine's operations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.gpu.kernel import KernelLaunch
from repro.gpu.sm import SMState, StreamingMultiprocessor
from repro.gpu.thread_block import ThreadBlock
from repro.sim.stats import StatRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.gpu.execution_engine import ExecutionEngine


class SMDriver:
    """Issues thread blocks to SMs and handles completions and preemptions."""

    def __init__(self, engine: "ExecutionEngine"):
        self._engine = engine
        self.stats = StatRegistry()

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def _sim(self):
        return self._engine.simulator

    @property
    def _framework(self):
        return self._engine.framework

    @property
    def _config(self):
        return self._engine.system_config

    # ------------------------------------------------------------------
    # SM setup
    # ------------------------------------------------------------------
    def setup_sm(self, sm_id: int, ksr_index: int) -> None:
        """Begin setting up an idle SM for an active kernel.

        The setup takes ``sm_setup_latency_us``; once it completes the driver
        starts issuing thread blocks.
        """
        framework = self._framework
        if not framework.ksr_valid(ksr_index):
            raise ValueError(f"cannot set up SM{sm_id} for invalid KSR {ksr_index}")
        framework.mark_sm_setup(sm_id, ksr_index)
        sm = self._engine.sm(sm_id)
        sm.state = SMState.SETUP
        self.stats.counter("sm_setups").add()
        expected_launch_id = framework.ksr(ksr_index).launch.launch_id
        self._sim.schedule(
            self._config.gpu.sm_setup_latency_us,
            lambda: self._finish_setup(sm_id, ksr_index, expected_launch_id),
            label=f"smdriver.setup.sm{sm_id}",
        )

    def _finish_setup(self, sm_id: int, ksr_index: int, expected_launch_id: int) -> None:
        """Complete the setup and start filling the SM with thread blocks."""
        framework = self._framework
        sm = self._engine.sm(sm_id)
        stale = (
            not framework.ksr_valid(ksr_index)
            or framework.ksr(ksr_index).launch.launch_id != expected_launch_id
            or not framework.kernel_has_issuable_work(ksr_index)
        )
        if stale:
            # The kernel finished (or its remaining blocks were all issued
            # elsewhere, or its KSRT index was recycled by a different kernel)
            # while this SM was being set up: release the SM.
            self._release_sm(sm_id, owner_ksr=ksr_index)
            return
        entry = framework.ksr(ksr_index)
        context = self._engine.context_for(entry.context_id)
        sm.configure(
            ksr_index=ksr_index,
            context_id=entry.context_id,
            page_table_base=context.page_table_base if context is not None else 0,
            max_resident_blocks=entry.blocks_per_sm,
            shared_memory_config=entry.shared_memory_config,
        )
        framework.mark_sm_running(sm_id)
        self.fill_sm(sm_id)

    # ------------------------------------------------------------------
    # Thread-block issue
    # ------------------------------------------------------------------
    def fill_sm(self, sm_id: int) -> None:
        """Issue thread blocks to ``sm_id`` until it is full or out of work.

        Preempted thread blocks of the kernel are issued before fresh ones so
        that the number of PTBQ entries stays bounded (paper Sec. 3.3).  If
        the SM ends up with no resident blocks and nothing to issue, it is
        released back to the idle pool and the policy is notified.
        """
        framework = self._framework
        sm_entry = framework.sm_entry(sm_id)
        if sm_entry.state is not SMState.RUNNING:
            return
        ksr_index = sm_entry.ksr_index
        if not framework.ksr_valid(ksr_index):
            self._release_sm(sm_id, owner_ksr=ksr_index)
            return
        entry = framework.ksr(ksr_index)
        launch = entry.launch
        sm = self._engine.sm(sm_id)

        while sm.has_free_slots:
            block, restore_latency = self._next_block(ksr_index, launch)
            if block is None:
                break
            self._issue_block(sm, block, restore_latency)
        framework.set_sm_running_blocks(sm_id, sm.resident_blocks)

        if sm.is_empty:
            self._release_sm(sm_id, owner_ksr=ksr_index)

    def _next_block(
        self, ksr_index: int, launch: KernelLaunch
    ) -> tuple[Optional[ThreadBlock], float]:
        """Pick the next block to issue: preempted blocks first, then fresh."""
        framework = self._framework
        block = framework.pop_preempted_block(ksr_index)
        if block is not None:
            usage = launch.spec.usage
            # The engine routes the restore cost to the mechanism that
            # evicted this block (mechanisms are chosen per preemption).
            restore = self._engine.restore_latency_us(block, usage.state_bytes_per_block)
            self.stats.counter("blocks_reissued").add()
            return block, restore
        if launch.has_unissued_blocks:
            self.stats.counter("blocks_issued").add()
            return launch.next_thread_block(), 0.0
        return None, 0.0

    def _issue_block(
        self, sm: StreamingMultiprocessor, block: ThreadBlock, restore_latency: float
    ) -> None:
        """Start one block on ``sm``."""
        extra = self._config.gpu.tb_issue_latency_us + restore_latency
        sm.start_block(
            block,
            extra_latency_us=extra,
            on_complete=lambda blk, sm_id=sm.sm_id: self.on_block_completed(sm_id, blk),
        )

    # ------------------------------------------------------------------
    # Completion handling
    # ------------------------------------------------------------------
    def on_block_completed(self, sm_id: int, block: ThreadBlock) -> None:
        """A thread block resident on ``sm_id`` finished execution."""
        framework = self._framework
        now = self._sim.now
        sm_entry = framework.sm_entry(sm_id)
        framework.set_sm_running_blocks(sm_id, self._engine.sm(sm_id).resident_blocks)

        ksr_index = framework.ksr_index_for_launch(block.kernel_launch_id)
        if ksr_index is None:  # pragma: no cover - defensive
            raise RuntimeError("completed block belongs to no active kernel")
        entry = framework.ksr(ksr_index)
        entry.launch.notify_block_completed(block, now)
        self.stats.counter("blocks_completed").add()

        if entry.launch.all_blocks_completed:
            # The kernel is finishing and this SM (necessarily empty now) was
            # its last executor.  Release the SM *before* announcing the
            # completion: the policy hooks triggered by finish_kernel (which
            # may admit a new kernel that reuses this KSRT index) must never
            # observe a stale RUNNING association for an empty SM.
            if sm_entry.state is SMState.RUNNING and self._engine.sm(sm_id).is_empty:
                self._release_sm(sm_id, owner_ksr=ksr_index)
            self._engine.finish_kernel(ksr_index)

        if sm_entry.state is SMState.RESERVED:
            # The policy wants this SM; the mechanism the controller picked
            # for this preemption decides when it is free.
            self._engine.mechanism_for_sm(sm_id).on_block_completed(self._engine.sm(sm_id))
        elif sm_entry.state is SMState.RUNNING:
            self.fill_sm(sm_id)

    # ------------------------------------------------------------------
    # Preemption completion
    # ------------------------------------------------------------------
    def complete_preemption(self, sm_id: int, evicted_blocks: List[ThreadBlock]) -> None:
        """The preemption mechanism finished freeing ``sm_id``.

        Evicted blocks (context-switch mechanism only) are stored in their
        kernel's PTBQ.  The SM is then handed to the kernel it was reserved
        for, or released to the idle pool if that kernel no longer needs it.
        """
        framework = self._framework
        sm = self._engine.sm(sm_id)
        sm_entry = framework.sm_entry(sm_id)
        if sm_entry.state is not SMState.RESERVED:
            # The reservation was already resolved through another path (e.g.
            # the draining mechanism completed via a block-completion
            # notification before its zero-delay "already empty" event fired).
            # Preempted state, if any, must still be preserved.
            for block in evicted_blocks:  # pragma: no cover - defensive
                ksr_index = framework.ksr_index_for_launch(block.kernel_launch_id)
                if ksr_index is not None:
                    framework.push_preempted_block(ksr_index, block)
            self.stats.counter("stale_preemption_completions").add()
            return

        for block in evicted_blocks:
            ksr_index = framework.ksr_index_for_launch(block.kernel_launch_id)
            if ksr_index is None:  # pragma: no cover - defensive
                raise RuntimeError("evicted block belongs to no active kernel")
            framework.push_preempted_block(ksr_index, block)
        self.stats.counter("preemptions_completed").add()

        next_ksr = sm_entry.next_ksr_index
        owner = next_ksr if next_ksr is not None else sm_entry.ksr_index
        # Release the SM: clears SMST/KSRT assignment and SM registers.
        previous = framework.mark_sm_idle(sm_id)
        if sm.state is not SMState.IDLE:
            sm.release()

        if framework.ksr_valid(next_ksr) and framework.kernel_has_issuable_work(next_ksr):
            self.setup_sm(sm_id, next_ksr)
        else:
            self._engine.notify_sm_idle(sm_id, owner if owner is not None else previous)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _release_sm(self, sm_id: int, *, owner_ksr: Optional[int]) -> None:
        """Return an SM to the idle pool and notify the policy."""
        framework = self._framework
        sm = self._engine.sm(sm_id)
        previous = framework.mark_sm_idle(sm_id)
        if sm.state is not SMState.IDLE:
            sm.release()
        self.stats.counter("sm_releases").add()
        self._engine.notify_sm_idle(sm_id, owner_ksr if owner_ksr is not None else previous)
