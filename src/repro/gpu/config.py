"""Hardware configuration of the simulated system (paper Table 2).

The paper models a 4-core Intel i7-930 host connected over PCIe to an NVIDIA
Kepler K20c (GK110, 13 SMs).  :class:`GPUConfig`, :class:`PCIeConfig` and
:class:`CPUConfig` capture those parameters; :class:`SystemConfig` bundles
them together with the knobs of the scheduling framework.

All sizes are bytes, all times microseconds, all bandwidths bytes/µs unless a
field name says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass(frozen=True)
class GPUConfig:
    """Execution-engine parameters of the simulated GK110-class GPU.

    Defaults reproduce Table 2 of the paper (NVIDIA K20c).
    """

    #: Number of streaming multiprocessors (GPU cores).
    num_sms: int = 13
    #: SM core clock in MHz (only used for derived cycle-time conversions).
    clock_mhz: float = 706.0
    #: 32-bit architectural registers per SM.
    registers_per_sm: int = 65536
    #: Hardware limit on concurrently resident thread blocks per SM.
    max_thread_blocks_per_sm: int = 16
    #: Hardware limit on concurrently resident threads per SM.
    max_threads_per_sm: int = 2048
    #: Selectable shared-memory partition sizes per SM, smallest first.
    #: GK110 splits a 64 KB array between L1 and shared memory; the paper uses
    #: 16 KB as the default shared-memory configuration.
    shared_memory_configs: Tuple[int, ...] = (16 * KIB, 32 * KIB, 48 * KIB)
    #: Off-chip (GDDR5) memory bandwidth in GB/s.
    memory_bandwidth_gbps: float = 208.0
    #: Total GPU DRAM capacity in bytes (K20c has 5 GB).
    dram_capacity_bytes: int = 5 * GIB
    #: Number of hardware command queues exposed to the host (Hyper-Q).
    num_hw_queues: int = 32
    #: Fixed latency of setting up an SM for a new kernel (control registers,
    #: context registers, first-wave setup), in microseconds.
    sm_setup_latency_us: float = 1.0
    #: Latency of draining the SM pipelines before a context-save trap can
    #: start (precise-exception requirement, paper Sec. 3.2), in microseconds.
    pipeline_drain_latency_us: float = 0.5
    #: Latency for the SM driver to issue one thread block to an SM.
    tb_issue_latency_us: float = 0.05
    #: Whether the SM may aggregate same-kernel thread blocks whose completion
    #: falls on the same instant into one "wave" completion event (a pure
    #: simulation optimisation: the wave path is observably identical to the
    #: per-block path — see ``tests/gpu/test_wave_equivalence.py``).  Disable
    #: to force one heap event per thread block.
    wave_batching: bool = True

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def register_file_bytes(self) -> int:
        """Size of one SM's register file in bytes (4 bytes per register)."""
        return self.registers_per_sm * 4

    @property
    def default_shared_memory_bytes(self) -> int:
        """The default (smallest) shared-memory configuration."""
        return self.shared_memory_configs[0]

    @property
    def max_shared_memory_bytes(self) -> int:
        """The largest selectable shared-memory configuration."""
        return self.shared_memory_configs[-1]

    @property
    def on_chip_state_bytes(self) -> int:
        """Register file plus maximum shared memory: the per-SM state that a
        context switch may have to move off-chip (paper Sec. 1: "up to 256KB
        of register file and 48KB of on-chip scratch-pad memory")."""
        return self.register_file_bytes + self.max_shared_memory_bytes

    @property
    def memory_bandwidth_bytes_per_us(self) -> float:
        """Aggregate DRAM bandwidth in bytes per microsecond."""
        return self.memory_bandwidth_gbps * 1e9 / 1e6

    @property
    def per_sm_bandwidth_bytes_per_us(self) -> float:
        """One SM's share of DRAM bandwidth.

        The paper computes projected context-save times "assuming only its
        share of global memory bandwidth", i.e. the aggregate bandwidth
        divided by the number of SMs.
        """
        return self.memory_bandwidth_bytes_per_us / self.num_sms

    def shared_memory_config_for(self, requested_bytes: int) -> int:
        """Pick the smallest shared-memory configuration that fits a request.

        Mirrors the paper's footnote to Table 2: if the default configuration
        cannot satisfy a kernel's shared-memory requirement, the SM is
        configured for the first bigger configuration that does.
        """
        if requested_bytes < 0:
            raise ValueError("shared memory request must be non-negative")
        for config in self.shared_memory_configs:
            if requested_bytes <= config:
                return config
        raise ValueError(
            f"kernel requests {requested_bytes} B of shared memory per block, more than "
            f"the largest configuration ({self.max_shared_memory_bytes} B)"
        )


@dataclass(frozen=True)
class PCIeConfig:
    """PCI Express interconnect parameters (paper Table 2).

    The paper lists a 32-lane, 500 MHz bus with a 4 KB burst size.  We model
    the bus as a shared full-duplex channel with a fixed per-transfer setup
    latency and a burst-granular transfer time.
    """

    clock_mhz: float = 500.0
    lanes: int = 32
    burst_bytes: int = 4 * KIB
    #: Effective payload bits moved per lane per clock (PCIe 2.0 with 8b/10b
    #: encoding moves 0.8 payload bits per lane-cycle in each direction).
    bits_per_lane_per_cycle: float = 0.8
    #: Driver + DMA engine setup latency charged to every transfer command.
    transfer_setup_latency_us: float = 10.0

    @property
    def bandwidth_bytes_per_us(self) -> float:
        """Peak payload bandwidth per direction, in bytes per microsecond."""
        bits_per_us = self.clock_mhz * self.lanes * self.bits_per_lane_per_cycle
        return bits_per_us / 8.0

    def transfer_time_us(self, size_bytes: int) -> float:
        """Time on the bus for ``size_bytes`` (excluding setup latency).

        Transfers move in whole bursts; a transfer smaller than one burst
        still occupies the bus for a full burst.
        """
        if size_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        if size_bytes == 0:
            return 0.0
        bursts = -(-size_bytes // self.burst_bytes)  # ceil division
        return bursts * self.burst_bytes / self.bandwidth_bytes_per_us


@dataclass(frozen=True)
class CPUConfig:
    """Coarse host-CPU parameters (paper Table 2: Intel i7-930)."""

    clock_ghz: float = 2.8
    num_cores: int = 4
    threads_per_core: int = 2
    #: Latency of issuing one command from the user-space runtime through the
    #: driver to the GPU's command queues (paper cites command issue latency
    #: as significant, referencing TimeGraph).
    command_issue_latency_us: float = 5.0

    @property
    def hardware_threads(self) -> int:
        """Total simultaneous hardware threads on the host CPU."""
        return self.num_cores * self.threads_per_core


@dataclass(frozen=True)
class SchedulerConfig:
    """Sizing of the hardware scheduling framework (paper Sec. 3.3).

    The paper sizes the active queue, KSRT and SMST with one entry per SM and
    gives every active kernel a PTBQ with ``num_sms * max_tb_per_sm`` entries.
    """

    #: Maximum number of active (running or preempted) kernels.  ``None``
    #: means "equal to the number of SMs", the paper's choice.
    max_active_kernels: int | None = None
    #: Whether the baseline FCFS engine performs back-to-back scheduling of
    #: independent kernels from the same process (paper Sec. 2.3).
    back_to_back_scheduling: bool = True
    #: Cost (in microseconds) of one execution of the DSS partitioning
    #: procedure.  The paper's serial search takes ``num_sms`` cycles, which
    #: at 706 MHz is ~0.018 µs; we keep it configurable for ablations.
    policy_invocation_latency_us: float = 0.02
    #: Optional per-preemption latency budget (µs) surfaced to preemption
    #: controllers through :class:`~repro.core.preemption.controller.PreemptionRequest`.
    #: ``None`` leaves budget-aware controllers (e.g. ``hybrid``) on their own
    #: defaults; the built-in ``static`` and ``adaptive`` controllers ignore it.
    preemption_latency_budget_us: float | None = None

    def active_kernel_limit(self, num_sms: int) -> int:
        """Resolve the active-kernel limit for a GPU with ``num_sms`` SMs."""
        if self.max_active_kernels is not None:
            if self.max_active_kernels < 1:
                raise ValueError("max_active_kernels must be at least 1")
            return self.max_active_kernels
        return num_sms


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of the simulated system."""

    gpu: GPUConfig = field(default_factory=GPUConfig)
    pcie: PCIeConfig = field(default_factory=PCIeConfig)
    cpu: CPUConfig = field(default_factory=CPUConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: Coefficient of variation applied to per-thread-block execution times.
    #: The paper's traces contain natural variability ("the variable execution
    #: times of the thread blocks"); we synthesise it deterministically.
    tb_time_cv: float = 0.15
    #: Seed for all deterministic pseudo-random choices derived from this
    #: configuration (thread-block jitter, workload composition).
    seed: int = 2014

    def with_updates(self, **kwargs) -> "SystemConfig":
        """Return a copy of the configuration with selected fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> Dict[str, str]:
        """Human-readable parameter dump used by the Table 2 experiment."""
        gpu, pcie, cpu = self.gpu, self.pcie, self.cpu
        shared = " / ".join(f"{c // KIB}KB" for c in gpu.shared_memory_configs)
        return {
            "CPU clock": f"{cpu.clock_ghz:.1f} GHz",
            "CPU cores": str(cpu.num_cores),
            "CPU threading": f"{cpu.threads_per_core}-way",
            "PCIe clock": f"{pcie.clock_mhz:.0f} MHz",
            "PCIe lanes": str(pcie.lanes),
            "PCIe burst": f"{pcie.burst_bytes // KIB} KB",
            "GPU clock": f"{gpu.clock_mhz:.0f} MHz",
            "GPU cores (SMs)": str(gpu.num_sms),
            "Memory bandwidth": f"{gpu.memory_bandwidth_gbps:.0f} GB/s",
            "Registers per SM": str(gpu.registers_per_sm),
            "Thread blocks per SM": str(gpu.max_thread_blocks_per_sm),
            "Threads per SM": str(gpu.max_threads_per_sm),
            "Shared memory per SM": shared,
        }


DEFAULT_SYSTEM_CONFIG = SystemConfig()
