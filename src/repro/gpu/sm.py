"""The Streaming Multiprocessor (SM) model.

The simulator works at thread-block granularity: the SM holds a set of
resident thread blocks, each of which finishes after its (remaining)
execution time.  The SM itself is deliberately "dumb": the SM driver
(:mod:`repro.gpu.sm_driver`) decides what to issue and when to preempt; the
SM only tracks residency, schedules/cancels completion events and records
per-SM context registers and utilisation statistics.

Wave-level execution
--------------------
Blocks issued in one burst (:meth:`StreamingMultiprocessor.start_blocks`)
whose completions fall on the *same instant* — same-kernel blocks with
identical remaining time, the common case for regular grids with jitter
disabled — share one aggregated "wave" completion event instead of one heap
event each.  The wave fires its blocks' completions in exactly the order and
with exactly the observer notifications the per-block events would have
produced (the burst's per-block events would carry consecutive sequence
numbers, so no foreign event can interleave), which keeps the optimisation
observably invisible; ``tests/gpu/test_wave_equivalence.py`` proves it
byte-identical against the per-block path forced by
``GPUConfig.wave_batching = False``.  Blocks with heterogeneous remainders
(jitter, restored preempted blocks) fall back to exact per-block events.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.gpu.blockrun import BlockRun
from repro.gpu.config import GPUConfig
from repro.gpu.thread_block import ThreadBlock
from repro.sim.engine import Simulator
from repro.sim.events import EventHandle
from repro.sim.stats import UtilizationTracker


class Wave:
    """One completion event shared by thread blocks finishing at one instant.

    A wave may span several SMs: entries are ``(sm, block, on_complete)``
    triples in exact per-block-event order.  Firing completes each block
    through its own SM's bookkeeping, skipping blocks whose completion was
    superseded (evicted, or evicted and re-issued with a new event) via an
    identity check against the wave the block is currently registered under.

    When no observer is attached to an SM, a contiguous run of its blocks is
    handed to the completion callback's ``batch_complete`` handler (see
    :meth:`repro.gpu.sm_driver.SMDriver._batch_complete`), which completes
    the run and refills the SM once instead of once per block.  The handler
    only accepts runs it can prove behave identically to per-block
    processing; anything else falls back to the exact path.
    """

    __slots__ = ("time", "seq", "handle", "event", "entries", "live")

    def __init__(self, time: float, entries: list):
        self.time = time
        self.seq = -1
        self.handle: Optional[EventHandle] = None
        #: The underlying :class:`~repro.sim.events.Event` (join checks read
        #: its ``fired``/``cancelled`` flags without property indirection).
        self.event = None
        self.entries = entries
        #: Entries whose completion this event still owns; evictions
        #: decrement it and cancel the event when it reaches zero, so a
        #: fully-preempted wave behaves exactly like cancelled per-block
        #: events (and never extends the run as a zombie no-op).
        self.live = len(entries)

    def fire(self) -> None:
        entries = self.entries
        # Attributed to the first SM of the wave; summing the counter over
        # all SMs yields the exact number of fired block-carrying heap
        # events, which the scale benchmark uses to convert raw event counts
        # into block-equivalent throughput.
        entries[0][0].completion_waves_fired += 1
        hist = entries[0][0].metrics_wave_hist
        if hist is not None:
            # Wave size in *blocks*: a BlockRun entry stands for the count
            # of per-block entries it compressed away.
            hist.observe(
                sum(e[1].count if e[1].__class__ is BlockRun else 1 for e in entries)
            )
        n = len(entries)
        i = 0
        while i < n:
            sm, block, on_complete = entries[i]
            completions = sm._completions
            if completions.get(block.key) is not self:
                i += 1
                continue
            if block.__class__ is BlockRun:
                if sm.observer is None:
                    batch_run = getattr(on_complete, "batch_complete_run", None)
                    if batch_run is not None and batch_run(sm, block, self):
                        i += 1
                        continue
                # Fallback (observer attached since issue, SM reserved, or
                # the kernel would finish inside the run): materialise in
                # place.  The splice puts one per-block entry in exactly the
                # event positions the per-block path would have used; reloop
                # without advancing so they are processed normally.
                sm._materialize_run(block)
                n = len(entries)
                continue
            j = i + 1
            while j < n:
                entry = entries[j]
                if (
                    entry[0] is not sm
                    or entry[2] is not on_complete
                    or entry[1].__class__ is BlockRun
                    or completions.get(entry[1].key) is not self
                ):
                    break
                j += 1
            if j - i > 1 and sm.observer is None:
                batch = getattr(on_complete, "batch_complete", None)
                if batch is not None and batch(sm, [e[1] for e in entries[i:j]], self):
                    i = j
                    continue
            sm._finish_block(block, on_complete)
            i += 1


class WaveAnchor:
    """The most recently scheduled wave of an execution engine.

    Shared by every SM of the engine so that completions landing on the same
    instant — including single-block refills issued from different SMs while
    one generation of waves fires — can merge into one heap event.  See
    :meth:`StreamingMultiprocessor.start_blocks` for the merge conditions.
    """

    __slots__ = ("wave",)

    def __init__(self) -> None:
        self.wave: Optional[Wave] = None


class SMState(enum.Enum):
    """SM states tracked by the SM Status Table (paper Sec. 3.3)."""

    IDLE = "idle"
    #: Being configured for a kernel (context registers, KSR) by the driver.
    SETUP = "setup"
    RUNNING = "running"
    #: Reserved by the scheduling policy; the preemption mechanism is freeing it.
    RESERVED = "reserved"


class StreamingMultiprocessor:
    """One GPU core.

    Parameters
    ----------
    sm_id:
        Index of the SM within the execution engine.
    config:
        GPU hardware configuration (occupancy limits, latencies).
    simulator:
        The shared discrete-event simulator.
    """

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        simulator: Simulator,
        wave_anchor: Optional[WaveAnchor] = None,
    ):
        self.sm_id = sm_id
        self.config = config
        self._sim = simulator
        #: Wave-joining anchor, shared across the engine's SMs (a standalone
        #: SM gets a private one).
        self._wave_anchor = wave_anchor if wave_anchor is not None else WaveAnchor()

        self.state = SMState.IDLE
        #: Per-SM context registers added by the paper (Sec. 3.1).
        self.context_id_register: Optional[int] = None
        self.page_table_register: Optional[int] = None
        #: KSR index of the kernel the SM is currently set up for.
        self.ksr_index: Optional[int] = None
        #: Maximum concurrently resident blocks for the current kernel.
        self.max_resident_blocks: int = 0
        #: Shared-memory configuration currently selected (bytes).
        self.shared_memory_config: int = config.default_shared_memory_bytes

        self._resident: Dict[tuple[int, int], ThreadBlock] = {}
        #: Wave owning each resident block's (or run's) pending completion.
        self._completions: Dict[tuple[int, int], Wave] = {}
        #: Vectorised residency: resident :class:`BlockRun` spans by key, in
        #: issue order (see :meth:`start_run`), plus their total block count.
        #: Anything that needs real blocks calls :meth:`_materialize_runs`.
        self._runs: Dict[tuple[int, int], BlockRun] = {}
        self._run_blocks = 0

        #: Optional instrumentation sink (see :mod:`repro.validation`).
        #: Observers are notified of block start/completion/eviction and SM
        #: configure/release; they must never mutate simulation state.
        self.observer: Optional[object] = None

        #: Optional :class:`repro.obs.LogHistogram` fed one sample per fired
        #: wave (the wave size in blocks).  A None-gated raw attribute, not
        #: an observer: attaching an observer disables the wave batch fast
        #: path, while this hook rides the existing per-wave counter update.
        self.metrics_wave_hist = None

        self.utilization = UtilizationTracker(simulator.now)
        self.blocks_executed = 0
        self.blocks_preempted = 0
        self.preemptions = 0
        self.setups = 0
        #: Block-carrying completion events that fired with this SM as the
        #: wave's first entry (see :meth:`Wave.fire`).
        self.completion_waves_fired = 0

    # ------------------------------------------------------------------
    # Setup / teardown
    # ------------------------------------------------------------------
    def configure(
        self,
        *,
        ksr_index: int,
        context_id: int,
        page_table_base: int,
        max_resident_blocks: int,
        shared_memory_config: int,
    ) -> None:
        """Load the per-kernel and per-context state into the SM.

        Called by the SM driver at the end of the setup latency.  The SM must
        not be holding blocks from a previous kernel.
        """
        if self._resident:
            raise RuntimeError(f"SM{self.sm_id}: configure() while thread blocks are resident")
        self.ksr_index = ksr_index
        self.context_id_register = context_id
        self.page_table_register = page_table_base
        self.max_resident_blocks = max_resident_blocks
        self.shared_memory_config = shared_memory_config
        self.state = SMState.RUNNING
        self.setups += 1
        if self.observer is not None:
            self.observer.on_sm_configured(self)

    def release(self) -> None:
        """Clear the SM's kernel/context registers and return it to IDLE."""
        if self._resident:
            raise RuntimeError(f"SM{self.sm_id}: release() while thread blocks are resident")
        self.ksr_index = None
        self.context_id_register = None
        self.page_table_register = None
        self.max_resident_blocks = 0
        # Reset the shared-memory partition select: a released SM must not
        # leak the previous kernel's configuration into the next setup.
        self.shared_memory_config = self.config.default_shared_memory_bytes
        self.state = SMState.IDLE
        self.utilization.set_idle(self._sim.now)
        if self.observer is not None:
            self.observer.on_sm_released(self)

    # ------------------------------------------------------------------
    # Thread-block execution
    # ------------------------------------------------------------------
    @property
    def resident_blocks(self) -> int:
        """Number of thread blocks currently resident (runs included)."""
        return len(self._resident) + self._run_blocks

    @property
    def has_free_slots(self) -> bool:
        """Whether another block of the current kernel fits on the SM."""
        return self.resident_blocks < self.max_resident_blocks

    @property
    def is_empty(self) -> bool:
        """Whether no thread blocks are resident."""
        return not self._resident and not self._run_blocks

    def resident(self) -> list[ThreadBlock]:
        """The currently resident thread blocks (unspecified order).

        Materialises any vectorised runs first: callers get (and the SM then
        keeps) real per-block state, identical to the per-block path's.
        """
        if self._runs:
            self._materialize_runs()
        return list(self._resident.values())

    def start_block(
        self,
        block: ThreadBlock,
        *,
        extra_latency_us: float,
        on_complete: Callable[[ThreadBlock], None],
    ) -> None:
        """Begin executing one ``block`` on this SM.

        ``extra_latency_us`` accounts for issue latency and, for preempted
        blocks, the context-restore time; it is added before the block's
        remaining execution time.  ``on_complete`` is invoked when the block
        finishes (unless the completion is cancelled by a preemption).
        """
        self.start_blocks([(block, extra_latency_us)], on_complete=on_complete)

    def start_blocks(
        self,
        issues: List[Tuple[ThreadBlock, float]],
        *,
        on_complete: Callable[[ThreadBlock], None],
    ) -> None:
        """Begin executing a burst of ``(block, extra_latency_us)`` issues.

        This is the SM driver's bulk-issue entry point (one call per SM per
        dispatch tick).  Blocks whose completion falls on the same instant
        are aggregated into a single wave completion event (unless
        ``config.wave_batching`` is off); heterogeneous completion times get
        exact per-block events.  Either way the blocks start — and later
        complete — in issue order, with identical observer notifications.
        """
        if not issues:
            return
        if self._runs:
            # Per-block issues and vectorised runs never mix: convert the
            # runs first so residency (and later eviction) order matches the
            # per-block path exactly.
            self._materialize_runs()
        sim = self._sim
        now = sim.now
        resident = self._resident
        observer = self.observer
        limit = self.max_resident_blocks
        self.utilization.set_busy(now)
        batching = self.config.wave_batching

        if len(issues) == 1:
            # Fast path for the dominant steady-state call: one refill issued
            # from a completed block's callback.
            block, extra_latency_us = issues[0]
            if len(resident) >= limit:
                raise RuntimeError(f"SM{self.sm_id}: no free slot for another thread block")
            key = block.key
            if key in resident:
                raise RuntimeError(f"SM{self.sm_id}: block {key} already resident")
            block.start(self.sm_id, now)
            resident[key] = block
            if observer is not None:
                observer.on_block_started(self, block)
            # Same float-addition order as the legacy ``schedule(delay)`` path
            # (``now + (extra + remaining)``): completion instants must match
            # the per-block events bit for bit.
            self._schedule_completion(
                now + (extra_latency_us + block.remaining_time_us),
                [block],
                on_complete,
                batching,
            )
            return

        # Validate the whole burst before mutating anything: a mid-burst
        # failure must not leave earlier blocks resident and started with no
        # completion event scheduled.
        if len(resident) + len(issues) > limit:
            raise RuntimeError(f"SM{self.sm_id}: no free slot for another thread block")
        seen_keys = set()
        for block, _ in issues:
            key = block.key
            if key in resident or key in seen_keys:
                raise RuntimeError(f"SM{self.sm_id}: block {key} already resident")
            seen_keys.add(key)

        #: (completion time, blocks) per event to schedule, in issue order of
        #: each group's first block — which makes the scheduled sequence
        #: numbers land exactly where the per-block events' would.
        bursts: List[Tuple[float, List[ThreadBlock]]] = []
        wave_index: Dict[float, int] = {}
        for block, extra_latency_us in issues:
            key = block.key
            block.start(self.sm_id, now)
            resident[key] = block
            if observer is not None:
                observer.on_block_started(self, block)
            completes_at = now + (extra_latency_us + block.remaining_time_us)
            if batching:
                index = wave_index.get(completes_at)
                if index is None:
                    wave_index[completes_at] = len(bursts)
                    bursts.append((completes_at, [block]))
                else:
                    bursts[index][1].append(block)
            else:
                bursts.append((completes_at, [block]))
        for completes_at, blocks in bursts:
            self._schedule_completion(completes_at, blocks, on_complete, batching)

    def _schedule_completion(
        self,
        completes_at: float,
        blocks: List[ThreadBlock],
        on_complete: Callable[[ThreadBlock], None],
        batching: bool,
    ) -> None:
        """Create (or join) the completion event for ``blocks``.

        Wave joining: when the engine's most recently scheduled completion
        event falls on the same instant and *nothing* was scheduled since it
        (sequence contiguity), the per-block events these blocks would have
        received occupy the sequence slots directly after it, so no foreign
        event can interleave between them — merging is firing-order
        invisible.  This is what keeps steady-state refills (one block issued
        per completed block of a firing wave, across all SMs) collapsed into
        one event per generation.
        """
        completions = self._completions
        sim = self._sim
        if batching:
            wave = self._wave_anchor.wave
            # ``sim._seq - 1`` is Simulator.last_sequence, read directly on
            # this hot path: equality with the anchor's seq proves nothing
            # was scheduled since the anchor event was created.
            if wave is not None and completes_at == wave.time and sim._seq - 1 == wave.seq:
                event = wave.event
                if not event.fired and not event.cancelled:
                    entries = wave.entries
                    for block in blocks:
                        entries.append((self, block, on_complete))
                        completions[block.key] = wave
                    wave.live += len(blocks)
                    return
        wave = Wave(completes_at, [(self, block, on_complete) for block in blocks])
        if len(blocks) == 1:
            label = f"sm{self.sm_id}.block{blocks[0].key}.complete"
        else:
            label = f"sm{self.sm_id}.wave{len(blocks)}.complete"
        handle = sim.schedule_at(completes_at, wave.fire, label=label)
        wave.handle = handle
        wave.seq = handle.seq
        wave.event = handle._event
        for block in blocks:
            completions[block.key] = wave
        if batching:
            self._wave_anchor.wave = wave

    def start_run(
        self,
        run: BlockRun,
        *,
        extra_latency_us: float,
        on_complete: Callable[[ThreadBlock], None],
    ) -> None:
        """Begin executing a vectorised span of fresh blocks (see :mod:`repro.gpu.blockrun`).

        The scalar twin of :meth:`start_blocks` for an all-fresh, jitter-free
        burst with no observer attached: one residency record, one wave entry
        (joined under exactly the per-block path's conditions), no block
        objects.  ``extra_latency_us`` is the issue latency the per-block
        path would have charged each block.
        """
        sim = self._sim
        now = sim.now
        if len(self._resident) + self._run_blocks + run.count > self.max_resident_blocks:
            raise RuntimeError(f"SM{self.sm_id}: no free slot for another thread block")
        self.utilization.set_busy(now)
        run.start_time_us = now
        self._runs[run.key] = run
        self._run_blocks += run.count
        # Same float-addition order as the per-block path's
        # ``now + (extra + remaining)``: completion instants must match bit
        # for bit (extra = tb issue latency, remaining = exec time).
        completes_at = now + (extra_latency_us + run.exec_time_us)
        completions = self._completions
        wave = self._wave_anchor.wave
        if wave is not None and completes_at == wave.time and sim._seq - 1 == wave.seq:
            event = wave.event
            if not event.fired and not event.cancelled:
                wave.entries.append((self, run, on_complete))
                completions[run.key] = wave
                wave.live += run.count
                return
        wave = Wave(completes_at, [(self, run, on_complete)])
        wave.live = run.count
        if run.count == 1:
            label = f"sm{self.sm_id}.block{run.key}.complete"
        else:
            label = f"sm{self.sm_id}.wave{run.count}.complete"
        handle = sim.schedule_at(completes_at, wave.fire, label=label)
        wave.handle = handle
        wave.seq = handle.seq
        wave.event = handle._event
        completions[run.key] = wave
        self._wave_anchor.wave = wave

    def _materialize_runs(self) -> None:
        """Convert every resident run into per-block state, in issue order."""
        for run in list(self._runs.values()):
            self._materialize_run(run)

    def _materialize_run(self, run: BlockRun) -> List[ThreadBlock]:
        """Replace one run by the exact per-block state it stands for.

        Creates the span's ThreadBlocks (registered with their launch,
        RUNNING since the run's start instant), makes them resident in issue
        order, and splices per-block entries into the run's wave at the
        run's exact position — so subsequent firing, eviction and completion
        are indistinguishable from the per-block path.
        """
        del self._runs[run.key]
        self._run_blocks -= run.count
        completions = self._completions
        wave = completions.pop(run.key, None)
        blocks = run.materialise(self.sm_id)
        resident = self._resident
        for block in blocks:
            resident[block.key] = block
        if wave is not None:
            entries = wave.entries
            for index, entry in enumerate(entries):
                if entry[1] is run:
                    on_complete = entry[2]
                    entries[index : index + 1] = [
                        (self, block, on_complete) for block in blocks
                    ]
                    break
            for block in blocks:
                completions[block.key] = wave
            # ``live`` already counts the run's blocks individually.
        return blocks

    def _finish_block(self, block: ThreadBlock, on_complete: Callable[[ThreadBlock], None]) -> None:
        """Internal completion callback for a resident block."""
        now = self._sim.now
        key = block.key
        wave = self._completions.pop(key, None)
        if wave is not None:
            wave.live -= 1
        self._resident.pop(key, None)
        block.complete(now)
        self.blocks_executed += 1
        if not self._resident:
            self.utilization.set_idle(now)
        if self.observer is not None:
            self.observer.on_block_completed(self, block)
        on_complete(block)

    def evict_all(self) -> list[ThreadBlock]:
        """Preempt every resident block (context-switch mechanism).

        Cancels the pending completion events (a wave event shared with
        blocks still owned elsewhere is only cancelled once its last owner
        lets go), updates each block's remaining execution time as of *now*
        and removes them from the SM.  Returns the evicted blocks so the
        caller can push them into the PTBQ once the context save completes.
        """
        if self._runs:
            # Preemption needs real blocks (remaining-time update, PTBQ
            # entries): convert runs first, preserving issue order.
            self._materialize_runs()
        now = self._sim.now
        evicted: list[ThreadBlock] = []
        for key, block in list(self._resident.items()):
            wave = self._completions.pop(key, None)
            if wave is not None:
                wave.live -= 1
                if wave.live == 0:
                    self._sim.cancel(wave.handle)
            block.preempt(now)
            evicted.append(block)
            del self._resident[key]
            self.blocks_preempted += 1
        if evicted:
            self.preemptions += 1
        if not self._resident:
            self.utilization.set_idle(now)
        if evicted and self.observer is not None:
            self.observer.on_blocks_evicted(self, evicted)
        return evicted

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def busy_fraction(self, now: Optional[float] = None) -> float:
        """Fraction of time the SM has had at least one resident block."""
        return self.utilization.utilization(now if now is not None else self._sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SM(id={self.sm_id}, state={self.state.value}, ksr={self.ksr_index}, "
            f"resident={self.resident_blocks}/{self.max_resident_blocks})"
        )
