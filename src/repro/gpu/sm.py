"""The Streaming Multiprocessor (SM) model.

The simulator works at thread-block granularity: the SM holds a set of
resident thread blocks, each of which finishes after its (remaining)
execution time.  The SM itself is deliberately "dumb": the SM driver
(:mod:`repro.gpu.sm_driver`) decides what to issue and when to preempt; the
SM only tracks residency, schedules/cancels completion events and records
per-SM context registers and utilisation statistics.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional

from repro.gpu.config import GPUConfig
from repro.gpu.thread_block import ThreadBlock
from repro.sim.engine import Simulator
from repro.sim.events import EventHandle
from repro.sim.stats import UtilizationTracker


class SMState(enum.Enum):
    """SM states tracked by the SM Status Table (paper Sec. 3.3)."""

    IDLE = "idle"
    #: Being configured for a kernel (context registers, KSR) by the driver.
    SETUP = "setup"
    RUNNING = "running"
    #: Reserved by the scheduling policy; the preemption mechanism is freeing it.
    RESERVED = "reserved"


class StreamingMultiprocessor:
    """One GPU core.

    Parameters
    ----------
    sm_id:
        Index of the SM within the execution engine.
    config:
        GPU hardware configuration (occupancy limits, latencies).
    simulator:
        The shared discrete-event simulator.
    """

    def __init__(self, sm_id: int, config: GPUConfig, simulator: Simulator):
        self.sm_id = sm_id
        self.config = config
        self._sim = simulator

        self.state = SMState.IDLE
        #: Per-SM context registers added by the paper (Sec. 3.1).
        self.context_id_register: Optional[int] = None
        self.page_table_register: Optional[int] = None
        #: KSR index of the kernel the SM is currently set up for.
        self.ksr_index: Optional[int] = None
        #: Maximum concurrently resident blocks for the current kernel.
        self.max_resident_blocks: int = 0
        #: Shared-memory configuration currently selected (bytes).
        self.shared_memory_config: int = config.default_shared_memory_bytes

        self._resident: Dict[tuple[int, int], ThreadBlock] = {}
        self._completion_events: Dict[tuple[int, int], EventHandle] = {}

        #: Optional instrumentation sink (see :mod:`repro.validation`).
        #: Observers are notified of block start/completion/eviction and SM
        #: configure/release; they must never mutate simulation state.
        self.observer: Optional[object] = None

        self.utilization = UtilizationTracker(simulator.now)
        self.blocks_executed = 0
        self.blocks_preempted = 0
        self.preemptions = 0
        self.setups = 0

    # ------------------------------------------------------------------
    # Setup / teardown
    # ------------------------------------------------------------------
    def configure(
        self,
        *,
        ksr_index: int,
        context_id: int,
        page_table_base: int,
        max_resident_blocks: int,
        shared_memory_config: int,
    ) -> None:
        """Load the per-kernel and per-context state into the SM.

        Called by the SM driver at the end of the setup latency.  The SM must
        not be holding blocks from a previous kernel.
        """
        if self._resident:
            raise RuntimeError(f"SM{self.sm_id}: configure() while thread blocks are resident")
        self.ksr_index = ksr_index
        self.context_id_register = context_id
        self.page_table_register = page_table_base
        self.max_resident_blocks = max_resident_blocks
        self.shared_memory_config = shared_memory_config
        self.state = SMState.RUNNING
        self.setups += 1
        if self.observer is not None:
            self.observer.on_sm_configured(self)

    def release(self) -> None:
        """Clear the SM's kernel/context registers and return it to IDLE."""
        if self._resident:
            raise RuntimeError(f"SM{self.sm_id}: release() while thread blocks are resident")
        self.ksr_index = None
        self.context_id_register = None
        self.page_table_register = None
        self.max_resident_blocks = 0
        self.state = SMState.IDLE
        self.utilization.set_idle(self._sim.now)
        if self.observer is not None:
            self.observer.on_sm_released(self)

    # ------------------------------------------------------------------
    # Thread-block execution
    # ------------------------------------------------------------------
    @property
    def resident_blocks(self) -> int:
        """Number of thread blocks currently resident."""
        return len(self._resident)

    @property
    def has_free_slots(self) -> bool:
        """Whether another block of the current kernel fits on the SM."""
        return self.resident_blocks < self.max_resident_blocks

    @property
    def is_empty(self) -> bool:
        """Whether no thread blocks are resident."""
        return not self._resident

    def resident(self) -> list[ThreadBlock]:
        """The currently resident thread blocks (unspecified order)."""
        return list(self._resident.values())

    def start_block(
        self,
        block: ThreadBlock,
        *,
        extra_latency_us: float,
        on_complete: Callable[[ThreadBlock], None],
    ) -> None:
        """Begin executing ``block`` on this SM.

        ``extra_latency_us`` accounts for issue latency and, for preempted
        blocks, the context-restore time; it is added before the block's
        remaining execution time.  ``on_complete`` is invoked when the block
        finishes (unless the completion is cancelled by a preemption).
        """
        if not self.has_free_slots:
            raise RuntimeError(f"SM{self.sm_id}: no free slot for another thread block")
        if block.key in self._resident:
            raise RuntimeError(f"SM{self.sm_id}: block {block.key} already resident")
        now = self._sim.now
        block.start(self.sm_id, now)
        self._resident[block.key] = block
        self.utilization.set_busy(now)
        if self.observer is not None:
            self.observer.on_block_started(self, block)

        def _complete(blk: ThreadBlock = block) -> None:
            self._finish_block(blk, on_complete)

        handle = self._sim.schedule(
            extra_latency_us + block.remaining_time_us,
            _complete,
            label=f"sm{self.sm_id}.block{block.key}.complete",
        )
        self._completion_events[block.key] = handle

    def _finish_block(self, block: ThreadBlock, on_complete: Callable[[ThreadBlock], None]) -> None:
        """Internal completion callback for a resident block."""
        self._completion_events.pop(block.key, None)
        self._resident.pop(block.key, None)
        block.complete(self._sim.now)
        self.blocks_executed += 1
        if not self._resident:
            self.utilization.set_idle(self._sim.now)
        if self.observer is not None:
            self.observer.on_block_completed(self, block)
        on_complete(block)

    def evict_all(self) -> list[ThreadBlock]:
        """Preempt every resident block (context-switch mechanism).

        Cancels the pending completion events, updates each block's remaining
        execution time as of *now* and removes them from the SM.  Returns the
        evicted blocks so the caller can push them into the PTBQ once the
        context save completes.
        """
        now = self._sim.now
        evicted: list[ThreadBlock] = []
        for key, block in list(self._resident.items()):
            handle = self._completion_events.pop(key, None)
            if handle is not None:
                self._sim.cancel(handle)
            block.preempt(now)
            evicted.append(block)
            del self._resident[key]
            self.blocks_preempted += 1
        if evicted:
            self.preemptions += 1
        if not self._resident:
            self.utilization.set_idle(now)
        if evicted and self.observer is not None:
            self.observer.on_blocks_evicted(self, evicted)
        return evicted

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def busy_fraction(self, now: Optional[float] = None) -> float:
        """Fraction of time the SM has had at least one resident block."""
        return self.utilization.utilization(now if now is not None else self._sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SM(id={self.sm_id}, state={self.state.value}, ksr={self.ksr_index}, "
            f"resident={self.resident_blocks}/{self.max_resident_blocks})"
        )
