"""The command dispatcher (paper Fig. 1, block 6).

The dispatcher inspects the heads of the hardware command queues and issues
commands to the corresponding engine: kernel launches to the execution
engine, data transfers to the data-transfer engine.  After issuing a command
from a queue the dispatcher stops inspecting that queue; when the engine
notifies completion the queue is re-enabled.  Commands from different queues
that target different engines therefore execute concurrently, while commands
within one queue (one software stream) are serialised.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol

from repro.gpu.command_queue import Command, HardwareQueue, KernelCommand, TransferCommand
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry


class CommandSink(Protocol):
    """An engine that accepts commands from the dispatcher.

    ``submit`` returns ``True`` if the command was accepted.  If it returns
    ``False`` (e.g. the execution engine's per-context command buffer is
    full), the dispatcher leaves the command at the head of its queue and
    retries when the engine calls the registered retry callback.
    """

    def submit(self, command: Command) -> bool:
        ...  # pragma: no cover - protocol definition

    def register_backpressure_callback(self, callback: Callable[[], None]) -> None:
        ...  # pragma: no cover - protocol definition


class CommandDispatcher:
    """Routes commands from hardware queues to the GPU engines."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        num_queues: int,
        execution_sink: CommandSink,
        transfer_sink: CommandSink,
    ):
        if num_queues < 1:
            raise ValueError("the dispatcher needs at least one hardware queue")
        self._sim = simulator
        self._queues: List[HardwareQueue] = [HardwareQueue(i) for i in range(num_queues)]
        self._sinks: Dict[str, CommandSink] = {
            "execution": execution_sink,
            "transfer": transfer_sink,
        }
        for sink in self._sinks.values():
            sink.register_backpressure_callback(self.dispatch)
        self.stats = StatRegistry()
        #: queue_id for every in-flight command id (to re-enable on completion).
        self._inflight_queue: Dict[int, int] = {}
        #: Re-entrancy guard: submitting a command may synchronously free an
        #: engine buffer, whose back-pressure callback calls dispatch() again.
        self._dispatching = False
        self._redispatch_requested = False
        #: Optional instrumentation sink (see :mod:`repro.validation`),
        #: notified of enqueue/issue/completion; must never mutate state.
        self.observer: Optional[object] = None

    # ------------------------------------------------------------------
    # Queue access
    # ------------------------------------------------------------------
    @property
    def num_queues(self) -> int:
        """Number of hardware command queues."""
        return len(self._queues)

    def queue(self, queue_id: int) -> HardwareQueue:
        """Return the hardware queue with the given id."""
        return self._queues[queue_id]

    def total_pending(self) -> int:
        """Commands waiting in all queues (excluding in-flight ones)."""
        return sum(q.depth for q in self._queues)

    # ------------------------------------------------------------------
    # Host-facing API (used by the device driver)
    # ------------------------------------------------------------------
    def enqueue(self, queue_id: int, command: Command) -> None:
        """Push ``command`` onto hardware queue ``queue_id`` and dispatch."""
        if not 0 <= queue_id < len(self._queues):
            raise ValueError(f"invalid hardware queue id {queue_id}")
        queue = self._queues[queue_id]
        queue.push(command, self._sim.now)
        self.stats.counter("commands_enqueued").add()
        if self.observer is not None:
            self.observer.on_command_enqueued(queue_id, command)
        self.dispatch()

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def dispatch(self) -> None:
        """Inspect every enabled queue and issue what the engines accept.

        The loop keeps sweeping the queues until it makes no further
        progress, which lets a single call drain multiple queues (e.g. when
        an engine just freed space for several contexts at once).  Calls made
        re-entrantly (an engine's back-pressure callback firing while a
        submission is in progress) only request another sweep instead of
        recursing.
        """
        if self._dispatching:
            self._redispatch_requested = True
            return
        self._dispatching = True
        try:
            progress = True
            while progress or self._redispatch_requested:
                self._redispatch_requested = False
                progress = False
                for queue in self._queues:
                    if not queue.enabled or queue.empty:
                        continue
                    command = queue.head()
                    assert command is not None
                    sink = self._sinks[command.engine]
                    if not sink.submit(command):
                        # Engine back-pressure: leave the command at the head.
                        self.stats.counter("backpressure_stalls").add()
                        continue
                    queue.pop()
                    queue.in_flight = command
                    command.issue_time_us = self._sim.now
                    self._inflight_queue[command.command_id] = queue.queue_id
                    command.subscribe_completion(
                        lambda now, cid=command.command_id: self._on_command_complete(cid)
                    )
                    self.stats.counter(f"commands_issued_{command.engine}").add()
                    if self.observer is not None:
                        self.observer.on_command_issued(queue.queue_id, command)
                    progress = True
        finally:
            self._dispatching = False

    def _on_command_complete(self, command_id: int) -> None:
        """Re-enable the queue whose in-flight command just completed."""
        queue_id = self._inflight_queue.pop(command_id, None)
        if queue_id is None:  # pragma: no cover - defensive
            return
        queue = self._queues[queue_id]
        queue.in_flight = None
        self.stats.counter("commands_completed").add()
        if self.observer is not None:
            self.observer.on_command_completed(queue_id, command_id)
        self.dispatch()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        blocked = sum(1 for q in self._queues if not q.enabled)
        return (
            f"CommandDispatcher(queues={len(self._queues)}, blocked={blocked}, "
            f"pending={self.total_pending()})"
        )
