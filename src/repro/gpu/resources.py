"""Static hardware partitioning of SM resources (occupancy rules).

Concurrent execution of thread blocks on an SM "relies on static hardware
partitioning, so the available hardware resources (e.g., registers and shared
memory) are split among all the thread blocks in the SM.  The number of
thread blocks that can run concurrently is thus determined by the first fully
used hardware resource" (paper Sec. 2.3).

:class:`OccupancyCalculator` implements those rules for the GK110
configuration in :class:`repro.gpu.config.GPUConfig` and also produces the
two derived per-kernel quantities Table 1 reports:

* the fraction of on-chip storage (register file + shared memory) a fully
  occupied SM uses, and
* the projected context-save time of an SM, assuming the SM only gets its
  share of the global memory bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import GPUConfig


@dataclass(frozen=True)
class ResourceUsage:
    """Per-thread-block resource requirements of a kernel.

    Attributes
    ----------
    registers_per_block:
        Total 32-bit architectural registers used by one thread block
        (threads per block x registers per thread), as reported in Table 1.
    shared_memory_per_block:
        Shared (scratch-pad) memory in bytes statically allocated per block.
    threads_per_block:
        Threads per block; bounded by the 2048-threads-per-SM limit.
    """

    registers_per_block: int
    shared_memory_per_block: int
    threads_per_block: int = 256

    def __post_init__(self) -> None:
        if self.registers_per_block < 0:
            raise ValueError("registers_per_block must be non-negative")
        if self.shared_memory_per_block < 0:
            raise ValueError("shared_memory_per_block must be non-negative")
        if self.threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")

    @property
    def register_bytes_per_block(self) -> int:
        """Register state of one block in bytes (4 bytes per register)."""
        return self.registers_per_block * 4

    @property
    def state_bytes_per_block(self) -> int:
        """Architectural state a context switch must save per block."""
        return self.register_bytes_per_block + self.shared_memory_per_block


@dataclass(frozen=True)
class OccupancyResult:
    """Result of the static partitioning computation for one kernel."""

    #: Number of thread blocks that fit concurrently on one SM.
    blocks_per_sm: int
    #: The resource that limits occupancy ("registers", "shared_memory",
    #: "threads" or "blocks").
    limiting_resource: str
    #: Shared-memory configuration selected for the SM (bytes).
    shared_memory_config: int
    #: Fraction of on-chip storage (register file + selected shared memory
    #: configuration... see note below) used when fully occupied.
    storage_fraction: float
    #: Bytes of architectural state resident on a fully occupied SM.
    resident_state_bytes: int
    #: Projected time to save that state over the SM's bandwidth share (µs).
    context_save_time_us: float


class OccupancyCalculator:
    """Computes SM occupancy and context-switch state for kernels.

    Notes on the storage-fraction definition
    ----------------------------------------
    Table 1's "Resour./SM (%)" column is the resident architectural state of a
    fully occupied SM divided by the *maximum* on-chip storage of an SM
    (256 KB register file + 48 KB shared memory = 304 KB), irrespective of the
    shared-memory configuration actually selected.  For example ``lbm``
    (15 blocks x 4320 registers x 4 B = 253.1 KB, no shared memory) gives
    83.26 %, and ``histo.final`` (3 x 19456 x 4 B = 228 KB) gives 75.0 %,
    matching the paper.  We reproduce that definition.
    """

    def __init__(self, config: GPUConfig):
        self._config = config

    @property
    def config(self) -> GPUConfig:
        """The GPU configuration the calculator operates on."""
        return self._config

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------
    def blocks_per_sm(self, usage: ResourceUsage, max_blocks_hint: int | None = None) -> OccupancyResult:
        """Compute how many blocks of a kernel fit on one SM.

        Parameters
        ----------
        usage:
            The kernel's per-block resource requirements.
        max_blocks_hint:
            Optional upper bound coming from a measured trace (Table 1's
            "TBs/SM" column).  Real kernels are sometimes limited by factors
            the coarse model does not capture (e.g. per-thread register
            granularity, barriers); when a hint is given the result is clamped
            to it, but never below 1.
        """
        cfg = self._config
        shared_config = cfg.shared_memory_config_for(usage.shared_memory_per_block)

        limits: dict[str, int] = {"blocks": cfg.max_thread_blocks_per_sm}
        if usage.registers_per_block > 0:
            limits["registers"] = cfg.registers_per_sm // usage.registers_per_block
        if usage.shared_memory_per_block > 0:
            limits["shared_memory"] = shared_config // usage.shared_memory_per_block
        if usage.threads_per_block > 0:
            limits["threads"] = cfg.max_threads_per_sm // usage.threads_per_block

        limiting_resource = min(limits, key=lambda name: (limits[name], name))
        blocks = limits[limiting_resource]
        if blocks < 1:
            raise ValueError(
                "kernel cannot run: a single thread block exceeds the SM's "
                f"{limiting_resource} capacity"
            )
        if max_blocks_hint is not None:
            if max_blocks_hint < 1:
                raise ValueError("max_blocks_hint must be at least 1")
            if max_blocks_hint < blocks:
                blocks = max_blocks_hint
                limiting_resource = "trace_hint"

        resident_state = blocks * usage.state_bytes_per_block
        storage_fraction = resident_state / cfg.on_chip_state_bytes
        save_time = self.context_save_time_us(usage, blocks)
        return OccupancyResult(
            blocks_per_sm=blocks,
            limiting_resource=limiting_resource,
            shared_memory_config=shared_config,
            storage_fraction=storage_fraction,
            resident_state_bytes=resident_state,
            context_save_time_us=save_time,
        )

    # ------------------------------------------------------------------
    # Context-switch costs
    # ------------------------------------------------------------------
    def context_save_time_us(self, usage: ResourceUsage, resident_blocks: int) -> float:
        """Projected time to save ``resident_blocks`` blocks of this kernel.

        The paper projects the save time of a fully occupied SM assuming the
        SM only uses its share of the global memory bandwidth
        (208 GB/s / 13 SMs).  The same model is used during simulation for
        partially occupied SMs by scaling with the number of resident blocks.
        """
        if resident_blocks < 0:
            raise ValueError("resident_blocks must be non-negative")
        state_bytes = resident_blocks * usage.state_bytes_per_block
        return state_bytes / self._config.per_sm_bandwidth_bytes_per_us

    def context_restore_time_us(self, usage: ResourceUsage, blocks: int) -> float:
        """Time to restore ``blocks`` preempted blocks onto an SM.

        Restoring moves the same amount of state in the opposite direction;
        the model is symmetric.
        """
        return self.context_save_time_us(usage, blocks)

    def block_save_time_us(self, usage: ResourceUsage) -> float:
        """Save time attributable to a single thread block."""
        return self.context_save_time_us(usage, 1)

    def storage_fraction(self, usage: ResourceUsage, resident_blocks: int) -> float:
        """Fraction of maximum on-chip storage used by ``resident_blocks``."""
        return (
            resident_blocks * usage.state_bytes_per_block / self._config.on_chip_state_bytes
        )
