"""Vectorised thread-block state: runs of blocks behind one descriptor.

Large-GPU steady state is a loop of "a wave of same-instant completions
fires, every affected SM refills with fresh, jitter-free blocks of the same
kernel".  The per-block representation pays, for each block and generation,
one :class:`~repro.gpu.thread_block.ThreadBlock` allocation, two residency
dict inserts/deletes, and per-block ``start``/``complete``/``notify`` calls —
none of which is observable unless something actually inspects the blocks.

A :class:`BlockRun` collapses such a refill into one scalar descriptor: a
contiguous span of never-issued blocks of one launch, all started at the
same instant with the same execution time (no jitter), hence one shared
completion instant.  The SM driver issues a run with one call
(:meth:`~repro.gpu.sm.StreamingMultiprocessor.start_run`), the wave event
carries one entry for it, and completion retires the whole span in O(1)
(:meth:`~repro.gpu.kernel.KernelLaunch.note_span_completed`).

The representation is *reversible*: the moment anything needs real blocks —
an observer is attached, the SM is preempted (``evict_all``), a policy
builds a preemption request over ``resident()``, a per-block issue lands on
the SM, or the kernel is about to finish — the run is materialised into the
exact :class:`ThreadBlock` objects (and wave entries, in the exact event
positions) the per-block path would have produced, and execution continues
on the classic path.  ``tests/gpu/test_wave_equivalence.py`` and the
queue-equivalence fuzz prove the whole construction byte-identical to the
forced per-block engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.gpu.kernel import KernelLaunch
    from repro.gpu.thread_block import ThreadBlock


class BlockRun:
    """A contiguous span of resident fresh blocks sharing one completion.

    Attributes
    ----------
    launch:
        The owning :class:`~repro.gpu.kernel.KernelLaunch`.
    first_index / count:
        The span ``[first_index, first_index + count)`` of the launch's grid.
    exec_time_us:
        The (jitter-free) per-block execution time; every block of the span
        shares it, which is what makes one completion instant exact.
    start_time_us:
        Instant the span started executing (set by ``start_run``).
    key:
        ``(launch_id, first_index)`` — deliberately identical to the first
        block's :attr:`~repro.gpu.thread_block.ThreadBlock.key`, so run
        completions index the SM's completion map (and single-block event
        labels render) exactly like the per-block path's.
    """

    __slots__ = ("launch", "first_index", "count", "exec_time_us", "start_time_us", "key")

    def __init__(
        self,
        launch: "KernelLaunch",
        first_index: int,
        count: int,
        exec_time_us: float,
    ):
        self.launch = launch
        self.first_index = first_index
        self.count = count
        self.exec_time_us = exec_time_us
        self.start_time_us = 0.0
        self.key = (launch.launch_id, first_index)

    def materialise(self, sm_id: int) -> List["ThreadBlock"]:
        """The exact ThreadBlocks the per-block issue path would have made."""
        return self.launch.materialise_span(
            self.first_index,
            self.count,
            sm_id=sm_id,
            start_time_us=self.start_time_us,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockRun(launch={self.launch.launch_id}, "
            f"first={self.first_index}, count={self.count}, "
            f"exec={self.exec_time_us:.2f}us)"
        )


__all__ = ["BlockRun"]
