"""Kernels and kernel launches.

A :class:`KernelSpec` is the static description of a GPU kernel — the
quantities the paper's Table 1 reports per kernel (thread-block count,
per-block execution time, per-block register and shared-memory usage, the
measured occupancy limit).  A :class:`KernelLaunch` is one dynamic invocation
of a spec by a process: it owns the thread blocks, tracks issue/completion
progress and records timing of the whole command.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.gpu.resources import ResourceUsage
from repro.gpu.thread_block import ThreadBlock, ThreadBlockState
from repro.utils.determinism import DeterministicJitter


class KernelState(enum.Enum):
    """Lifecycle of a kernel launch command."""

    #: Created by the host but not yet admitted into the execution engine's
    #: active queue (it may be waiting in a stream or a command buffer).
    PENDING = "pending"
    #: Admitted to the active queue / KSRT; thread blocks may be executing.
    ACTIVE = "active"
    #: Every thread block has completed.
    FINISHED = "finished"


@dataclass(frozen=True)
class KernelSpec:
    """Static description of a GPU kernel.

    Attributes mirror Table 1 of the paper.  ``avg_tb_time_us`` is the
    average execution time of one thread block; individual blocks receive a
    deterministic jitter around it (see :class:`KernelLaunch`).
    """

    name: str
    benchmark: str
    num_thread_blocks: int
    avg_tb_time_us: float
    usage: ResourceUsage
    #: Measured maximum number of concurrently resident blocks per SM
    #: (Table 1 "TBs/SM").  Used as an occupancy hint; ``None`` lets the
    #: occupancy calculator decide purely from resources.
    max_blocks_per_sm: Optional[int] = None
    #: Isolated execution time of the whole kernel as measured on the K20c
    #: (Table 1 "Avg. Time").  Kept for reporting and validation only; the
    #: simulator derives kernel duration from thread-block execution.
    measured_kernel_time_us: Optional[float] = None
    #: Number of launches of this kernel per application run (Table 1).
    launches_per_run: int = 1

    def __post_init__(self) -> None:
        if self.num_thread_blocks <= 0:
            raise ValueError(f"kernel {self.name}: num_thread_blocks must be positive")
        if self.avg_tb_time_us <= 0:
            raise ValueError(f"kernel {self.name}: avg_tb_time_us must be positive")
        if self.launches_per_run <= 0:
            raise ValueError(f"kernel {self.name}: launches_per_run must be positive")
        if self.max_blocks_per_sm is not None and self.max_blocks_per_sm < 1:
            raise ValueError(f"kernel {self.name}: max_blocks_per_sm must be >= 1")

    @property
    def qualified_name(self) -> str:
        """``benchmark.kernel`` identifier used in reports."""
        return f"{self.benchmark}.{self.name}"

    @property
    def nominal_kernel_time_us(self) -> float:
        """A crude serial-work estimate (blocks x per-block time).

        Only used for reporting; the simulated kernel time depends on how
        many SMs the scheduler gives the kernel.
        """
        return self.num_thread_blocks * self.avg_tb_time_us

    def scaled(self, tb_scale: float) -> "KernelSpec":
        """Return a copy with the thread-block count scaled by ``tb_scale``.

        Used by the reduced-scale experiment harness (DESIGN.md Sec. 3.6).
        Per-block execution times and resource usage are unchanged, so
        preemption latencies are preserved.
        """
        if tb_scale <= 0:
            raise ValueError("tb_scale must be positive")
        new_blocks = max(1, round(self.num_thread_blocks * tb_scale))
        return KernelSpec(
            name=self.name,
            benchmark=self.benchmark,
            num_thread_blocks=new_blocks,
            avg_tb_time_us=self.avg_tb_time_us,
            usage=self.usage,
            max_blocks_per_sm=self.max_blocks_per_sm,
            measured_kernel_time_us=self.measured_kernel_time_us,
            launches_per_run=self.launches_per_run,
        )


@dataclass
class KernelLaunch:
    """One dynamic invocation of a kernel by a process.

    The launch owns its thread blocks.  Blocks are materialised lazily by
    :meth:`next_thread_block` so that kernels with hundreds of thousands of
    blocks do not allocate them all up front.
    """

    spec: KernelSpec
    launch_id: int
    context_id: int
    process_name: str = ""
    stream_id: int = 0
    priority: int = 0
    #: DSS token budget assigned to the kernel's process (Sec. 3.4).
    tokens: int = 0
    #: Jitter generator for per-block execution times; ``None`` disables
    #: jitter (every block takes exactly ``avg_tb_time_us``).
    jitter: Optional[DeterministicJitter] = None
    #: Called once when the last thread block of the launch completes.
    on_complete: Optional[Callable[["KernelLaunch", float], None]] = None

    state: KernelState = KernelState.PENDING
    #: Time the host issued the launch command (set by the host model).
    issue_time_us: Optional[float] = None
    #: Time the launch was admitted to the active queue.
    activation_time_us: Optional[float] = None
    #: Time the last thread block completed.
    completion_time_us: Optional[float] = None

    _next_block_index: int = 0
    _completed_blocks: int = 0
    _blocks: Dict[int, ThreadBlock] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Thread-block management
    # ------------------------------------------------------------------
    def block_execution_time(self, block_index: int) -> float:
        """Deterministic execution time of block ``block_index``."""
        base = self.spec.avg_tb_time_us
        if self.jitter is None:
            return base
        return self.jitter.scaled(base, self.spec.qualified_name, self.launch_id, block_index)

    def next_thread_block(self) -> ThreadBlock:
        """Materialise the next never-issued thread block of this launch."""
        if not self.has_unissued_blocks:
            raise RuntimeError(f"kernel launch {self.describe()} has no unissued thread blocks")
        index = self._next_block_index
        self._next_block_index += 1
        block = ThreadBlock(
            kernel_launch_id=self.launch_id,
            block_index=index,
            execution_time_us=self.block_execution_time(index),
        )
        self._blocks[index] = block
        return block

    def take_fresh_blocks(self, count: int) -> List[ThreadBlock]:
        """Materialise up to ``count`` never-issued blocks (SM-driver bulk issue).

        Identical to calling :meth:`next_thread_block` ``count`` times (same
        indices, same deterministic execution times), without the per-block
        call overhead; returns fewer blocks when the grid runs out.
        """
        start = self._next_block_index
        end = min(start + count, self.spec.num_thread_blocks)
        if end <= start:
            return []
        self._next_block_index = end
        blocks_map = self._blocks
        launch_id = self.launch_id
        base = self.spec.avg_tb_time_us
        jitter = self.jitter
        out: List[ThreadBlock] = []
        if jitter is None:
            for index in range(start, end):
                block = ThreadBlock(launch_id, index, base)
                blocks_map[index] = block
                out.append(block)
        else:
            qualified = self.spec.qualified_name
            for index in range(start, end):
                block = ThreadBlock(
                    launch_id, index, jitter.scaled(base, qualified, launch_id, index)
                )
                blocks_map[index] = block
                out.append(block)
        return out

    def take_fresh_span(self, count: int) -> tuple[int, int]:
        """Claim up to ``count`` never-issued blocks *without* materialising.

        Returns ``(first_index, taken)``.  The vectorised issue path
        (:mod:`repro.gpu.blockrun`) represents the claimed span as one
        :class:`~repro.gpu.blockrun.BlockRun`; index assignment is identical
        to :meth:`take_fresh_blocks`, and :meth:`materialise_span` recreates
        the block objects on demand.
        """
        start = self._next_block_index
        end = min(start + count, self.spec.num_thread_blocks)
        self._next_block_index = end
        return start, end - start

    def materialise_span(
        self, first_index: int, count: int, *, sm_id: int, start_time_us: float
    ) -> List[ThreadBlock]:
        """Create the ThreadBlocks of a claimed span, running since ``start_time_us``.

        Produces exactly the objects the per-block path would hold at this
        point: registered with the launch, RUNNING on ``sm_id``, first/last
        start at the issue instant, execution times from
        :meth:`block_execution_time`.
        """
        blocks_map = self._blocks
        launch_id = self.launch_id
        out: List[ThreadBlock] = []
        for index in range(first_index, first_index + count):
            block = ThreadBlock(launch_id, index, self.block_execution_time(index))
            block.state = ThreadBlockState.RUNNING
            block.sm_id = sm_id
            block.first_start_time_us = start_time_us
            block.last_start_time_us = start_time_us
            blocks_map[index] = block
            out.append(block)
        return out

    def note_span_completed(self, count: int, now: float) -> None:
        """Record the completion of ``count`` never-materialised blocks.

        The O(1) bulk twin of :meth:`notify_block_completed` used when a
        whole :class:`~repro.gpu.blockrun.BlockRun` retires: each block
        would have contributed exactly one counter increment (their launch
        cannot finish mid-span; the driver falls back to the per-block path
        for a span that would finish the kernel, so the FINISHED transition
        always happens there — but handle it anyway for direct callers).
        """
        self._completed_blocks += count
        if self._completed_blocks > self.spec.num_thread_blocks:  # pragma: no cover
            raise RuntimeError("more thread blocks completed than the kernel has")
        if self.all_blocks_completed:
            self.state = KernelState.FINISHED
            self.completion_time_us = now
            if self.on_complete is not None:
                self.on_complete(self, now)

    def block(self, block_index: int) -> ThreadBlock:
        """Return an already-materialised block by index."""
        return self._blocks[block_index]

    def notify_block_completed(self, block: ThreadBlock, now: float) -> None:
        """Record the completion of one thread block.

        When the last block completes, the launch transitions to FINISHED and
        the ``on_complete`` callback (installed by the host model) fires.
        """
        if block.state is not ThreadBlockState.COMPLETED:
            raise ValueError("notify_block_completed called with a non-completed block")
        self._completed_blocks += 1
        if self._completed_blocks > self.spec.num_thread_blocks:  # pragma: no cover
            raise RuntimeError("more thread blocks completed than the kernel has")
        if self.all_blocks_completed:
            self.state = KernelState.FINISHED
            self.completion_time_us = now
            if self.on_complete is not None:
                self.on_complete(self, now)

    # ------------------------------------------------------------------
    # Progress queries
    # ------------------------------------------------------------------
    @property
    def has_unissued_blocks(self) -> bool:
        """Whether any block has never been issued to an SM."""
        return self._next_block_index < self.spec.num_thread_blocks

    @property
    def unissued_blocks(self) -> int:
        """Number of blocks that have never been issued to an SM."""
        return self.spec.num_thread_blocks - self._next_block_index

    @property
    def completed_blocks(self) -> int:
        """Number of blocks that have finished execution."""
        return self._completed_blocks

    @property
    def all_blocks_completed(self) -> bool:
        """Whether every thread block of the launch has completed."""
        return self._completed_blocks >= self.spec.num_thread_blocks

    @property
    def is_finished(self) -> bool:
        """Whether the launch is in the FINISHED state."""
        return self.state is KernelState.FINISHED

    def materialised_blocks(self) -> List[ThreadBlock]:
        """All blocks created so far (issued at least once)."""
        return list(self._blocks.values())

    def describe(self) -> str:
        """Short human-readable identifier used in error messages and logs."""
        return f"{self.spec.qualified_name}#{self.launch_id}(ctx={self.context_id})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelLaunch({self.describe()}, state={self.state.value}, "
            f"issued={self._next_block_index}/{self.spec.num_thread_blocks}, "
            f"done={self._completed_blocks})"
        )
