"""GPU contexts and the engine-level context table (paper Sec. 3.1).

Each process that uses the GPU gets its own GPU context, which contains the
page table of the GPU memory and the streams defined by the programmer.  To
support concurrent execution of kernels from different processes the paper
extends the execution engine with a *context table* holding the information
of all active contexts, and extends every SM with a context-id register and a
base page-table register so it can translate addresses for the context it is
currently executing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


@dataclass
class GPUContext:
    """Per-process GPU state.

    Attributes
    ----------
    context_id:
        Unique identifier assigned by the driver when the process first uses
        the GPU.
    process_name:
        Name of the owning host process (for reporting).
    page_table_base:
        Simulated physical address of the context's top-level page table.
        The value itself carries no meaning beyond being distinct per context
        — the memory model in :mod:`repro.memory.address_space` does the
        actual bookkeeping — but SMs load it into their base page-table
        register during setup, exactly as in the paper.
    priority:
        Scheduling priority of the owning process (higher is more important).
    tokens:
        DSS token budget of the owning process (Sec. 3.4).
    """

    context_id: int
    process_name: str
    page_table_base: int = 0
    priority: int = 0
    tokens: int = 0
    #: Registered kernels (name -> opaque handle); mirrors the "GPU kernels
    #: registered by the process" held in the global control registers.
    registered_kernels: Dict[str, int] = field(default_factory=dict)

    def register_kernel(self, name: str) -> int:
        """Register a kernel name with the context, returning its handle."""
        if name not in self.registered_kernels:
            self.registered_kernels[name] = len(self.registered_kernels) + 1
        return self.registered_kernels[name]


class ContextTable:
    """Bounded table of active GPU contexts in the execution engine.

    The baseline architecture only tracks a single context in its global
    control registers; the paper's extension turns that into a table so that
    kernels from different processes can execute concurrently on disjoint
    sets of SMs.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("context table capacity must be at least 1")
        self._capacity = capacity
        self._contexts: Dict[int, GPUContext] = {}
        self._next_id = 1

    @property
    def capacity(self) -> int:
        """Maximum number of simultaneously registered contexts."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._contexts)

    def __iter__(self) -> Iterator[GPUContext]:
        return iter(self._contexts.values())

    def __contains__(self, context_id: int) -> bool:
        return context_id in self._contexts

    def create(self, process_name: str, *, priority: int = 0, tokens: int = 0) -> GPUContext:
        """Create and register a new context for ``process_name``."""
        if len(self._contexts) >= self._capacity:
            raise RuntimeError("context table is full")
        context_id = self._next_id
        self._next_id += 1
        context = GPUContext(
            context_id=context_id,
            process_name=process_name,
            page_table_base=0x1000_0000 + context_id * 0x10_0000,
            priority=priority,
            tokens=tokens,
        )
        self._contexts[context_id] = context
        return context

    def get(self, context_id: int) -> GPUContext:
        """Look up a context by id, raising ``KeyError`` if absent."""
        return self._contexts[context_id]

    def find(self, context_id: int) -> Optional[GPUContext]:
        """Look up a context by id, returning ``None`` if absent."""
        return self._contexts.get(context_id)

    def destroy(self, context_id: int) -> None:
        """Remove a context (process teardown)."""
        self._contexts.pop(context_id, None)

    def by_process(self, process_name: str) -> Optional[GPUContext]:
        """Find the context owned by ``process_name`` (if any)."""
        for context in self._contexts.values():
            if context.process_name == process_name:
                return context
        return None
