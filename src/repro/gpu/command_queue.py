"""GPU commands and hardware command queues (paper Fig. 1, blocks 6-7).

The host CPU issues *commands* (kernel launches, data transfers) to the GPU
through a set of hardware command queues (NVIDIA Hyper-Q).  The device driver
maps software streams onto hardware queues; commands within one queue execute
sequentially (stream semantics), commands in different queues may execute
concurrently if they target different engines.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from repro.gpu.kernel import KernelLaunch

_COMMAND_IDS = itertools.count(1)


class TransferDirection(enum.Enum):
    """Direction of a DMA transfer across the PCIe bus."""

    HOST_TO_DEVICE = "h2d"
    DEVICE_TO_HOST = "d2h"


@dataclass
class Command:
    """Base class for GPU commands.

    A command belongs to one GPU context and one software stream.  Completion
    listeners are invoked exactly once, when the engine executing the command
    reports completion.
    """

    context_id: int
    stream_id: int
    process_name: str = ""
    priority: int = 0
    enqueue_time_us: Optional[float] = None
    command_id: int = field(default_factory=lambda: next(_COMMAND_IDS))
    issue_time_us: Optional[float] = None
    completion_time_us: Optional[float] = None
    _listeners: List[Callable[[float], None]] = field(default_factory=list)

    @property
    def engine(self) -> str:
        """Name of the engine the command targets ('execution' or 'transfer')."""
        raise NotImplementedError

    @property
    def is_complete(self) -> bool:
        """Whether the command has completed."""
        return self.completion_time_us is not None

    def subscribe_completion(self, listener: Callable[[float], None]) -> None:
        """Register ``listener(now)`` to fire when the command completes."""
        if self.is_complete:
            raise RuntimeError("cannot subscribe to an already-completed command")
        self._listeners.append(listener)

    def complete(self, now: float) -> None:
        """Mark the command complete and notify listeners (exactly once)."""
        if self.is_complete:
            raise RuntimeError(f"command {self.command_id} completed twice")
        self.completion_time_us = now
        listeners, self._listeners = self._listeners, []
        for listener in listeners:
            listener(now)


@dataclass
class KernelCommand(Command):
    """A kernel-launch command targeting the execution engine."""

    launch: KernelLaunch = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.launch is None:
            raise ValueError("KernelCommand requires a KernelLaunch")

    @property
    def engine(self) -> str:
        return "execution"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelCommand(id={self.command_id}, {self.launch.describe()})"


@dataclass
class TransferCommand(Command):
    """A DMA data-transfer command targeting the data-transfer engine."""

    size_bytes: int = 0
    direction: TransferDirection = TransferDirection.HOST_TO_DEVICE

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("transfer size must be non-negative")

    @property
    def engine(self) -> str:
        return "transfer"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransferCommand(id={self.command_id}, {self.direction.value}, "
            f"{self.size_bytes}B, ctx={self.context_id})"
        )


class HardwareQueue:
    """One hardware command queue (Hyper-Q slot).

    The command dispatcher inspects the head of the queue.  After issuing the
    head command to an engine the queue is *disabled* until that engine
    reports completion, which preserves the in-order semantics of the stream
    mapped to the queue.
    """

    def __init__(self, queue_id: int):
        self.queue_id = queue_id
        self._commands: Deque[Command] = deque()
        #: Command currently being executed by an engine (queue disabled).
        self.in_flight: Optional[Command] = None
        #: Total commands that ever passed through the queue.
        self.total_enqueued = 0

    def push(self, command: Command, now: float) -> None:
        """Append a command to the tail of the queue."""
        command.enqueue_time_us = now
        self._commands.append(command)
        self.total_enqueued += 1

    def head(self) -> Optional[Command]:
        """The command at the head of the queue (without removing it)."""
        return self._commands[0] if self._commands else None

    def pop(self) -> Command:
        """Remove and return the head command."""
        return self._commands.popleft()

    @property
    def enabled(self) -> bool:
        """Whether the dispatcher may inspect this queue."""
        return self.in_flight is None

    @property
    def empty(self) -> bool:
        """Whether the queue holds no waiting commands."""
        return not self._commands

    @property
    def depth(self) -> int:
        """Number of waiting commands (excluding the in-flight one)."""
        return len(self._commands)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "blocked"
        return f"HardwareQueue(id={self.queue_id}, depth={self.depth}, {state})"
