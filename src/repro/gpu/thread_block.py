"""Thread blocks: the unit of work the SM driver issues to SMs.

The paper's simulation (and ours) works at thread-block granularity: a block
occupies its share of an SM's resources for its execution time, may be
preempted by the context-switch mechanism (saving its remaining work), and is
independent of every other block, so it can be re-issued to any SM later.
"""

from __future__ import annotations

import enum
from typing import Optional


class ThreadBlockState(enum.Enum):
    """Lifecycle of a thread block."""

    #: Created but not currently resident on any SM (never issued, or
    #: preempted and waiting in a PTBQ).
    PENDING = "pending"
    #: Resident and executing on an SM.
    RUNNING = "running"
    #: Preempted by the context-switch mechanism; waiting to be re-issued.
    PREEMPTED = "preempted"
    #: Finished execution.
    COMPLETED = "completed"


class ThreadBlock:
    """One thread block of a kernel launch.

    A plain ``__slots__`` class: large-GPU scenarios materialise hundreds of
    thousands of blocks, and block attribute access sits on the SM's
    completion hot path.

    Attributes
    ----------
    kernel_launch_id:
        Identifier of the owning :class:`~repro.gpu.kernel.KernelLaunch`.
    block_index:
        Index of the block within its kernel grid.
    execution_time_us:
        Total execution time the block needs on an SM (traced time with
        deterministic jitter applied).
    remaining_time_us:
        Work left to do.  Equal to ``execution_time_us`` until the block is
        preempted mid-flight by a context switch.
    key:
        ``(launch id, block index)`` pair identifying the block (precomputed:
        both components are immutable).
    """

    __slots__ = (
        "kernel_launch_id",
        "block_index",
        "execution_time_us",
        "remaining_time_us",
        "state",
        "sm_id",
        "first_start_time_us",
        "last_start_time_us",
        "completion_time_us",
        "preemption_count",
        "key",
    )

    def __init__(
        self,
        kernel_launch_id: int,
        block_index: int,
        execution_time_us: float,
        remaining_time_us: Optional[float] = None,
        state: ThreadBlockState = ThreadBlockState.PENDING,
        sm_id: Optional[int] = None,
        first_start_time_us: Optional[float] = None,
        last_start_time_us: Optional[float] = None,
        completion_time_us: Optional[float] = None,
        preemption_count: int = 0,
    ):
        if execution_time_us <= 0:
            raise ValueError("execution_time_us must be positive")
        self.kernel_launch_id = kernel_launch_id
        self.block_index = block_index
        self.execution_time_us = execution_time_us
        self.remaining_time_us = (
            execution_time_us if remaining_time_us is None else remaining_time_us
        )
        self.state = state
        #: SM the block is currently resident on (``None`` when not resident).
        self.sm_id = sm_id
        #: Simulation time the block first started executing.
        self.first_start_time_us = first_start_time_us
        #: Simulation time the block last (re)started executing.
        self.last_start_time_us = last_start_time_us
        #: Simulation time the block completed.
        self.completion_time_us = completion_time_us
        #: How many times the block has been preempted by a context switch.
        self.preemption_count = preemption_count
        self.key = (kernel_launch_id, block_index)

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def start(self, sm_id: int, now: float) -> None:
        """Mark the block as running on ``sm_id`` starting at ``now``."""
        if self.state not in (ThreadBlockState.PENDING, ThreadBlockState.PREEMPTED):
            raise ValueError(f"cannot start a block in state {self.state}")
        self.state = ThreadBlockState.RUNNING
        self.sm_id = sm_id
        self.last_start_time_us = now
        if self.first_start_time_us is None:
            self.first_start_time_us = now

    def preempt(self, now: float) -> None:
        """Preempt the running block (context-switch mechanism).

        The remaining work is computed from the time executed since the last
        (re)start; the block returns to the PREEMPTED state and leaves its SM.
        """
        if self.state is not ThreadBlockState.RUNNING:
            raise ValueError(f"cannot preempt a block in state {self.state}")
        if self.last_start_time_us is None:  # pragma: no cover - defensive
            raise RuntimeError("running block has no start time")
        executed = now - self.last_start_time_us
        self.remaining_time_us = max(0.0, self.remaining_time_us - executed)
        self.state = ThreadBlockState.PREEMPTED
        self.sm_id = None
        self.preemption_count += 1

    def complete(self, now: float) -> None:
        """Mark the block as completed at ``now``."""
        if self.state is not ThreadBlockState.RUNNING:
            raise ValueError(f"cannot complete a block in state {self.state}")
        self.state = ThreadBlockState.COMPLETED
        self.remaining_time_us = 0.0
        self.completion_time_us = now
        self.sm_id = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_resident(self) -> bool:
        """Whether the block currently occupies SM resources."""
        return self.state is ThreadBlockState.RUNNING

    @property
    def was_preempted(self) -> bool:
        """Whether the block has ever been preempted."""
        return self.preemption_count > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThreadBlock(launch={self.kernel_launch_id}, idx={self.block_index}, "
            f"state={self.state.value}, remaining={self.remaining_time_us:.2f}us)"
        )
