"""The execution engine: SMs + SM driver + scheduling framework + policy.

This module ties together the substrate pieces (SMs, the SM driver, the
scheduling framework) with the paper's contribution (preemption mechanisms
and scheduling policies).  The engine exposes three interfaces:

* :class:`~repro.gpu.dispatcher.CommandSink` — the command dispatcher pushes
  kernel commands into the engine's per-context command buffers.
* ``ExecutionEngineOps`` (see :mod:`repro.core.policies.base`) — scheduling
  policies admit kernels, set up idle SMs and reserve running SMs.
* ``PreemptionHost`` (see :mod:`repro.core.preemption.base`) — preemption
  mechanisms schedule their latencies and hand back evicted thread blocks.

Preemption is mechanism-per-request: every reservation builds a
:class:`~repro.core.preemption.controller.PreemptionRequest` and asks the
engine's :class:`~repro.core.preemption.controller.PreemptionController`
which mechanism frees *this* SM *this* time.  The engine keeps one bound
instance per mechanism name (created lazily through
:data:`repro.registry.MECHANISMS`) and tracks the in-flight mechanism per SM
so completions, natural block completions and restores route to the
mechanism that actually owns the preemption.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.framework.framework import SchedulingFramework
from repro.core.framework.tables import KernelStatusEntry
from repro.core.policies.base import SchedulingPolicy
from repro.core.preemption.base import PreemptionMechanism
from repro.core.preemption.controller import (
    PreemptionController,
    PreemptionRequest,
    ResidentBlockInfo,
    StaticController,
)
from repro.gpu.command_queue import Command, KernelCommand
from repro.gpu.config import SystemConfig
from repro.gpu.context import ContextTable, GPUContext
from repro.gpu.kernel import KernelLaunch
from repro.gpu.resources import OccupancyCalculator
from repro.gpu.sm import SMState, StreamingMultiprocessor, WaveAnchor
from repro.gpu.sm_driver import SMDriver
from repro.gpu.thread_block import ThreadBlock
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry


class ExecutionEngine:
    """The GPU execution engine with multiprogramming extensions."""

    def __init__(
        self,
        simulator: Simulator,
        config: SystemConfig,
        *,
        policy: SchedulingPolicy,
        mechanism: PreemptionMechanism,
        controller: Optional[PreemptionController] = None,
        context_table: Optional[ContextTable] = None,
    ):
        self._sim = simulator
        self._config = config
        self.policy = policy
        #: Default preemption mechanism: the ``static`` controller's choice
        #: and the fallback for restores whose evicting mechanism is unknown.
        self.mechanism = mechanism
        #: Per-request mechanism selector (default: static = legacy behaviour).
        self.controller = (
            controller
            if controller is not None
            else StaticController(mechanism=mechanism.name)
        )
        #: Bound mechanism instances, keyed by mechanism name.
        self._mechanisms: Dict[str, PreemptionMechanism] = {mechanism.name: mechanism}
        #: SM id -> mechanism handling the SM's in-flight preemption.
        self._inflight_mechanisms: Dict[int, PreemptionMechanism] = {}
        #: Block key -> mechanism that evicted it (consulted for restores).
        self._evicted_by: Dict[Tuple[int, int], PreemptionMechanism] = {}
        self.context_table = context_table if context_table is not None else ContextTable()

        self.controller.bind(self)
        self.framework = SchedulingFramework(config)
        self.occupancy = OccupancyCalculator(config.gpu)
        #: Shared wave-joining anchor: same-instant block completions across
        #: the whole engine may merge into one heap event (see
        #: :class:`~repro.gpu.sm.WaveAnchor`).
        self._wave_anchor = WaveAnchor()
        self._sms: List[StreamingMultiprocessor] = [
            StreamingMultiprocessor(i, config.gpu, simulator, wave_anchor=self._wave_anchor)
            for i in range(config.gpu.num_sms)
        ]
        self.sm_driver = SMDriver(self)
        self.stats = StatRegistry()
        self._backpressure_callbacks: List[Callable[[], None]] = []
        #: Completed kernel launches, in completion order (for reporting).
        self.completed_launches: List[KernelLaunch] = []
        #: Optional instrumentation sink (see :mod:`repro.validation`),
        #: notified of preemption completions and kernel completions; it must
        #: never mutate simulation state.
        self.observer: Optional[object] = None

        policy.bind(self)
        mechanism.bind(self)

    # ------------------------------------------------------------------
    # Properties shared with policies and mechanisms
    # ------------------------------------------------------------------
    @property
    def simulator(self) -> Simulator:
        """The shared discrete-event simulator."""
        return self._sim

    @property
    def system_config(self) -> SystemConfig:
        """The system configuration."""
        return self._config

    @property
    def num_sms(self) -> int:
        """Number of SMs in the execution engine."""
        return len(self._sms)

    def sm(self, sm_id: int) -> StreamingMultiprocessor:
        """The SM with the given id."""
        return self._sms[sm_id]

    def sms(self) -> List[StreamingMultiprocessor]:
        """All SMs (index == sm_id)."""
        return list(self._sms)

    def context_for(self, context_id: int) -> Optional[GPUContext]:
        """Look up a GPU context by id (``None`` if unknown)."""
        return self.context_table.find(context_id)

    # ------------------------------------------------------------------
    # CommandSink interface (used by the command dispatcher)
    # ------------------------------------------------------------------
    def submit(self, command: Command) -> bool:
        """Accept a kernel command into its context's command buffer."""
        if not isinstance(command, KernelCommand):
            raise TypeError("the execution engine only accepts kernel commands")
        accepted = self.framework.buffer_command(command)
        if accepted:
            self.stats.counter("kernel_commands_accepted").add()
            self.policy.on_command_buffered(command)
        return accepted

    def register_backpressure_callback(self, callback: Callable[[], None]) -> None:
        """Register a callback invoked whenever a command buffer frees up."""
        self._backpressure_callbacks.append(callback)

    def _notify_backpressure(self) -> None:
        for callback in self._backpressure_callbacks:
            callback()

    # ------------------------------------------------------------------
    # ExecutionEngineOps interface (used by scheduling policies)
    # ------------------------------------------------------------------
    def activate_command(self, command: KernelCommand) -> KernelStatusEntry:
        """Admit a buffered kernel command into the active queue and KSRT."""
        spec = command.launch.spec
        occupancy = self.occupancy.blocks_per_sm(
            spec.usage, max_blocks_hint=spec.max_blocks_per_sm
        )
        entry = self.framework.activate_command(
            command,
            now=self._sim.now,
            blocks_per_sm=occupancy.blocks_per_sm,
            shared_memory_config=occupancy.shared_memory_config,
        )
        self.stats.counter("kernels_activated").add()
        if self.observer is not None:
            self.observer.on_kernel_activated(entry)
        # The command buffer for this context is now free: the dispatcher may
        # deliver the next command (e.g. a queued launch from another stream).
        self._notify_backpressure()
        return entry

    def setup_sm(self, sm_id: int, ksr_index: int) -> None:
        """Set up an idle SM for an active kernel (policy operation)."""
        self.sm_driver.setup_sm(sm_id, ksr_index)

    def reserve_sm(self, sm_id: int, next_ksr_index: Optional[int]) -> None:
        """Reserve a running SM for another kernel (policy operation).

        The preemption controller is consulted with a fresh
        :class:`PreemptionRequest`; the chosen mechanism owns this SM's
        preemption until it calls :meth:`preemption_complete`.
        """
        self.framework.mark_sm_reserved(sm_id, next_ksr_index)
        sm = self._sms[sm_id]
        sm.state = SMState.RESERVED
        self.stats.counter("sm_reservations").add()
        # Request-independent controllers (static) skip the snapshot: the
        # legacy hot path pays no per-preemption bookkeeping it would discard.
        request = (
            self.build_preemption_request(sm_id, next_ksr_index)
            if self.controller.needs_request
            else None
        )
        mechanism = self.mechanism_named(self.controller.decide(request))
        self._inflight_mechanisms[sm_id] = mechanism
        self.stats.counter(f"preemptions_via.{mechanism.name}").add()
        if self.observer is not None:
            # Before initiate(): observers see the request strictly before
            # any save/complete notification of the same preemption.
            self.observer.on_sm_reserved(sm, next_ksr_index, mechanism)
        mechanism.initiate(sm)

    def update_reservation(self, sm_id: int, next_ksr_index: Optional[int]) -> None:
        """Re-target an in-flight reservation (paper Sec. 3.4 optimisation)."""
        self.framework.update_sm_reservation(sm_id, next_ksr_index)

    # ------------------------------------------------------------------
    # Per-request preemption routing
    # ------------------------------------------------------------------
    def mechanism_named(self, name: str) -> PreemptionMechanism:
        """The bound mechanism instance for ``name`` (created lazily).

        Mechanism names and aliases resolve through
        :data:`repro.registry.MECHANISMS`; every engine keeps at most one
        bound instance per canonical name, so per-mechanism statistics
        (latencies, save bytes) accumulate in one place.
        """
        from repro.registry import MECHANISMS  # local: avoids import cycle

        mechanism = self._mechanisms.get(name)
        if mechanism is not None:
            return mechanism
        canonical = MECHANISMS.canonical_name(name)
        mechanism = self._mechanisms.get(canonical)
        if mechanism is None:
            mechanism = MECHANISMS.create(canonical)
            mechanism.bind(self)
            self._mechanisms[canonical] = mechanism
        # Cache the alias so repeated decisions stay a dict hit.
        self._mechanisms[name] = mechanism
        return mechanism

    def mechanisms(self) -> Dict[str, PreemptionMechanism]:
        """Bound mechanism instances, keyed by canonical name."""
        return {
            name: mechanism
            for name, mechanism in self._mechanisms.items()
            if mechanism.name == name
        }

    def mechanism_for_sm(self, sm_id: int) -> PreemptionMechanism:
        """The mechanism owning the SM's in-flight preemption (or the default)."""
        return self._inflight_mechanisms.get(sm_id, self.mechanism)

    def build_preemption_request(
        self, sm_id: int, next_ksr_index: Optional[int]
    ) -> PreemptionRequest:
        """Snapshot the decision context of one preemption request.

        Pure bookkeeping over the hardware tables — building a request never
        schedules events or mutates model state, so controllers can be
        consulted (and re-consulted, e.g. by tests) without perturbing the
        simulation.
        """
        now = self._sim.now
        framework = self.framework
        gpu = self._config.gpu
        sm = self._sms[sm_id]

        resident: List[ResidentBlockInfo] = []
        save_bytes = 0
        estimated_drain = 0.0
        for block in sm.resident():
            started = block.last_start_time_us if block.last_start_time_us is not None else now
            remaining = max(0.0, block.remaining_time_us - (now - started))
            estimated_drain = max(estimated_drain, remaining)
            state_bytes = 0
            ksr_index = framework.ksr_index_for_launch(block.kernel_launch_id)
            if ksr_index is not None:
                usage = framework.ksr(ksr_index).launch.spec.usage
                state_bytes = usage.state_bytes_per_block
            save_bytes += state_bytes
            resident.append(
                ResidentBlockInfo(
                    kernel_launch_id=block.kernel_launch_id,
                    block_index=block.block_index,
                    estimated_remaining_us=remaining,
                    state_bytes=state_bytes,
                )
            )
        resident.sort(key=lambda info: (info.kernel_launch_id, info.block_index))

        bandwidth = gpu.per_sm_bandwidth_bytes_per_us
        save_time = save_bytes / bandwidth
        incoming_priority = framework.priority_of(next_ksr_index)
        resident_priority = framework.priority_of(framework.sm_entry(sm_id).ksr_index)
        return PreemptionRequest(
            sm_id=sm_id,
            now=now,
            resident=tuple(resident),
            incoming_ksr_index=next_ksr_index,
            incoming_priority=incoming_priority,
            resident_priority=resident_priority,
            estimated_drain_us=estimated_drain,
            save_bytes=save_bytes,
            save_time_us=save_time,
            restore_time_us=save_time,
            pipeline_drain_us=gpu.pipeline_drain_latency_us,
            latency_budget_us=self._config.scheduler.preemption_latency_budget_us,
            config=self._config,
        )

    def restore_latency_us(self, block: ThreadBlock, state_bytes_per_block: int) -> float:
        """Restore cost of a previously preempted block, per its evictor.

        Routed to the mechanism that evicted the block (only the context
        switch produces preempted state today); the engine's default
        mechanism answers when the evictor is unknown, which preserves the
        legacy single-mechanism behaviour exactly.
        """
        mechanism = self._evicted_by.pop(block.key, None)
        if mechanism is None:
            mechanism = self.mechanism
        return mechanism.restore_latency_us(block, state_bytes_per_block)

    # ------------------------------------------------------------------
    # PreemptionHost interface (used by preemption mechanisms)
    # ------------------------------------------------------------------
    def preemption_complete(self, sm_id: int, evicted_blocks: List[ThreadBlock]) -> None:
        """The mechanism finished freeing ``sm_id``."""
        mechanism = self._inflight_mechanisms.pop(sm_id, self.mechanism)
        self.stats.counter("preemptions_completed").add()
        if evicted_blocks:
            self.stats.counter("thread_blocks_evicted").add(len(evicted_blocks))
            for block in evicted_blocks:
                self._evicted_by[block.key] = mechanism
        if self.observer is not None:
            self.observer.on_preemption_complete(self._sms[sm_id], evicted_blocks, mechanism)
        self.sm_driver.complete_preemption(sm_id, evicted_blocks)

    # ------------------------------------------------------------------
    # Notifications from the SM driver
    # ------------------------------------------------------------------
    def notify_sm_idle(self, sm_id: int, owner_ksr_index: Optional[int]) -> None:
        """An SM was released to the idle pool; inform the policy."""
        self.stats.counter("sm_idle_events").add()
        self.policy.on_sm_idle(sm_id, owner_ksr_index)

    def finish_kernel(self, ksr_index: int) -> None:
        """All thread blocks of an active kernel completed."""
        entry = self.framework.ksr(ksr_index)
        command = self.framework.finish_kernel(ksr_index)
        self.completed_launches.append(entry.launch)
        self.stats.counter("kernels_completed").add()
        if self.observer is not None:
            self.observer.on_kernel_finished(entry.launch)
        # Notify the host process and the command dispatcher first (the
        # stream that issued this kernel may immediately issue its next
        # command), then let the policy react to the freed resources.
        command.complete(self._sim.now)
        self.policy.on_kernel_finished(ksr_index, entry)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def busy_sm_count(self) -> int:
        """Number of SMs currently holding at least one thread block."""
        return sum(1 for sm in self._sms if not sm.is_empty)

    def utilization_snapshot(self) -> Dict[str, float]:
        """Aggregate utilisation and bookkeeping statistics."""
        now = self._sim.now
        per_sm = [sm.busy_fraction(now) for sm in self._sms]
        out = dict(self.stats.snapshot())
        out["mean_sm_utilization"] = sum(per_sm) / len(per_sm) if per_sm else 0.0
        out["blocks_executed"] = float(sum(sm.blocks_executed for sm in self._sms))
        out["blocks_preempted"] = float(sum(sm.blocks_preempted for sm in self._sms))
        out["block_completion_events"] = float(
            sum(sm.completion_waves_fired for sm in self._sms)
        )
        out.update({f"framework.{k}": v for k, v in self.framework.snapshot().items()})
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionEngine(sms={self.num_sms}, policy={self.policy.name}, "
            f"controller={self.controller.name}, mechanism={self.mechanism.name})"
        )
