"""The execution engine: SMs + SM driver + scheduling framework + policy.

This module ties together the substrate pieces (SMs, the SM driver, the
scheduling framework) with the paper's contribution (preemption mechanisms
and scheduling policies).  The engine exposes three interfaces:

* :class:`~repro.gpu.dispatcher.CommandSink` — the command dispatcher pushes
  kernel commands into the engine's per-context command buffers.
* ``ExecutionEngineOps`` (see :mod:`repro.core.policies.base`) — scheduling
  policies admit kernels, set up idle SMs and reserve running SMs.
* ``PreemptionHost`` (see :mod:`repro.core.preemption.base`) — preemption
  mechanisms schedule their latencies and hand back evicted thread blocks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.framework.framework import SchedulingFramework
from repro.core.framework.tables import KernelStatusEntry
from repro.core.policies.base import SchedulingPolicy
from repro.core.preemption.base import PreemptionMechanism
from repro.gpu.command_queue import Command, KernelCommand
from repro.gpu.config import SystemConfig
from repro.gpu.context import ContextTable, GPUContext
from repro.gpu.kernel import KernelLaunch
from repro.gpu.resources import OccupancyCalculator
from repro.gpu.sm import SMState, StreamingMultiprocessor
from repro.gpu.sm_driver import SMDriver
from repro.gpu.thread_block import ThreadBlock
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry


class ExecutionEngine:
    """The GPU execution engine with multiprogramming extensions."""

    def __init__(
        self,
        simulator: Simulator,
        config: SystemConfig,
        *,
        policy: SchedulingPolicy,
        mechanism: PreemptionMechanism,
        context_table: Optional[ContextTable] = None,
    ):
        self._sim = simulator
        self._config = config
        self.policy = policy
        self.mechanism = mechanism
        self.context_table = context_table if context_table is not None else ContextTable()

        self.framework = SchedulingFramework(config)
        self.occupancy = OccupancyCalculator(config.gpu)
        self._sms: List[StreamingMultiprocessor] = [
            StreamingMultiprocessor(i, config.gpu, simulator) for i in range(config.gpu.num_sms)
        ]
        self.sm_driver = SMDriver(self)
        self.stats = StatRegistry()
        self._backpressure_callbacks: List[Callable[[], None]] = []
        #: Completed kernel launches, in completion order (for reporting).
        self.completed_launches: List[KernelLaunch] = []
        #: Optional instrumentation sink (see :mod:`repro.validation`),
        #: notified of preemption completions and kernel completions; it must
        #: never mutate simulation state.
        self.observer: Optional[object] = None

        policy.bind(self)
        mechanism.bind(self)

    # ------------------------------------------------------------------
    # Properties shared with policies and mechanisms
    # ------------------------------------------------------------------
    @property
    def simulator(self) -> Simulator:
        """The shared discrete-event simulator."""
        return self._sim

    @property
    def system_config(self) -> SystemConfig:
        """The system configuration."""
        return self._config

    @property
    def num_sms(self) -> int:
        """Number of SMs in the execution engine."""
        return len(self._sms)

    def sm(self, sm_id: int) -> StreamingMultiprocessor:
        """The SM with the given id."""
        return self._sms[sm_id]

    def sms(self) -> List[StreamingMultiprocessor]:
        """All SMs (index == sm_id)."""
        return list(self._sms)

    def context_for(self, context_id: int) -> Optional[GPUContext]:
        """Look up a GPU context by id (``None`` if unknown)."""
        return self.context_table.find(context_id)

    # ------------------------------------------------------------------
    # CommandSink interface (used by the command dispatcher)
    # ------------------------------------------------------------------
    def submit(self, command: Command) -> bool:
        """Accept a kernel command into its context's command buffer."""
        if not isinstance(command, KernelCommand):
            raise TypeError("the execution engine only accepts kernel commands")
        accepted = self.framework.buffer_command(command)
        if accepted:
            self.stats.counter("kernel_commands_accepted").add()
            self.policy.on_command_buffered(command)
        return accepted

    def register_backpressure_callback(self, callback: Callable[[], None]) -> None:
        """Register a callback invoked whenever a command buffer frees up."""
        self._backpressure_callbacks.append(callback)

    def _notify_backpressure(self) -> None:
        for callback in self._backpressure_callbacks:
            callback()

    # ------------------------------------------------------------------
    # ExecutionEngineOps interface (used by scheduling policies)
    # ------------------------------------------------------------------
    def activate_command(self, command: KernelCommand) -> KernelStatusEntry:
        """Admit a buffered kernel command into the active queue and KSRT."""
        spec = command.launch.spec
        occupancy = self.occupancy.blocks_per_sm(
            spec.usage, max_blocks_hint=spec.max_blocks_per_sm
        )
        entry = self.framework.activate_command(
            command,
            now=self._sim.now,
            blocks_per_sm=occupancy.blocks_per_sm,
            shared_memory_config=occupancy.shared_memory_config,
        )
        self.stats.counter("kernels_activated").add()
        if self.observer is not None:
            self.observer.on_kernel_activated(entry)
        # The command buffer for this context is now free: the dispatcher may
        # deliver the next command (e.g. a queued launch from another stream).
        self._notify_backpressure()
        return entry

    def setup_sm(self, sm_id: int, ksr_index: int) -> None:
        """Set up an idle SM for an active kernel (policy operation)."""
        self.sm_driver.setup_sm(sm_id, ksr_index)

    def reserve_sm(self, sm_id: int, next_ksr_index: Optional[int]) -> None:
        """Reserve a running SM for another kernel (policy operation)."""
        self.framework.mark_sm_reserved(sm_id, next_ksr_index)
        sm = self._sms[sm_id]
        sm.state = SMState.RESERVED
        self.stats.counter("sm_reservations").add()
        if self.observer is not None:
            # Before initiate(): observers see the request strictly before
            # any save/complete notification of the same preemption.
            self.observer.on_sm_reserved(sm, next_ksr_index)
        self.mechanism.initiate(sm)

    def update_reservation(self, sm_id: int, next_ksr_index: Optional[int]) -> None:
        """Re-target an in-flight reservation (paper Sec. 3.4 optimisation)."""
        self.framework.update_sm_reservation(sm_id, next_ksr_index)

    # ------------------------------------------------------------------
    # PreemptionHost interface (used by preemption mechanisms)
    # ------------------------------------------------------------------
    def preemption_complete(self, sm_id: int, evicted_blocks: List[ThreadBlock]) -> None:
        """The mechanism finished freeing ``sm_id``."""
        self.stats.counter("preemptions_completed").add()
        if evicted_blocks:
            self.stats.counter("thread_blocks_evicted").add(len(evicted_blocks))
        if self.observer is not None:
            self.observer.on_preemption_complete(self._sms[sm_id], evicted_blocks, self.mechanism)
        self.sm_driver.complete_preemption(sm_id, evicted_blocks)

    # ------------------------------------------------------------------
    # Notifications from the SM driver
    # ------------------------------------------------------------------
    def notify_sm_idle(self, sm_id: int, owner_ksr_index: Optional[int]) -> None:
        """An SM was released to the idle pool; inform the policy."""
        self.stats.counter("sm_idle_events").add()
        self.policy.on_sm_idle(sm_id, owner_ksr_index)

    def finish_kernel(self, ksr_index: int) -> None:
        """All thread blocks of an active kernel completed."""
        entry = self.framework.ksr(ksr_index)
        command = self.framework.finish_kernel(ksr_index)
        self.completed_launches.append(entry.launch)
        self.stats.counter("kernels_completed").add()
        if self.observer is not None:
            self.observer.on_kernel_finished(entry.launch)
        # Notify the host process and the command dispatcher first (the
        # stream that issued this kernel may immediately issue its next
        # command), then let the policy react to the freed resources.
        command.complete(self._sim.now)
        self.policy.on_kernel_finished(ksr_index, entry)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def busy_sm_count(self) -> int:
        """Number of SMs currently holding at least one thread block."""
        return sum(1 for sm in self._sms if not sm.is_empty)

    def utilization_snapshot(self) -> Dict[str, float]:
        """Aggregate utilisation and bookkeeping statistics."""
        now = self._sim.now
        per_sm = [sm.busy_fraction(now) for sm in self._sms]
        out = dict(self.stats.snapshot())
        out["mean_sm_utilization"] = sum(per_sm) / len(per_sm) if per_sm else 0.0
        out["blocks_executed"] = float(sum(sm.blocks_executed for sm in self._sms))
        out["blocks_preempted"] = float(sum(sm.blocks_preempted for sm in self._sms))
        out.update({f"framework.{k}": v for k, v in self.framework.snapshot().items()})
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionEngine(sms={self.num_sms}, policy={self.policy.name}, "
            f"mechanism={self.mechanism.name})"
        )
