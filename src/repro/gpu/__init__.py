"""GPU execution-engine substrate.

This package models the NVIDIA GK110 (Kepler)-class GPU the paper assumes as
its baseline (Figure 1 of the paper): the hardware configuration
(:mod:`repro.gpu.config`), static resource partitioning and occupancy rules
(:mod:`repro.gpu.resources`), kernels and thread blocks
(:mod:`repro.gpu.kernel`, :mod:`repro.gpu.thread_block`), the Streaming
Multiprocessor (:mod:`repro.gpu.sm`), the SM driver that issues thread blocks
and performs preemption bookkeeping (:mod:`repro.gpu.sm_driver`), GPU
contexts (:mod:`repro.gpu.context`), hardware command queues and the command
dispatcher (:mod:`repro.gpu.command_queue`, :mod:`repro.gpu.dispatcher`), and
the execution engine that ties everything together
(:mod:`repro.gpu.execution_engine`).
"""

from repro.gpu.config import GPUConfig, PCIeConfig, SystemConfig
from repro.gpu.kernel import KernelLaunch, KernelSpec, KernelState
from repro.gpu.resources import OccupancyCalculator, OccupancyResult, ResourceUsage
from repro.gpu.thread_block import ThreadBlock, ThreadBlockState

__all__ = [
    "GPUConfig",
    "PCIeConfig",
    "SystemConfig",
    "KernelSpec",
    "KernelLaunch",
    "KernelState",
    "OccupancyCalculator",
    "OccupancyResult",
    "ResourceUsage",
    "ThreadBlock",
    "ThreadBlockState",
]
