"""Small shared utilities (deterministic pseudo-randomness, formatting)."""

from repro.utils.determinism import DeterministicJitter, hash_uniform, stable_hash
from repro.utils.tables import format_table

__all__ = ["DeterministicJitter", "hash_uniform", "stable_hash", "format_table"]
