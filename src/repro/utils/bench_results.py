"""Shared writer for the repository's ``BENCH_results.json`` documents.

Several producers record into one results file — the pytest benchmark
harness (``benchmarks/conftest.py``, section ``experiment_bench``) and the
scale benchmark (``benchmarks/bench_scale.py``, section ``scale_bench``) —
and the committed file additionally carries a stable
``pre_refactor_reference`` section.  Each producer must replace only its own
section, so all of them funnel through :func:`merge_section`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict


def merge_section(path: str, section: str, payload: Dict[str, Any]) -> None:
    """Write ``payload`` under ``section`` in the JSON document at ``path``.

    Every other top-level key of an existing JSON object is preserved; an
    unreadable or non-object file is replaced with a fresh document.
    """
    document: Dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
            if isinstance(existing, dict):
                document = existing
        except (OSError, ValueError):
            pass
    document[section] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


__all__ = ["merge_section"]
