"""Plain-text table formatting for experiment reports.

The experiment harness prints the same rows and series the paper's tables and
figures report.  ``format_table`` renders them as aligned monospace tables so
the output is readable in a terminal and easy to diff in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
