"""Deterministic pseudo-random helpers.

Every source of variability in the reproduction — per-thread-block execution
time jitter, random workload composition — must be reproducible from an
explicit seed so that tests, examples and benchmarks give the same answer on
every run.  Python's built-in ``hash`` is salted per process, so we use a
small, stable 64-bit mixing function instead (SplitMix64).
"""

from __future__ import annotations

from typing import Iterable, Union

_MASK64 = (1 << 64) - 1

Hashable = Union[int, str, float, bytes]


def _splitmix64(value: int) -> int:
    """One round of the SplitMix64 mixing function."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = value
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def _fold(value: Hashable) -> int:
    """Fold an arbitrary hashable input into a 64-bit integer, stably."""
    if isinstance(value, bool):  # bool is an int subclass; keep it distinct
        return int(value) + 0x9E37
    if isinstance(value, int):
        return value & _MASK64
    if isinstance(value, float):
        return hash_bytes(repr(value).encode("utf-8"))
    if isinstance(value, str):
        return hash_bytes(value.encode("utf-8"))
    if isinstance(value, bytes):
        return hash_bytes(value)
    raise TypeError(f"unsupported key component type: {type(value)!r}")


def hash_bytes(data: bytes) -> int:
    """A stable 64-bit FNV-1a hash of a byte string."""
    value = 0xCBF29CE484222325
    for byte in data:
        value ^= byte
        value = (value * 0x100000001B3) & _MASK64
    return value


def stable_hash(*components: Hashable) -> int:
    """Mix an arbitrary tuple of components into a stable 64-bit value."""
    state = 0x853C49E6748FEA9B
    for component in components:
        state = _splitmix64(state ^ _fold(component))
    return state


def hash_uniform(*components: Hashable) -> float:
    """Return a deterministic uniform sample in ``[0, 1)`` for the key."""
    return stable_hash(*components) / float(1 << 64)


class DeterministicJitter:
    """Deterministic multiplicative jitter around 1.0.

    ``factor(key...)`` returns a value in ``[1 - spread, 1 + spread]`` with
    mean 1.0, derived only from the seed and the key components.  It is used
    to give individual thread blocks of a kernel slightly different execution
    times, which the draining preemption mechanism is sensitive to
    (paper Sec. 4.3).
    """

    def __init__(self, seed: int, spread: float):
        if spread < 0 or spread >= 1:
            raise ValueError("spread must be in [0, 1)")
        self._seed = seed
        self._spread = spread

    @property
    def spread(self) -> float:
        """Half-width of the jitter interval around 1.0."""
        return self._spread

    def factor(self, *key: Hashable) -> float:
        """Multiplicative factor in ``[1-spread, 1+spread]`` for ``key``."""
        if self._spread == 0.0:
            return 1.0
        u = hash_uniform(self._seed, *key)
        return 1.0 + self._spread * (2.0 * u - 1.0)

    def scaled(self, base: float, *key: Hashable) -> float:
        """Apply the jitter factor for ``key`` to ``base``."""
        return base * self.factor(*key)


def weighted_choice(weights: Iterable[float], u: float) -> int:
    """Pick an index from ``weights`` proportionally, using uniform ``u``.

    Utility for seeded categorical draws (workload composition).
    """
    weights = list(weights)
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    if not 0.0 <= u < 1.0:
        raise ValueError("u must be in [0, 1)")
    threshold = u * total
    acc = 0.0
    for index, weight in enumerate(weights):
        acc += weight
        if threshold < acc:
            return index
    return len(weights) - 1
