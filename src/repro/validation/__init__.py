"""Runtime invariant validation for simulated runs.

Attach a :class:`ValidationHub` of pluggable :class:`InvariantChecker`
instances to a :class:`~repro.system.GPUSystem` (``GPUSystem(validate=True)``
or ``ScenarioSpec(validate=True)``) and every run asserts the simulator's
core conservation laws while it executes:

* every launched thread block completes exactly once,
* SM occupancy never exceeds the configured register / shared-memory /
  thread / block limits,
* context-switch state saved equals state restored (and drained SMs are
  empty before reassignment),
* simulation time is monotone and no event fires in the past,
* per-process iteration metrics are internally consistent.

Checkers observe, they never perturb: a run with validation enabled produces
byte-identical results to the same run without it.  Violations are recorded
(not raised) and surfaced through :class:`repro.runner.RunRecord`.
"""

from repro.validation.base import (
    InvariantChecker,
    InvariantValidationError,
    ValidationHub,
    Violation,
)
from repro.validation.checkers import (
    BlockAccountingChecker,
    DispatchChecker,
    EventOrderChecker,
    MetricsChecker,
    OccupancyChecker,
    PreemptionChecker,
    default_checkers,
)


def make_hub(checkers=None) -> ValidationHub:
    """A hub with the given checkers (default: every built-in checker)."""
    return ValidationHub(list(checkers) if checkers is not None else default_checkers())


__all__ = [
    "Violation",
    "InvariantChecker",
    "InvariantValidationError",
    "ValidationHub",
    "BlockAccountingChecker",
    "OccupancyChecker",
    "PreemptionChecker",
    "EventOrderChecker",
    "DispatchChecker",
    "MetricsChecker",
    "default_checkers",
    "make_hub",
]
